//! The Integrated Budget Performance Document (paper Table 1, "1 week").
//!
//! "While manual assembly of the IBPD can take several weeks, NETMARK was
//! used to extract and integrate information from thousands of NASA task
//! plans containing the required budget information and compose an
//! integrated IBPD document."
//!
//! This example ingests a large task-plan corpus, pulls every Budget
//! section with one context query, and composes the integrated document
//! with an XSLT stylesheet that sorts sections by source document.
//!
//! ```sh
//! cargo run --example ibpd            # 300 task plans
//! cargo run --example ibpd -- 2000    # paper-scale ("thousands")
//! ```

use netmark::NetMark;
use netmark_corpus::{task_plans, CorpusConfig};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(300);
    let dir = std::env::temp_dir().join(format!("netmark-ibpd-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let nm = NetMark::open(&dir)?;

    let t0 = Instant::now();
    for doc in task_plans(&CorpusConfig::sized(n)) {
        nm.insert_file(&doc.name, &doc.content)?;
    }
    let ingest = t0.elapsed();

    nm.register_stylesheet(
        "ibpd",
        r#"<xsl:stylesheet>
             <xsl:template match="/">
               <ibpd title="Integrated Budget Performance Document FY05">
                 <xsl:for-each select="hit">
                   <xsl:sort select="@doc"/>
                   <budget-entry plan="{@doc}">
                     <xsl:value-of select="Content"/>
                   </budget-entry>
                 </xsl:for-each>
               </ibpd>
             </xsl:template>
           </xsl:stylesheet>"#,
    )?;

    let t1 = Instant::now();
    let composed = nm
        .query_url("Context=Budget&xslt=ibpd")?
        .composed()
        .expect("xslt named");
    let compose = t1.elapsed();

    let entries = composed.find_all("budget-entry");
    println!(
        "IBPD assembled: {} budget entries from {} task plans",
        entries.len(),
        n
    );
    println!("  ingest:  {ingest:?}");
    println!("  extract+compose: {compose:?}");
    // Entries are sorted by plan name (the xsl:sort).
    let names: Vec<&str> = entries.iter().filter_map(|e| e.attr("plan")).collect();
    assert!(names.windows(2).all(|w| w[0] <= w[1]), "sorted by plan");
    assert_eq!(entries.len(), n, "one budget entry per task plan");
    println!("  first entry: {}", entries[0].text_content());

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
