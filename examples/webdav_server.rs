//! The full Fig-3 pipeline: drop folder → daemon → SGML parser →
//! schema-less store → HTTP/XDB access, all live in one process.
//!
//! ```sh
//! cargo run --example webdav_server
//! ```
//!
//! The example drops files into the watched folder, waits for the daemon,
//! then issues real HTTP requests against the server it started.

use netmark::NetMark;
use netmark_webdav::{serve_with, watch_folder, FrontendConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn http(addr: std::net::SocketAddr, raw: &str) -> String {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.write_all(raw.as_bytes()).expect("write");
    // Half-close: the keep-alive server closes after seeing EOF.
    s.shutdown(std::net::Shutdown::Write).expect("shutdown");
    let mut out = String::new();
    s.read_to_string(&mut out).expect("read");
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = std::env::temp_dir().join(format!("netmark-server-ex-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let drop_dir = base.join("dropbox");
    std::fs::create_dir_all(&drop_dir)?;

    let nm = Arc::new(NetMark::open(&base.join("store"))?);
    let daemon = watch_folder(nm.clone(), &drop_dir, Duration::from_millis(50));
    // Production-style front-end tuning: every knob bounded. Defaults
    // are fine too — `serve` uses `FrontendConfig::default()`.
    let cfg = FrontendConfig {
        max_conns: 4096,                       // fd budget
        max_per_client: 64,                    // per-IP fairness
        idle_timeout: Duration::from_secs(15), // keep-alive reap
        read_budget: Duration::from_secs(5),   // slow-loris kill
        ..FrontendConfig::default()
    };
    let server = serve_with(nm.clone(), "127.0.0.1:0", cfg)?;
    println!("NETMARK serving on http://{}", server.addr());
    println!("drop folder: {}", drop_dir.display());

    // A user drags two documents into the folder…
    std::fs::write(
        drop_dir.join("plan.wdoc"),
        "<<Title>> Plan\n<<Heading1>> Budget\n<<Normal>> two million\n",
    )?;
    std::fs::write(
        drop_dir.join("notes.txt"),
        "# Budget\npetty cash only\n# Risks\nnone\n",
    )?;
    // …the daemon picks them up.
    while daemon.stats().ingested < 2 {
        std::thread::sleep(Duration::from_millis(20));
    }
    println!("daemon ingested {} files", daemon.stats().ingested);

    // A third document arrives over WebDAV PUT instead.
    let body = "# Budget\nuploaded via PUT\n";
    let resp = http(
        server.addr(),
        &format!(
            "PUT /docs/uploaded.txt HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        ),
    );
    println!(
        "PUT /docs/uploaded.txt → {}",
        resp.lines().next().unwrap_or("")
    );

    // List the collection (WebDAV PROPFIND).
    let resp = http(server.addr(), "PROPFIND /docs HTTP/1.1\r\n\r\n");
    println!(
        "PROPFIND /docs → {} ({} documents listed)",
        resp.lines().next().unwrap_or(""),
        resp.matches("<response>").count()
    );

    // Query everything with one XDB URL.
    let resp = http(server.addr(), "GET /xdb?Context=Budget HTTP/1.1\r\n\r\n");
    let body_at = resp.find("\r\n\r\n").map(|i| i + 4).unwrap_or(0);
    println!("GET /xdb?Context=Budget →");
    println!("{}", &resp[body_at..]);

    // Operators read the same counters from GET /xdb/stats (<server/>).
    let s = server.server_stats();
    println!(
        "front end: {} conns accepted, {} requests, {} shed, {} idle-reaped",
        s.accepted, s.requests, s.sheds, s.idle_reaped
    );

    server.stop();
    daemon.stop();
    std::fs::remove_dir_all(&base)?;
    Ok(())
}
