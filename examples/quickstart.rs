//! Quickstart: ingest a few heterogeneous documents, run the paper's three
//! query shapes, compose a result document with XSLT.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use netmark::{NetMark, XdbQuery};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("netmark-quickstart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let nm = NetMark::open(&dir)?;

    // Drop three documents of three different formats into the store. No
    // schema is declared anywhere — the store is the same two tables for
    // all of them.
    nm.insert_file(
        "plan-a.wdoc",
        "<<Title>> Plan A\n\
         <<Heading1>> Budget\n<<Normal>> two million dollars\n\
         <<Heading1>> Technology Gap\n<<Normal>> the gap is shrinking\n",
    )?;
    nm.insert_file(
        "plan-b.txt",
        "# Budget\none million dollars\n# Technology Gap\nthe gap is growing\n",
    )?;
    nm.insert_file(
        "lesson-424.html",
        "<html><head><title>Lesson 424</title></head><body>\
         <h1>Summary</h1><p>The shuttle engine controller faulted.</p>\
         <h1>Recommendation</h1><p>Inspect the harness.</p></body></html>",
    )?;

    // 1. Context search (paper: "Context=Introduction will return the
    //    content portion in the 'Introduction' sections in all the
    //    documents").
    println!("== Context=Budget");
    for hit in &nm.query(&XdbQuery::context("Budget"))?.hits {
        println!("  [{}] {}: {}", hit.doc, hit.context, hit.content_text());
    }

    // 2. Content search (paper: "Content=Shuttle will return all documents
    //    that contain the term 'Shuttle' anywhere").
    println!("== Content=Shuttle");
    for hit in &nm.query(&XdbQuery::content("Shuttle"))?.hits {
        println!("  [{}] {}: {}", hit.doc, hit.context, hit.content_text());
    }

    // 3. Combined (paper: "Context=Technology Gap & Content=Shrinking").
    println!("== Context=Technology Gap & Content=Shrinking");
    for hit in &nm
        .query(&XdbQuery::context_content("Technology Gap", "Shrinking"))?
        .hits
    {
        println!("  [{}] {}: {}", hit.doc, hit.context, hit.content_text());
    }

    // 4. The same, as a URL with XSLT composition (Figs 6–7).
    nm.register_stylesheet(
        "report",
        r#"<xsl:stylesheet>
             <xsl:template match="/">
               <integrated-report>
                 <xsl:for-each select="hit">
                   <section doc="{@doc}" heading="{Context}">
                     <xsl:value-of select="Content"/>
                   </section>
                 </xsl:for-each>
               </integrated-report>
             </xsl:template>
           </xsl:stylesheet>"#,
    )?;
    let composed = nm
        .query_url("Context=Budget&xslt=report")?
        .composed()
        .expect("xslt was named");
    println!("== Composed document (Context=Budget & xslt=report)");
    println!("{}", composed.to_pretty_xml());

    let stats = nm.stats()?;
    println!(
        "store: {} documents, {} nodes, {} terms, {} index bytes",
        stats.documents, stats.nodes, stats.terms, stats.index_bytes
    );
    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
