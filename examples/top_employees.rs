//! The §4 "Top Employees of NASA" head-to-head: GAV mediation vs NETMARK.
//!
//! "Top Employees could be defined as say employees at NASA Ames with a
//! performance rating of excellent, personnel at NASA Johnson with a
//! performance score of 2 or better, and employees of NASA Kennedy with a
//! rating of very good or better. Mediation frameworks provide for defining
//! such virtual views … In NETMARK we will end up asking three different
//! queries … Note however that the approach absolutely requires us to
//! formally define schemas (source views) for the three information
//! sources, define a virtual view and specify the relationships."
//!
//! This example builds both sides over the *same* personnel data and
//! prints what each approach costs (artifacts) and requires per query.
//!
//! ```sh
//! cargo run --example top_employees
//! ```

use netmark::{NetMark, XdbQuery};
use netmark_corpus::personnel_csv;
use netmark_gav::{
    CmpOp, GlobalView, Mapping, Mediator, Predicate, RelationSchema, Source, ViewQuery,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let centers = ["ames", "johnson", "kennedy"];
    let csvs: Vec<_> = centers.iter().map(|c| personnel_csv(c, 30, 99)).collect();

    // ---------- GAV side: schemas + view + mappings, then ONE query.
    let mut med = Mediator::new();
    med.register_source(
        Source::new("ames").with_relation(RelationSchema::new("personnel", &["name", "rating"])),
    )?;
    med.register_source(
        Source::new("johnson").with_relation(RelationSchema::new("staff", &["employee", "score"])),
    )?;
    med.register_source(
        Source::new("kennedy").with_relation(RelationSchema::new("people", &["who", "grade"])),
    )?;
    for (center, csv) in centers.iter().zip(&csvs) {
        let rows: Vec<Vec<netmark_gav::GValue>> = csv
            .content
            .lines()
            .skip(1)
            .map(|l| {
                let (name, rating) = l.split_once(',').expect("two columns");
                let rating_val = rating
                    .parse::<f64>()
                    .map(netmark_gav::GValue::Num)
                    .unwrap_or_else(|_| netmark_gav::GValue::Text(rating.to_string()));
                vec![netmark_gav::GValue::Text(name.to_string()), rating_val]
            })
            .collect();
        let relation = match *center {
            "johnson" => "staff",
            "kennedy" => "people",
            _ => "personnel",
        };
        med.load_rows(center, relation, rows)?;
    }
    med.define_view(GlobalView {
        name: "TopEmployees".into(),
        columns: vec!["name".into()],
        mappings: vec![
            Mapping {
                source: "ames".into(),
                relation: "personnel".into(),
                selections: vec![Predicate::new("rating", CmpOp::Eq, "excellent")],
                projection: vec![Some("name".into())],
            },
            Mapping {
                source: "johnson".into(),
                relation: "staff".into(),
                selections: vec![Predicate::new("score", CmpOp::Le, 2.0)],
                projection: vec![Some("employee".into())],
            },
            Mapping {
                source: "kennedy".into(),
                relation: "people".into(),
                selections: vec![Predicate::new("grade", CmpOp::Eq, "very good")],
                projection: vec![Some("who".into())],
            },
        ],
    })?;
    let (_, gav_rows) = med.query(&ViewQuery {
        view: "TopEmployees".into(),
        predicates: vec![],
        projection: vec![],
    })?;
    let cost = med.cost();
    println!("== GAV mediator (MIX/Tukwila style)");
    println!(
        "   artifacts: {} source-relation schemas + {} mappings + {} view = {} total",
        cost.source_relations,
        cost.mapping_rules,
        cost.views,
        cost.total()
    );
    println!("   queries per question: 1 (virtual view)");
    println!("   top employees found: {}", gav_rows.len());

    // ---------- NETMARK side: drop the CSVs in, ask three queries.
    let dir = std::env::temp_dir().join(format!("netmark-topemp-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let nm = NetMark::open(&dir)?;
    for csv in &csvs {
        nm.insert_file(&csv.name, &csv.content)?;
    }
    // "In NETMARK we will end up asking three different queries
    // (corresponding to the different NASA centers)."
    type RowFilter = fn(&str) -> bool;
    let mut nm_names: Vec<String> = Vec::new();
    let per_center: Vec<(XdbQuery, RowFilter)> = vec![
        (
            XdbQuery::context_content("ames-personnel", "excellent"),
            |row: &str| row.contains("excellent"),
        ),
        (XdbQuery::context("johnson-personnel"), |row: &str| {
            matches!(row.rsplit(' ').next(), Some("1" | "2"))
        }),
        (
            XdbQuery::context_content("kennedy-personnel", "very good"),
            |row: &str| row.contains("very good"),
        ),
    ];
    let mut nm_query_count = 0usize;
    for (q, keep) in &per_center {
        nm_query_count += 1;
        for hit in &nm.query(q)?.hits {
            for row in hit.content.find_all("row") {
                let text = row.text_content();
                if keep(&text) {
                    nm_names.push(text.split_whitespace().next().unwrap_or("").to_string());
                }
            }
        }
    }
    println!("== NETMARK (schema-less)");
    println!("   artifacts: 0 schemas, 0 mappings, 0 views (documents dropped in as-is)");
    println!(
        "   queries per question: {nm_query_count} (one per center — the paper's stated trade-off)"
    );
    println!("   top employees found: {}", nm_names.len());

    // Both approaches answer the same question.
    let mut gav_names: Vec<String> = gav_rows.iter().map(|r| r[0].to_string()).collect();
    gav_names.sort();
    nm_names.sort();
    assert_eq!(gav_names, nm_names, "both sides agree on the answer");
    println!("   answers agree: ✓");

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
