//! The Proposal Financial Management application (paper Table 1, "1 hour").
//!
//! "An information system for tracking proposal financial information for
//! outgoing (NASA) proposals … allows querying of aggregated and
//! statistical information about the proposals such as proposal numbers by
//! NASA division type, dollar amounts requested etc. The application takes
//! as input all the proposals (typically in formats such as Word or PDF)."
//!
//! Assembly with NETMARK is exactly what this file shows: ingest the
//! proposal files, then ask context/content questions — no schema design,
//! no ETL, no mapping definitions.
//!
//! ```sh
//! cargo run --example proposal_financial
//! ```

use netmark::{NetMark, XdbQuery};
use netmark_corpus::{proposals, CorpusConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("netmark-pfm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let nm = NetMark::open(&dir)?;

    // The call for proposals closed; 40 Word files arrived.
    let corpus = proposals(&CorpusConfig::sized(40));
    for doc in &corpus {
        nm.insert_file(&doc.name, &doc.content)?;
    }
    println!("ingested {} proposals", corpus.len());

    // Q1: every proposal's Budget section.
    let budgets = nm.query(&XdbQuery::context("Budget"))?;
    println!("proposals with a Budget section: {}", budgets.len());

    // Q2: dollar amounts requested — the amounts live in the title blurb;
    // pull Cost Details tables per document instead.
    let costs = nm.query(&XdbQuery::context("Cost Details"))?;
    let mut total_rows = 0usize;
    for hit in &costs.hits {
        total_rows += hit.content.find_all("row").len();
    }
    println!(
        "cost tables: {} sections, {} fiscal-year rows",
        costs.len(),
        total_rows
    );

    // Q3: proposals by division — content search per division keyword.
    for division in ["aeronautics", "science", "exploration", "technology"] {
        let rs = nm.query(&XdbQuery::content(division))?;
        let per_doc: std::collections::HashSet<&str> =
            rs.hits.iter().map(|h| h.doc.as_str()).collect();
        println!("division '{division}': {} proposals", per_doc.len());
    }

    // Q4: risk-flagged proposals (keyword inside the Risks section).
    let risky = nm.query(&XdbQuery::context_content("Risks", "schedule"))?;
    println!("proposals flagging schedule risk: {}", risky.len());

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
