//! The deployed Fig-8 shape: a thin-router HTTP endpoint federating a
//! local NETMARK and a content-search-only remote, all reachable through
//! one XDB URL with `databank=`.
//!
//! ```sh
//! cargo run --example federated_server
//! ```

use netmark::NetMark;
use netmark_corpus::{anomaly_reports, lessons_learned, CorpusConfig};
use netmark_federation::{
    serve_router_with, ContentOnlySource, FrontendConfig, NetmarkSource, Router,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn http(addr: std::net::SocketAddr, raw: &str) -> String {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.write_all(raw.as_bytes()).expect("write");
    // Half-close: the keep-alive server closes after seeing EOF.
    s.shutdown(std::net::Shutdown::Write).expect("shutdown");
    let mut out = String::new();
    s.read_to_string(&mut out).expect("read");
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = std::env::temp_dir().join(format!("netmark-fed-ex-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    // Local engine with anomaly reports.
    let nm = Arc::new(NetMark::open(&base.join("store"))?);
    for d in anomaly_reports(&CorpusConfig::sized(30)) {
        nm.insert_file(&d.name, &d.content)?;
    }
    // Remote, content-search-only Lessons Learned server.
    let llis = ContentOnlySource::new(
        "llis",
        lessons_learned(&CorpusConfig::sized(20))
            .into_iter()
            .map(|d| (d.name, d.content))
            .collect(),
    );
    let mut router = Router::new();
    router.register_source(Arc::new(NetmarkSource::new("anomaly-db", Arc::clone(&nm))))?;
    router.register_source(Arc::new(llis))?;
    router.define_databank("anomaly-tracking", &["anomaly-db", "llis"])?;

    // The router shares the WebDAV server's bounded front end — same
    // knobs, same timeout discipline, same <server/> stats element.
    let cfg = FrontendConfig {
        max_conns: 4096,
        idle_timeout: Duration::from_secs(15),
        read_budget: Duration::from_secs(5),
        ..FrontendConfig::default()
    };
    let h = serve_router_with(Arc::new(router), Some(nm.clone()), "127.0.0.1:0", cfg)?;
    println!("federated NETMARK router on http://{}", h.addr());

    // One URL, two sources, capability augmentation on the weak one.
    let resp = http(
        h.addr(),
        "GET /xdb?databank=anomaly-tracking&Context=Summary|Corrective+Action&Content=engine&limit=5 HTTP/1.1\r\n\r\n",
    );
    let body = &resp[resp.find("\r\n\r\n").map(|i| i + 4).unwrap_or(0)..];
    println!("federated answer:\n{body}\n");

    // The same endpoint serves local-only queries when no databank is named.
    let resp = http(
        h.addr(),
        "GET /xdb?Context=Disposition&limit=2 HTTP/1.1\r\n\r\n",
    );
    let body = &resp[resp.find("\r\n\r\n").map(|i| i + 4).unwrap_or(0)..];
    println!("local-only answer:\n{body}");

    let s = h.server_stats();
    println!(
        "front end: {} conns accepted, {} requests, {} shed",
        s.accepted, s.requests, s.sheds
    );

    h.stop();
    std::fs::remove_dir_all(&base)?;
    Ok(())
}
