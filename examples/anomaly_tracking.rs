//! The Anomaly Tracking application (paper Table 1, "1 day").
//!
//! "Anomaly Tracking is an application that allows integrated querying of
//! two NASA (web accessible) data sources that are essentially anomaly
//! tracking databases. The application facilitates more sophisticated
//! querying than provided by either original source and also facilitates
//! simultaneous querying of both sources."
//!
//! Source A is a full NETMARK peer over `.pdoc` anomaly reports; source B
//! is the Lessons Learned server, which "allows only Content-search kinds
//! of queries" — the router pushes the content fragment down and augments
//! the context extraction locally (§2.1.5).
//!
//! ```sh
//! cargo run --example anomaly_tracking
//! ```

use netmark::{NetMark, XdbQuery};
use netmark_corpus::{anomaly_reports, lessons_learned, CorpusConfig};
use netmark_federation::{ContentOnlySource, NetmarkSource, Router};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("netmark-anomaly-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Source A: a NETMARK instance holding anomaly reports.
    let nm_a = Arc::new(NetMark::open(&dir.join("anomaly-db"))?);
    for doc in anomaly_reports(&CorpusConfig::sized(60)) {
        nm_a.insert_file(&doc.name, &doc.content)?;
    }

    // Source B: the Lessons Learned server — raw pages, content search only.
    let llis_docs: Vec<(String, String)> = lessons_learned(&CorpusConfig::sized(40))
        .into_iter()
        .map(|d| (d.name, d.content))
        .collect();
    let llis = ContentOnlySource::new("llis", llis_docs);

    // The whole integration "application": one databank declaration.
    let mut router = Router::new();
    router.register_source(Arc::new(NetmarkSource::new("anomaly-db", nm_a)))?;
    router.register_source(Arc::new(llis))?;
    router.define_databank("anomaly-tracking", &["anomaly-db", "llis"])?;
    println!(
        "databank spec ({} lines):\n{}",
        router.databank("anomaly-tracking").unwrap().spec_lines(),
        router.databank("anomaly-tracking").unwrap().spec()
    );

    // Federated queries in the spirit of the paper's
    // Context=Title&Content=Engine example: section-scoped keyword search
    // that neither source supports on its own.
    for (label, terms) in [
        ("Corrective Action", "engine"),
        ("Recommendation", "engine"),
        ("Summary", "valve"),
    ] {
        let fr = router.query("anomaly-tracking", &XdbQuery::context_content(label, terms))?;
        println!(
            "== Context={label} & Content={terms}: {} hits",
            fr.results.len()
        );
        for o in &fr.outcomes {
            println!(
                "   source {:<11} pushed '{}' augmented={} fetched={} hits={}{}",
                o.source,
                o.pushed.to_query_string(),
                o.augmented,
                o.documents_fetched,
                o.hits,
                o.error
                    .as_deref()
                    .map(|e| format!(" ERROR: {e}"))
                    .unwrap_or_default()
            );
        }
        for hit in fr.results.hits.iter().take(3) {
            println!(
                "   [{}:{}] {}: {}",
                hit.source,
                hit.doc,
                hit.context,
                hit.content_text().chars().take(60).collect::<String>()
            );
        }
    }

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
