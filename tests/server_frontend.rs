//! Regression tests for the bounded server front end, driven through
//! both real servers (the NETMARK WebDAV server and the federated
//! router) over actual sockets.
//!
//! Each test pins a bug the old thread-per-connection loops had:
//!
//! - the federated server never set a read timeout, so one stalled
//!   client held a thread (and its fd) forever — now both servers share
//!   the front end's wall-clock read budget (slow-loris kill);
//! - idle keep-alive connections were held by blocked reader threads —
//!   now they park fd-only and are reaped past the idle budget;
//! - over capacity, accepts queued without bound — now they shed with
//!   `429` + `Retry-After`, and the federation `HttpClient` honors the
//!   header instead of hammering the recovering server.

use netmark::NetMark;
use netmark_federation::{serve_router_with, ClientConfig, ContentOnlySource, HttpClient, Router};
use netmark_webdav::{serve_with, FrontendConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn temp_store(tag: &str) -> (Arc<NetMark>, PathBuf) {
    let dir = std::env::temp_dir().join(format!("netmark-frontend-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let nm = Arc::new(NetMark::open(&dir).unwrap());
    nm.insert_file("seed.txt", "# Budget\nseed money\n")
        .unwrap();
    (nm, dir)
}

/// A config with millisecond budgets so reap/kill paths run inside a
/// test's patience.
fn tight(read_ms: u64, idle_ms: u64) -> FrontendConfig {
    FrontendConfig {
        workers: 2,
        read_budget: Duration::from_millis(read_ms),
        idle_timeout: Duration::from_millis(idle_ms),
        poll_interval: Duration::from_millis(5),
        ..FrontendConfig::default()
    }
}

/// Sends one well-formed keep-alive request and reads the framed
/// response (headers + `Content-Length` body), leaving the connection
/// open for the next request — or for the server to reap.
fn keepalive_get(s: &mut TcpStream, path: &str) -> String {
    write!(s, "GET {path} HTTP/1.1\r\n\r\n").unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut raw = Vec::new();
    let mut byte = [0u8; 1];
    // Headers.
    while !raw.ends_with(b"\r\n\r\n") {
        assert_ne!(s.read(&mut byte).unwrap(), 0, "closed mid-headers");
        raw.push(byte[0]);
    }
    let head = String::from_utf8_lossy(&raw).to_string();
    let len: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .expect("framed response")
        .trim()
        .parse()
        .unwrap();
    let mut body = vec![0u8; len];
    s.read_exact(&mut body).unwrap();
    head + &String::from_utf8_lossy(&body)
}

/// Waits for the socket to be closed server-side (EOF), failing if the
/// server instead keeps it (the leak under test).
fn expect_server_close(s: &mut TcpStream) {
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut rest = Vec::new();
    match s.read_to_end(&mut rest) {
        Ok(_) => {}
        Err(e) => panic!("expected server-side close, got {e}"),
    }
}

fn eventually(what: &str, pred: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        if pred() {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("timed out waiting for: {what}");
}

// ------------------------------------------------------------- slow-loris

#[test]
fn webdav_server_kills_slow_loris() {
    let (nm, dir) = temp_store("loris");
    let h = serve_with(nm, "127.0.0.1:0", tight(200, 30_000)).unwrap();

    let mut s = TcpStream::connect(h.addr()).unwrap();
    // Trickle a request line one byte at a time, never finishing: each
    // byte arrives well inside any per-read timeout, so only the
    // wall-clock read budget can end this.
    let started = Instant::now();
    for b in b"GET /xdb/stats HTTP/1.1\r\n".iter().cycle() {
        if s.write_all(&[*b]).is_err() {
            break; // server gave up on us — the point
        }
        std::thread::sleep(Duration::from_millis(20));
        if started.elapsed() > Duration::from_secs(3) {
            panic!("slow-loris still being fed after 3s");
        }
    }
    expect_server_close(&mut s);
    eventually("slow-loris kill booked", || {
        h.server_stats().read_timeouts >= 1
    });
    eventually("connection slot released", || h.server_stats().active == 0);
    h.stop();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn federated_server_kills_slow_loris() {
    // The old federated accept loop never set *any* read timeout — this
    // exact scenario held a server thread forever.
    let router = test_router();
    let h = serve_router_with(router, None, "127.0.0.1:0", tight(200, 30_000)).unwrap();

    let mut s = TcpStream::connect(h.addr()).unwrap();
    s.write_all(b"GET /xdb?databank=apps").unwrap(); // opened, never finished
    expect_server_close(&mut s);
    eventually("slow-loris kill booked", || {
        h.server_stats().read_timeouts >= 1
    });
    eventually("connection slot released", || h.server_stats().active == 0);
    h.stop();
}

// ------------------------------------------------------ idle keep-alive

#[test]
fn webdav_server_reaps_idle_keepalive() {
    let (nm, dir) = temp_store("idle");
    let h = serve_with(nm, "127.0.0.1:0", tight(5_000, 150)).unwrap();

    let mut s = TcpStream::connect(h.addr()).unwrap();
    let resp = keepalive_get(&mut s, "/xdb/stats");
    assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
    // Go quiet past the idle budget: the server must reclaim the fd
    // (seen here as EOF), not hold a blocked thread on it.
    expect_server_close(&mut s);
    eventually("idle reap booked", || h.server_stats().idle_reaped >= 1);
    eventually("connection slot released", || h.server_stats().active == 0);
    h.stop();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn federated_server_reaps_idle_keepalive() {
    let router = test_router();
    let h = serve_router_with(router, None, "127.0.0.1:0", tight(5_000, 150)).unwrap();

    let mut s = TcpStream::connect(h.addr()).unwrap();
    let resp = keepalive_get(&mut s, "/xdb/capabilities");
    assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
    expect_server_close(&mut s);
    eventually("idle reap booked", || h.server_stats().idle_reaped >= 1);
    eventually("connection slot released", || h.server_stats().active == 0);
    h.stop();
}

// ------------------------------------------------- shed + client backoff

#[test]
fn shed_carries_retry_after_and_client_backs_off() {
    let (nm, dir) = temp_store("shed");
    let cfg = FrontendConfig {
        max_conns: 1,
        retry_after: Duration::from_secs(1),
        ..tight(5_000, 30_000)
    };
    let h = serve_with(nm, "127.0.0.1:0", cfg).unwrap();
    let addr = h.addr();

    // One parked connection owns the only slot.
    let holder = TcpStream::connect(addr).unwrap();
    eventually("holder admitted", || h.server_stats().active == 1);

    // A raw second connection is shed with a 429 carrying Retry-After.
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut shed_resp = String::new();
    raw.read_to_string(&mut shed_resp).unwrap();
    assert!(shed_resp.starts_with("HTTP/1.1 429"), "{shed_resp}");
    assert!(shed_resp.contains("Retry-After: 1"), "{shed_resp}");

    // The federation client sees the 429 and honors the header: it must
    // wait out Retry-After before retrying, not hammer the server.
    let client = HttpClient::new(
        &addr.to_string(),
        ClientConfig {
            retries: 3,
            backoff_base: Duration::from_millis(10),
            ..ClientConfig::default()
        },
    )
    .unwrap();
    let sheds_before = h.server_stats().sheds;
    let started = Instant::now();
    let freer = std::thread::spawn(move || {
        // Free the slot while the client is sleeping out Retry-After:
        // its retry should then be admitted.
        std::thread::sleep(Duration::from_millis(300));
        drop(holder);
    });
    let resp = client.get("/xdb/stats").unwrap();
    let waited = started.elapsed();
    freer.join().unwrap();

    assert_eq!(resp.status, 200, "{}", resp.body_text());
    assert!(client.throttles() >= 1, "client never saw the shed");
    assert!(
        waited >= Duration::from_secs(1),
        "client retried before Retry-After elapsed: {waited:?}"
    );
    // The shed is visible to operators in the server's own stats…
    assert!(h.server_stats().sheds > sheds_before);
    // …and in the served stats document.
    let doc = resp.body_text();
    assert!(doc.contains("<server "), "{doc}");
    assert!(doc.contains("shed=\""), "{doc}");
    h.stop();
    std::fs::remove_dir_all(&dir).unwrap();
}

fn test_router() -> Arc<Router> {
    let src = ContentOnlySource::new(
        "llis",
        vec![("r.txt".to_string(), "# Budget\nremote money\n".to_string())],
    );
    let mut router = Router::new();
    router.register_source(Arc::new(src)).unwrap();
    router.define_databank("apps", &["llis"]).unwrap();
    Arc::new(router)
}
