//! Fault-injection e2e for networked federation: real sockets, a TCP
//! proxy that injects delays/truncation, sources killed mid-run, and the
//! breaker/short-circuit behaviour the router must show under partial
//! failure (ISSUE: networked federation acceptance).

use netmark::{NetMark, XdbQuery};
use netmark_federation::{
    BreakerConfig, BreakerState, ClientConfig, RemoteConfig, RemoteSource, Router,
};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

// ------------------------------------------------------------ fault proxy

/// What the proxy does to the *response* path of each new connection.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Fault {
    /// Forward untouched.
    Pass,
    /// Hold the response back this long (→ client read timeout).
    Delay(Duration),
    /// Forward only the first N response bytes, then cut the wire.
    TruncateAfter(usize),
    /// Accept and immediately drop the connection.
    Refuse,
}

/// A TCP proxy in front of one upstream, with a switchable fault mode.
/// New connections pick up the mode current at accept time.
struct FaultProxy {
    addr: SocketAddr,
    mode: Arc<Mutex<Fault>>,
    stop: Arc<AtomicBool>,
}

impl FaultProxy {
    fn start(upstream: SocketAddr) -> FaultProxy {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mode = Arc::new(Mutex::new(Fault::Pass));
        let stop = Arc::new(AtomicBool::new(false));
        let (mode2, stop2) = (Arc::clone(&mode), Arc::clone(&stop));
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                if stop2.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(client) = conn else { continue };
                if *mode2.lock().unwrap() == Fault::Refuse {
                    continue; // drop: client sees an immediate close
                }
                let Ok(server) = TcpStream::connect(upstream) else {
                    continue;
                };
                // Request path: client → upstream, untouched.
                let (c2, s2) = (client.try_clone().unwrap(), server.try_clone().unwrap());
                std::thread::spawn(move || pipe(c2, s2, None));
                // Response path: upstream → client, faulted. The mode is
                // consulted per chunk, so switching it mid-run also hits
                // pooled keep-alive connections opened while healthy.
                let mode = Arc::clone(&mode2);
                std::thread::spawn(move || pipe(server, client, Some(mode)));
            }
        });
        FaultProxy { addr, mode, stop }
    }

    fn set(&self, fault: Fault) {
        *self.mode.lock().unwrap() = fault;
    }

    fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
    }
}

/// Copies bytes one way until EOF/error, then cuts both sockets so the
/// peer observes the close. When `mode` is set (the response path), the
/// fault current at each chunk is applied: Delay sleeps before
/// forwarding, TruncateAfter forwards a prefix and cuts, Refuse cuts.
fn pipe(mut from: TcpStream, mut to: TcpStream, mode: Option<Arc<Mutex<Fault>>>) {
    let mut buf = [0u8; 4096];
    loop {
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        let fault = mode
            .as_ref()
            .map(|m| *m.lock().unwrap())
            .unwrap_or(Fault::Pass);
        match fault {
            Fault::Pass => {
                if to.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
            Fault::Delay(d) => {
                std::thread::sleep(d);
                if to.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
            Fault::TruncateAfter(limit) => {
                let _ = to.write_all(&buf[..n.min(limit)]);
                break; // cut mid-response
            }
            Fault::Refuse => break,
        }
    }
    let _ = to.shutdown(std::net::Shutdown::Both);
    let _ = from.shutdown(std::net::Shutdown::Both);
}

// --------------------------------------------------------------- fixtures

fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("netmark-fault-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Store with one `# Budget` doc whose body names the source.
fn store_with(base: &std::path::Path, name: &str) -> Arc<NetMark> {
    let nm = Arc::new(NetMark::open(&base.join(name)).unwrap());
    nm.insert_file(&format!("{name}.txt"), &format!("# Budget\n{name} money\n"))
        .unwrap();
    nm
}

/// Tight timeouts so fault paths resolve in milliseconds, not seconds.
fn tight() -> RemoteConfig {
    tight_with_cooldown(Duration::from_millis(200))
}

fn tight_with_cooldown(cooldown: Duration) -> RemoteConfig {
    RemoteConfig {
        client: ClientConfig {
            connect_timeout: Duration::from_millis(300),
            read_timeout: Duration::from_millis(300),
            retries: 0,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(20),
            ..ClientConfig::default()
        },
        breaker: BreakerConfig {
            failure_threshold: 2,
            cooldown,
        },
    }
}

// ------------------------------------------------------------------ tests

/// The acceptance scenario: three remote sources; one is killed, another
/// is delayed past the read timeout. The federated query still returns
/// the healthy source's hits, per-source outcomes report the failures,
/// and the breaker opens — then recovers once the slow source heals.
#[test]
fn federated_query_survives_dead_and_slow_sources() {
    let base = scratch("3src");
    let alpha_srv = netmark_webdav::serve(store_with(&base, "alpha"), "127.0.0.1:0").unwrap();
    let bravo_srv = netmark_webdav::serve(store_with(&base, "bravo"), "127.0.0.1:0").unwrap();
    let charlie_srv = netmark_webdav::serve(store_with(&base, "charlie"), "127.0.0.1:0").unwrap();
    let proxy = FaultProxy::start(charlie_srv.addr());

    let mut router = Router::new();
    // bravo never comes back in this test; park its breaker open for the
    // whole run so the short-circuit assertions are deterministic even
    // though charlie's timeouts make other queries slow.
    for (name, addr, cooldown) in [
        ("alpha", alpha_srv.addr().to_string(), 200),
        ("bravo", bravo_srv.addr().to_string(), 60_000),
        ("charlie", proxy.addr.to_string(), 200),
    ] {
        let cfg = tight_with_cooldown(Duration::from_millis(cooldown));
        let src = RemoteSource::connect(name, &addr, cfg).unwrap();
        router.register_source(Arc::new(src)).unwrap();
    }
    router
        .define_databank("fleet", &["alpha", "bravo", "charlie"])
        .unwrap();
    let q = XdbQuery::context("Budget");

    // Healthy fleet: every source contributes.
    let fr = router.query("fleet", &q).unwrap();
    assert!(!fr.degraded());
    for name in ["alpha", "bravo", "charlie"] {
        assert!(
            fr.results.hits.iter().any(|h| h.source == name),
            "missing hits from {name}"
        );
    }

    // Fault injection: bravo dies (listener + live connections closed),
    // charlie hangs past the client's read timeout.
    bravo_srv.stop();
    proxy.set(Fault::Delay(Duration::from_millis(900)));

    let fr = router.query("fleet", &q).unwrap();
    assert!(fr.degraded());
    assert!(
        fr.results.hits.iter().any(|h| h.source == "alpha"),
        "healthy source's hits must survive the partial failure"
    );
    assert!(fr.results.hits.iter().all(|h| h.source == "alpha"));
    let outcome = |fr: &netmark_federation::FederatedResult, n: &str| {
        fr.outcomes.iter().find(|o| o.source == n).unwrap().clone()
    };
    assert!(
        outcome(&fr, "bravo").error.is_some(),
        "dead source reported"
    );
    let charlie = outcome(&fr, "charlie");
    assert!(charlie.error.is_some(), "timed-out source reported");
    assert!(
        charlie.latency >= Duration::from_millis(250),
        "latency shows the read timeout was actually waited out: {:?}",
        charlie.latency
    );
    assert!(outcome(&fr, "alpha").error.is_none());

    // Second consecutive failure trips both breakers (threshold 2)…
    let _ = router.query("fleet", &q).unwrap();
    // …so the third answer short-circuits without touching the wire.
    let started = Instant::now();
    let fr = router.query("fleet", &q).unwrap();
    let elapsed = started.elapsed();
    assert!(outcome(&fr, "bravo").short_circuited);
    assert!(outcome(&fr, "charlie").short_circuited);
    assert!(
        elapsed < Duration::from_millis(250),
        "open breakers must answer without waiting out timeouts: {elapsed:?}"
    );
    let stats = router.source_stats();
    assert!(stats["bravo"].breaker_opens >= 1);
    assert!(stats["charlie"].breaker_opens >= 1);
    assert!(stats["bravo"].short_circuits >= 1);
    assert!(stats["alpha"].failures == 0);

    // Recovery: charlie heals; after the cooldown the half-open probe
    // closes its breaker and its hits come back.
    proxy.set(Fault::Pass);
    std::thread::sleep(Duration::from_millis(250));
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let fr = router.query("fleet", &q).unwrap();
        if fr.results.hits.iter().any(|h| h.source == "charlie") {
            assert!(outcome(&fr, "charlie").error.is_none());
            break;
        }
        assert!(Instant::now() < deadline, "charlie never recovered");
        std::thread::sleep(Duration::from_millis(100));
    }
    // bravo stays dead and stays reported — degradation is per-source.
    let fr = router.query("fleet", &q).unwrap();
    assert!(fr.degraded());
    assert!(fr.results.hits.iter().any(|h| h.source == "alpha"));
    assert!(fr.results.hits.iter().any(|h| h.source == "charlie"));

    alpha_srv.stop();
    charlie_srv.stop();
    proxy.stop();
    let _ = std::fs::remove_dir_all(&base);
}

/// A response cut mid-body is a clean per-source error — never a panic,
/// never a half-parsed result leaking into the merged answer.
#[test]
fn truncated_response_degrades_cleanly() {
    let base = scratch("trunc");
    let srv = netmark_webdav::serve(store_with(&base, "delta"), "127.0.0.1:0").unwrap();
    let proxy = FaultProxy::start(srv.addr());

    let src = RemoteSource::connect("delta", &proxy.addr.to_string(), tight()).unwrap();
    let mut router = Router::new();
    router.register_source(Arc::new(src)).unwrap();
    router.define_databank("bank", &["delta"]).unwrap();
    let q = XdbQuery::context("Budget");
    assert_eq!(router.query("bank", &q).unwrap().results.len(), 1);

    proxy.set(Fault::TruncateAfter(40)); // cuts inside the headers/body
    let fr = router.query("bank", &q).unwrap();
    assert!(fr.degraded());
    assert_eq!(fr.results.len(), 0);
    assert!(fr.outcomes[0].error.is_some());

    proxy.set(Fault::Pass);
    srv.stop();
    proxy.stop();
    let _ = std::fs::remove_dir_all(&base);
}

/// A refused connection (proxy drops it instantly) is indistinguishable
/// from a crashed peer: reported, retried per policy, breaker-managed.
#[test]
fn refused_connections_open_the_breaker() {
    let base = scratch("refuse");
    let srv = netmark_webdav::serve(store_with(&base, "echo"), "127.0.0.1:0").unwrap();
    let proxy = FaultProxy::start(srv.addr());

    let src = RemoteSource::connect("echo", &proxy.addr.to_string(), tight()).unwrap();
    let src = Arc::new(src);
    let mut router = Router::new();
    router.register_source(Arc::clone(&src) as _).unwrap();
    router.define_databank("bank", &["echo"]).unwrap();
    let q = XdbQuery::content("money");

    proxy.set(Fault::Refuse);
    let _ = router.query("bank", &q).unwrap();
    let _ = router.query("bank", &q).unwrap();
    assert_eq!(src.breaker_state(), BreakerState::Open);
    let fr = router.query("bank", &q).unwrap();
    assert!(fr.outcomes[0].short_circuited);

    srv.stop();
    proxy.stop();
    let _ = std::fs::remove_dir_all(&base);
}

/// A source at capacity sheds with `429 Retry-After` instead of queueing
/// or dropping. The federation client honors the header — it waits out
/// the advertised interval and then succeeds — so one overloaded source
/// costs latency, not availability, and no retry storm hits the server
/// while it recovers.
#[test]
fn shed_source_recovers_via_retry_after() {
    let base = scratch("shed");
    let cfg = netmark_federation::FrontendConfig {
        workers: 2,
        max_conns: 1,
        idle_timeout: Duration::from_millis(150),
        retry_after: Duration::from_secs(1),
        poll_interval: Duration::from_millis(5),
        ..netmark_federation::FrontendConfig::default()
    };
    let srv = netmark_webdav::serve_with(store_with(&base, "golf"), "127.0.0.1:0", cfg).unwrap();

    // Register while the server has room (capability negotiation needs a
    // slot); the pooled keep-alive connection is then reaped by the tiny
    // idle budget, freeing the slot again.
    let remote_cfg = RemoteConfig {
        client: ClientConfig {
            retries: 2,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(20),
            ..ClientConfig::default()
        },
        breaker: BreakerConfig {
            failure_threshold: 10,
            cooldown: Duration::from_millis(200),
        },
    };
    let src = RemoteSource::connect("golf", &srv.addr().to_string(), remote_cfg).unwrap();
    let mut router = Router::new();
    router.register_source(Arc::new(src)).unwrap();
    router.define_databank("bank", &["golf"]).unwrap();
    std::thread::sleep(Duration::from_millis(400)); // pooled conn reaped

    // Occupy the only slot, then free it while the client sleeps out the
    // Retry-After from its 429.
    let holder = TcpStream::connect(srv.addr()).unwrap();
    std::thread::sleep(Duration::from_millis(100)); // holder admitted
    let freer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(300));
        drop(holder);
    });

    let started = Instant::now();
    let fr = router.query("bank", &XdbQuery::context("Budget")).unwrap();
    let waited = started.elapsed();
    freer.join().unwrap();

    assert!(!fr.degraded(), "{:?}", fr.outcomes);
    assert_eq!(fr.results.len(), 1);
    assert!(
        waited >= Duration::from_secs(1),
        "client must wait out Retry-After before retrying: {waited:?}"
    );
    assert!(
        srv.server_stats().sheds >= 1,
        "the shed must be visible in server stats"
    );

    srv.stop();
    let _ = std::fs::remove_dir_all(&base);
}
