//! Property-based tests over the core data structures and invariants
//! (DESIGN.md §7).

use proptest::prelude::*;

// ---------------------------------------------------------------- relstore

mod page_props {
    use super::*;
    use netmark_relstore::page::{PageType, SlottedPage, PAGE_SIZE};
    use std::collections::HashMap;

    #[derive(Debug, Clone)]
    enum Op {
        Insert(Vec<u8>),
        Delete(usize),
        Update(usize, Vec<u8>),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            proptest::collection::vec(any::<u8>(), 0..300).prop_map(Op::Insert),
            (0usize..64).prop_map(Op::Delete),
            ((0usize..64), proptest::collection::vec(any::<u8>(), 0..300))
                .prop_map(|(s, d)| Op::Update(s, d)),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// A slotted page behaves like a map from stable slot numbers to
        /// byte strings, whatever the op sequence.
        #[test]
        fn page_equals_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
            let mut buf = vec![0u8; PAGE_SIZE];
            let mut page = SlottedPage::init(&mut buf, PageType::Heap);
            let mut model: HashMap<u16, Vec<u8>> = HashMap::new();
            let mut live: Vec<u16> = Vec::new();
            for op in ops {
                match op {
                    Op::Insert(data) => {
                        if let Some(slot) = page.insert(&data) {
                            model.insert(slot, data);
                            if !live.contains(&slot) {
                                live.push(slot);
                            }
                        }
                    }
                    Op::Delete(i) => {
                        if let Some(&slot) = live.get(i % live.len().max(1)) {
                            let had = model.remove(&slot).is_some();
                            let did = page.delete(slot).is_some();
                            prop_assert_eq!(had, did);
                            live.retain(|&s| s != slot);
                        }
                    }
                    Op::Update(i, data) => {
                        if let Some(&slot) = live.get(i % live.len().max(1)) {
                            if page.update(slot, &data) {
                                model.insert(slot, data);
                            }
                        }
                    }
                }
                // Full agreement after every op.
                for (&slot, data) in &model {
                    prop_assert_eq!(page.get(slot), Some(data.as_slice()));
                }
                prop_assert_eq!(page.live_count() as usize, model.len());
            }
        }
    }
}

mod btree_props {
    use super::*;
    use netmark_relstore::btree::BTree;
    use netmark_relstore::buffer::BufferPool;
    use netmark_relstore::disk::FileManager;
    use std::collections::BTreeMap;
    use std::sync::Arc;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        /// The paged B+ tree is observationally equal to std's BTreeMap
        /// under inserts, replaces, deletes, point and range lookups.
        #[test]
        fn btree_equals_btreemap(
            ops in proptest::collection::vec(
                (proptest::collection::vec(any::<u8>(), 1..40),
                 proptest::collection::vec(any::<u8>(), 0..40),
                 any::<bool>()),
                1..300,
            )
        ) {
            let dir = std::env::temp_dir().join(format!(
                "netmark-prop-bt-{}-{}", std::process::id(),
                rand::random::<u64>()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let fm = Arc::new(FileManager::open(&dir).unwrap());
            let pool = Arc::new(BufferPool::new(Arc::clone(&fm), 128));
            let f = fm.open_file("p.idx").unwrap();
            let tree = BTree::open(pool, f).unwrap();
            let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
            for (k, v, del) in ops {
                if del {
                    let had = model.remove(&k).is_some();
                    prop_assert_eq!(tree.delete(&k).unwrap(), had);
                } else {
                    tree.insert(&k, &v).unwrap();
                    model.insert(k.clone(), v.clone());
                }
                prop_assert_eq!(tree.get(&k).unwrap(), model.get(&k).cloned());
            }
            prop_assert_eq!(tree.len().unwrap(), model.len());
            let all = tree.scan_all().unwrap();
            let expect: Vec<(Vec<u8>, Vec<u8>)> =
                model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
            prop_assert_eq!(all, expect);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

mod codec_props {
    use super::*;
    use netmark_relstore::keyenc;
    use netmark_relstore::tuple::{decode_row, encode_row, Value};
    use netmark_relstore::RowId;

    fn value_strategy() -> impl Strategy<Value = Value> {
        prop_oneof![
            Just(Value::Null),
            any::<bool>().prop_map(Value::Bool),
            any::<i64>().prop_map(Value::Int),
            any::<f64>()
                .prop_filter("NaN breaks equality", |f| !f.is_nan())
                .prop_map(Value::Float),
            ".{0,40}".prop_map(Value::Text),
            proptest::collection::vec(any::<u8>(), 0..40).prop_map(Value::Bytes),
            (any::<u32>(), any::<u16>())
                .prop_map(|(p, s)| Value::Rowid(RowId { page: p, slot: s })),
        ]
    }

    proptest! {
        /// Row encode/decode is the identity.
        #[test]
        fn row_codec_round_trip(row in proptest::collection::vec(value_strategy(), 0..12)) {
            let mut buf = Vec::new();
            encode_row(&row, &mut buf);
            prop_assert_eq!(decode_row(&buf).unwrap(), row);
        }

        /// Decoding arbitrary bytes never panics.
        #[test]
        fn row_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
            let _ = decode_row(&bytes);
        }

        /// Key encoding preserves Int order byte-wise.
        #[test]
        fn keyenc_int_order(a in any::<i64>(), b in any::<i64>()) {
            let ka = keyenc::encode_key(&[Value::Int(a)]);
            let kb = keyenc::encode_key(&[Value::Int(b)]);
            prop_assert_eq!(a.cmp(&b), ka.cmp(&kb));
        }

        /// Key encoding preserves Text order byte-wise.
        #[test]
        fn keyenc_text_order(a in ".{0,20}", b in ".{0,20}") {
            let ka = keyenc::encode_key(&[Value::Text(a.clone())]);
            let kb = keyenc::encode_key(&[Value::Text(b.clone())]);
            prop_assert_eq!(a.as_bytes().cmp(b.as_bytes()), ka.cmp(&kb));
        }

        /// Composite prefix ranges contain exactly the extensions.
        #[test]
        fn keyenc_prefix_range(s in "[a-z]{1,8}", extra in any::<i64>()) {
            let (lo, hi) = keyenc::prefix_range(&[Value::Text(s.clone())]);
            let inside = keyenc::encode_key(&[Value::Text(s.clone()), Value::Int(extra)]);
            prop_assert!(lo <= inside && inside < hi);
        }
    }
}

mod wal_props {
    use super::*;
    use netmark_relstore::wal::{ObjectId, Wal, WalRecord};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        /// Whatever was appended and synced is read back verbatim, even
        /// with arbitrary garbage appended after (torn tail).
        #[test]
        fn wal_round_trip_with_torn_tail(
            payloads in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..60), 1..30),
            garbage in proptest::collection::vec(any::<u8>(), 0..40),
        ) {
            let dir = std::env::temp_dir().join(format!(
                "netmark-prop-wal-{}-{}", std::process::id(), rand::random::<u64>()));
            std::fs::create_dir_all(&dir).unwrap();
            let path = dir.join("wal.log");
            let records: Vec<WalRecord> = payloads
                .iter()
                .enumerate()
                .map(|(i, p)| WalRecord::Insert {
                    tx: i as u64,
                    obj: ObjectId(1),
                    page: i as u32,
                    slot: (i % 7) as u16,
                    data: p.clone(),
                })
                .collect();
            {
                let (mut wal, _) = Wal::open(&path, 0).unwrap();
                for r in &records {
                    wal.append(r).unwrap();
                }
                wal.sync().unwrap();
            }
            {
                use std::io::Write;
                let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
                f.write_all(&garbage).unwrap();
            }
            let (_, got) = Wal::open(&path, 0).unwrap();
            let got_records: Vec<WalRecord> = got.into_iter().map(|(_, r)| r).collect();
            // The full synced prefix must survive; garbage may add nothing.
            prop_assert!(got_records.len() >= records.len());
            prop_assert_eq!(&got_records[..records.len()], &records[..]);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

// ------------------------------------------------------------ model / sgml

mod xml_props {
    use super::*;
    use netmark_model::{Node, NodeType};
    use netmark_sgml::{parse_xml, NodeTypeConfig};

    fn name_strategy() -> impl Strategy<Value = String> {
        "[a-zA-Z][a-zA-Z0-9_-]{0,8}"
    }

    fn leaf_strategy() -> impl Strategy<Value = Node> {
        prop_oneof![
            // Text nodes: printable, trimmed-nonempty so whitespace
            // normalization in the parser can't drop them.
            "[ -~&<>]{1,20}"
                .prop_filter("needs visible chars", |s| !s.trim().is_empty())
                .prop_map(|s| Node::text(s.trim())),
            name_strategy().prop_map(|n| Node::element(&n)),
        ]
    }

    fn tree_strategy() -> impl Strategy<Value = Node> {
        leaf_strategy().prop_recursive(3, 40, 5, |inner| {
            (
                name_strategy(),
                proptest::collection::vec(("[a-zA-Z]{1,6}", "[ -~]{0,12}"), 0..3),
                proptest::collection::vec(inner, 0..5),
            )
                .prop_map(|(name, attrs, children)| {
                    let mut n = Node::element(&name);
                    for (k, v) in attrs {
                        // Attribute keys must be unique for round-tripping.
                        if n.attr(&k).is_none() {
                            n = n.with_attr(&k, &v);
                        }
                    }
                    // Avoid adjacent text nodes (serializer would merge).
                    let mut last_text = false;
                    for c in children {
                        let is_text = c.ntype == NodeType::Text;
                        if is_text && last_text {
                            continue;
                        }
                        last_text = is_text;
                        n.children.push(c);
                    }
                    n
                })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// serialize ∘ parse is the identity on generated element trees.
        #[test]
        fn xml_round_trip(tree in tree_strategy()) {
            prop_assume!(tree.ntype != NodeType::Text);
            let xml = tree.to_xml();
            let cfg = NodeTypeConfig::empty();
            let back = parse_xml(&xml, &cfg).unwrap();
            prop_assert_eq!(back, tree);
        }

        /// The HTML parser never panics on arbitrary printable input.
        #[test]
        fn html_parse_total(input in "[ -~]{0,300}") {
            let cfg = netmark_sgml::NodeTypeConfig::html_default();
            let _ = netmark_sgml::parse_html(&input, &cfg);
        }

        /// Escape/unescape round-trips arbitrary text.
        #[test]
        fn escape_round_trip(s in ".{0,60}") {
            prop_assert_eq!(netmark_model::unescape(&netmark_model::escape_text(&s)), s);
        }
    }
}

// ---------------------------------------------------------------- textindex

mod index_props {
    use super::*;
    use netmark_textindex::{query_terms, tokenize_text, InvertedIndex, TextQuery};

    proptest! {
        /// Token positions ascend strictly; terms are lowercase.
        #[test]
        fn tokenizer_invariants(text in ".{0,200}") {
            let toks = tokenize_text(&text);
            for w in toks.windows(2) {
                prop_assert!(w[0].position < w[1].position);
            }
            for t in &toks {
                prop_assert_eq!(t.term.to_lowercase(), t.term.clone());
                prop_assert!(!t.term.is_empty());
            }
        }

        /// Every indexed node is findable by each of its own terms, and
        /// tombstoned nodes never match.
        #[test]
        fn index_completeness(
            texts in proptest::collection::vec("[a-zA-Z ]{1,60}", 1..20),
            remove_mask in proptest::collection::vec(any::<bool>(), 1..20),
        ) {
            let mut ix = InvertedIndex::new();
            for (i, t) in texts.iter().enumerate() {
                ix.add(i as u64 + 1, t);
            }
            for (i, &rm) in remove_mask.iter().enumerate() {
                if rm && i < texts.len() {
                    ix.remove(i as u64 + 1);
                }
            }
            for (i, t) in texts.iter().enumerate() {
                let id = i as u64 + 1;
                let removed = remove_mask.get(i).copied().unwrap_or(false);
                for term in query_terms(t) {
                    let hits = ix.execute(&TextQuery::Term(term));
                    prop_assert_eq!(hits.contains(&id), !removed);
                }
            }
        }

        /// Save/load is the identity on query results.
        #[test]
        fn index_persistence(texts in proptest::collection::vec("[a-z ]{1,40}", 1..12)) {
            let mut ix = InvertedIndex::new();
            for (i, t) in texts.iter().enumerate() {
                ix.add(i as u64 + 1, t);
            }
            let dir = std::env::temp_dir().join(format!(
                "netmark-prop-ix-{}-{}", std::process::id(), rand::random::<u64>()));
            std::fs::create_dir_all(&dir).unwrap();
            let path = dir.join("ix.bin");
            ix.save(&path).unwrap();
            let back = InvertedIndex::load(&path).unwrap();
            for t in &texts {
                for term in query_terms(t) {
                    let q = TextQuery::Term(term);
                    prop_assert_eq!(ix.execute(&q), back.execute(&q));
                }
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

// --------------------------------------------------------------------- xdb

mod xdb_props {
    use super::*;
    use netmark_xdb::{url_decode, url_encode, MatchMode, RankMode, XdbQuery};

    proptest! {
        /// URL encode/decode round-trips arbitrary strings.
        #[test]
        fn url_codec_round_trip(s in ".{0,60}") {
            prop_assert_eq!(url_decode(&url_encode(&s)), s);
        }

        /// Query → query-string → query is the identity.
        #[test]
        fn query_round_trip(
            context in proptest::option::of(".{1,20}"),
            content in proptest::option::of(".{1,20}"),
            databank in proptest::option::of("[a-z]{1,10}"),
            limit in proptest::option::of(0usize..10000),
            phrase in any::<bool>(),
            ranked in any::<bool>(),
            floor in proptest::option::of(0.0f64..1e12),
        ) {
            // The fallible parser rejects values that trim to nothing —
            // only queries it would accept can round-trip.
            for v in [&context, &content].into_iter().flatten() {
                prop_assume!(!v.trim().is_empty());
            }
            let q = XdbQuery {
                context,
                content,
                databank,
                xslt: None,
                doc: None,
                limit,
                match_mode: if phrase { MatchMode::Phrase } else { MatchMode::Keywords },
                exact_contexts: Vec::new(),
                rank: if ranked { RankMode::Bm25 } else { RankMode::None },
                // `{}` prints the shortest representation that parses back
                // to the same f64, so any valid floor round-trips exactly.
                min_score: floor,
            };
            let back = XdbQuery::from_url(&q.to_query_string()).unwrap();
            prop_assert_eq!(back, q);
        }
    }
}

// --------------------------------------------------------- federation wire

mod wire_props {
    use super::*;
    use netmark_model::Node;
    use netmark_sgml::{parse_xml, NodeTypeConfig};
    use netmark_xdb::{Hit, ResultSet, WIRE_VERSION};

    /// Strings that survive the parser's whitespace handling verbatim:
    /// printable (incl. XML-special `&<>"`), no leading/trailing blanks.
    fn wire_text(regex: &'static str) -> impl Strategy<Value = String> {
        regex.prop_filter("trim-stable", |s: &String| {
            !s.trim().is_empty() && s.trim() == s
        })
    }

    fn hit_strategy() -> impl Strategy<Value = Hit> {
        (
            "[a-z][a-z0-9-]{0,7}",    // source (nonempty → survives verbatim)
            "[a-zA-Z0-9._-]{1,12}",   // document name
            wire_text("[ -~]{1,16}"), // context label
            proptest::option::of(wire_text("[ -~]{1,24}")),
            proptest::option::of(0u32..1_000_000),
        )
            .prop_map(|(source, doc, context, text, score)| Hit {
                source,
                doc,
                context,
                content: match text {
                    Some(t) => Node::element("Content").with_text(&t),
                    None => Node::element("Content"),
                },
                // Node ids are store-internal; they never cross the wire.
                context_node: 0,
                // Eighths print exactly under the wire's `{:.6}` format,
                // so float rendering cannot defeat the round-trip.
                score: score.map(|n| f64::from(n) / 8.0),
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// The versioned `<results>` wire format is lossless: serialize on
        /// the remote peer, parse + `from_node` on the router, and the
        /// result set — hits, sources, diagnostics, truncation — is
        /// unchanged.
        #[test]
        fn results_wire_round_trip(
            mut hits in proptest::collection::vec(hit_strategy(), 0..8),
            candidates in 0usize..100_000,
            truncated in any::<bool>(),
            ranked in any::<bool>(),
        ) {
            if !ranked {
                // v1 answers carry no score attributes: only ranked sets
                // round-trip scores through the wire.
                for h in &mut hits {
                    h.score = None;
                }
            }
            let rs = ResultSet { hits, candidates, truncated, ranked };
            let xml = rs.to_xml();
            let node = parse_xml(&xml, &NodeTypeConfig::empty()).unwrap();
            let want = if ranked { WIRE_VERSION } else { 1 };
            prop_assert_eq!(node.attr("version"),
                            Some(want.to_string().as_str()));
            let back = ResultSet::from_node(&node, "fallback");
            prop_assert_eq!(back, rs);
        }
    }
}

// ------------------------------------------------------- engine invariants

mod engine_props {
    use super::*;
    use netmark::{NetMark, XdbQuery};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]
        /// For any generated corpus: every section reported by a context
        /// query actually has that label, and every hit's document exists.
        #[test]
        fn context_query_soundness(seed in 0u64..1000) {
            let dir = std::env::temp_dir().join(format!(
                "netmark-prop-eng-{}-{}", std::process::id(), seed));
            let _ = std::fs::remove_dir_all(&dir);
            let nm = NetMark::open(&dir).unwrap();
            let docs = netmark_corpus::mixed(
                &netmark_corpus::CorpusConfig::sized(10).with_seed(seed));
            for d in &docs {
                nm.insert_file(&d.name, &d.content).unwrap();
            }
            let rs = nm.query(&XdbQuery::context("Budget")).unwrap();
            for hit in &rs.hits {
                prop_assert_eq!(hit.context.to_lowercase(), "budget");
                prop_assert!(nm.document_by_name(&hit.doc).unwrap().is_some());
            }
            // Combined results are a subset of both single-sided results.
            let combined = nm
                .query(&XdbQuery::context_content("Budget", "telemetry"))
                .unwrap();
            let content_only = nm.query(&XdbQuery::content("telemetry")).unwrap();
            for hit in &combined.hits {
                prop_assert!(rs.hits.iter().any(|h| h.context_node == hit.context_node));
                prop_assert!(content_only
                    .hits
                    .iter()
                    .any(|h| h.context_node == hit.context_node));
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

mod ingest_props {
    use super::*;
    use netmark::{NetMark, XdbQuery};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        /// Batched ingest is observationally identical to one-document-
        /// per-transaction ingest — same ids, same reconstructions, same
        /// query answers — for any corpus and any batch split. This pins
        /// the whole deferred-WAL / pointer-patch fast path to the simple
        /// sequential semantics.
        #[test]
        fn batch_ingest_equals_sequential(seed in 0u64..1000, chunk in 1usize..7) {
            let base = std::env::temp_dir().join(format!(
                "netmark-prop-batch-{}-{}-{}", std::process::id(), seed, chunk));
            let _ = std::fs::remove_dir_all(&base);
            let batch = NetMark::open(&base.join("b")).unwrap();
            let seq = NetMark::open(&base.join("s")).unwrap();
            let docs = netmark_corpus::mixed(
                &netmark_corpus::CorpusConfig::sized(8).with_seed(seed));
            let parsed: Vec<_> = docs
                .iter()
                .map(|d| netmark_docformats::upmark(&d.name, &d.content))
                .collect();
            let mut breps = Vec::new();
            for c in parsed.chunks(chunk) {
                breps.extend(batch.ingest_batch(c).unwrap());
            }
            let sreps: Vec<_> = parsed
                .iter()
                .map(|d| seq.insert_document(d).unwrap())
                .collect();
            prop_assert_eq!(breps.len(), sreps.len());
            for (b, s) in breps.iter().zip(&sreps) {
                prop_assert_eq!(b.doc_id, s.doc_id);
                prop_assert_eq!(b.root_node, s.root_node);
                prop_assert_eq!(b.node_count, s.node_count);
            }
            for rep in &breps {
                prop_assert_eq!(
                    batch.reconstruct_document(rep.doc_id).unwrap().root,
                    seq.reconstruct_document(rep.doc_id).unwrap().root);
            }
            for q in [XdbQuery::context("Budget"), XdbQuery::content("engine")] {
                prop_assert_eq!(
                    batch.query(&q).unwrap().hits,
                    seq.query(&q).unwrap().hits);
            }
            let _ = std::fs::remove_dir_all(&base);
        }
    }
}

// --------------------------------------------------------------------- gav

mod gav_props {
    use super::*;
    use netmark_gav::{
        CmpOp, GValue, GlobalView, Mapping, Mediator, Predicate, RelationSchema, Source, ViewQuery,
    };

    /// Brute-force evaluation of one mapping over raw rows.
    fn brute_force(
        rows: &[(String, Vec<(String, f64)>)], // (source, rows of (name, score))
        cutoffs: &[(String, f64)],             // per-source score cutoff
    ) -> Vec<String> {
        let mut out = Vec::new();
        for (src, data) in rows {
            let cutoff = cutoffs
                .iter()
                .find(|(s, _)| s == src)
                .map(|(_, c)| *c)
                .unwrap_or(f64::MAX);
            for (name, score) in data {
                if *score <= cutoff {
                    out.push(name.clone());
                }
            }
        }
        out
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// View unfolding is sound and complete: the mediated answer equals
        /// brute-force evaluation of the mapping semantics over the raw
        /// source instances.
        #[test]
        fn unfolding_equals_brute_force(
            per_source in proptest::collection::vec(
                (proptest::collection::vec(("[a-z]{1,6}", 0.0f64..10.0), 0..15),
                 0.0f64..10.0),
                1..5,
            )
        ) {
            let mut med = Mediator::new();
            let mut raw = Vec::new();
            let mut cutoffs = Vec::new();
            let mut mappings = Vec::new();
            for (i, (rows, cutoff)) in per_source.iter().enumerate() {
                let src = format!("s{i}");
                med.register_source(
                    Source::new(&src)
                        .with_relation(RelationSchema::new("r", &["name", "score"])),
                ).unwrap();
                let grows: Vec<Vec<GValue>> = rows
                    .iter()
                    .map(|(n, sc)| vec![GValue::Text(n.clone()), GValue::Num(*sc)])
                    .collect();
                med.load_rows(&src, "r", grows).unwrap();
                mappings.push(Mapping {
                    source: src.clone(),
                    relation: "r".into(),
                    selections: vec![Predicate::new("score", CmpOp::Le, *cutoff)],
                    projection: vec![Some("name".into())],
                });
                raw.push((src.clone(), rows.clone()));
                cutoffs.push((src, *cutoff));
            }
            med.define_view(GlobalView {
                name: "v".into(),
                columns: vec!["name".into()],
                mappings,
            }).unwrap();
            let (_, rows) = med.query(&ViewQuery {
                view: "v".into(),
                predicates: vec![],
                projection: vec![],
            }).unwrap();
            let got: Vec<String> = rows.iter().map(|r| r[0].to_string()).collect();
            let expect = brute_force(&raw, &cutoffs);
            prop_assert_eq!(got, expect);
        }

        /// Query predicates pushed through the unfolding never change the
        /// answer relative to post-filtering.
        #[test]
        fn pushed_predicates_equal_post_filter(
            rows in proptest::collection::vec(("[a-z]{1,6}", 0.0f64..10.0), 0..20),
            needle in "[a-z]{1}",
        ) {
            let mut med = Mediator::new();
            med.register_source(
                Source::new("s").with_relation(RelationSchema::new("r", &["name", "score"])),
            ).unwrap();
            med.load_rows(
                "s",
                "r",
                rows.iter()
                    .map(|(n, sc)| vec![GValue::Text(n.clone()), GValue::Num(*sc)])
                    .collect(),
            ).unwrap();
            med.define_view(GlobalView {
                name: "v".into(),
                columns: vec!["name".into()],
                mappings: vec![Mapping {
                    source: "s".into(),
                    relation: "r".into(),
                    selections: vec![],
                    projection: vec![Some("name".into())],
                }],
            }).unwrap();
            let (_, all) = med.query(&ViewQuery {
                view: "v".into(),
                predicates: vec![],
                projection: vec![],
            }).unwrap();
            let (_, filtered) = med.query(&ViewQuery {
                view: "v".into(),
                predicates: vec![Predicate::new("name", CmpOp::Contains, needle.as_str())],
                projection: vec![],
            }).unwrap();
            let post: Vec<String> = all
                .iter()
                .map(|r| r[0].to_string())
                .filter(|n| n.contains(&needle))
                .collect();
            let got: Vec<String> = filtered.iter().map(|r| r[0].to_string()).collect();
            prop_assert_eq!(got, post);
        }
    }
}
