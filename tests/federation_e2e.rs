//! Federation integration: databanks over live NETMARK peers + weak
//! sources, the NETMARK-vs-GAV same-answer property, and the full
//! HTTP/daemon stack feeding a federated query.

use netmark::{NetMark, XdbQuery};
use netmark_corpus::{lessons_learned, task_plans, CorpusConfig};
use netmark_federation::{match_document, ContentOnlySource, NetmarkSource, Router};
use std::io::{Read, Write};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("netmark-fede2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn federated_answers_match_local_union() {
    let base = scratch("union");
    // Two peers with disjoint corpora.
    let nm1 = Arc::new(NetMark::open(&base.join("p1")).unwrap());
    for d in task_plans(&CorpusConfig::sized(20).with_seed(1)) {
        nm1.insert_file(&d.name, &d.content).unwrap();
    }
    let nm2 = Arc::new(NetMark::open(&base.join("p2")).unwrap());
    for d in task_plans(&CorpusConfig::sized(20).with_seed(2)) {
        nm2.insert_file(&d.name, &d.content).unwrap();
    }
    let q = XdbQuery::context("Budget");
    let local_total = nm1.query(&q).unwrap().len() + nm2.query(&q).unwrap().len();

    let mut router = Router::new();
    router
        .register_source(Arc::new(NetmarkSource::new("p1", Arc::clone(&nm1))))
        .unwrap();
    router
        .register_source(Arc::new(NetmarkSource::new("p2", Arc::clone(&nm2))))
        .unwrap();
    router.define_databank("both", &["p1", "p2"]).unwrap();
    let fr = router.query("both", &q).unwrap();
    assert_eq!(
        fr.results.len(),
        local_total,
        "federation = union of locals"
    );
    // Every hit is attributed to the right source.
    for hit in &fr.results.hits {
        let local = if hit.source == "p1" { &nm1 } else { &nm2 };
        assert!(local.document_by_name(&hit.doc).unwrap().is_some());
    }
    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn augmentation_equals_full_capability_answers() {
    // The same corpus behind a full peer and behind a content-only source
    // must yield identical sections for a combined query.
    let base = scratch("augeq");
    let docs = lessons_learned(&CorpusConfig::sized(25));
    let nm = Arc::new(NetMark::open(&base.join("full")).unwrap());
    for d in &docs {
        nm.insert_file(&d.name, &d.content).unwrap();
    }
    let weak = ContentOnlySource::new(
        "weak",
        docs.iter()
            .map(|d| (d.name.clone(), d.content.clone()))
            .collect(),
    );
    let mut router = Router::new();
    router
        .register_source(Arc::new(NetmarkSource::new("full", nm)))
        .unwrap();
    router.register_source(Arc::new(weak)).unwrap();
    router.define_databank("full-bank", &["full"]).unwrap();
    router.define_databank("weak-bank", &["weak"]).unwrap();

    let q = XdbQuery::context_content("Recommendation", "engine");
    let full = router.query("full-bank", &q).unwrap();
    let weak = router.query("weak-bank", &q).unwrap();
    let mut full_keys: Vec<(String, String)> = full
        .results
        .hits
        .iter()
        .map(|h| (h.doc.clone(), h.context.clone()))
        .collect();
    let mut weak_keys: Vec<(String, String)> = weak
        .results
        .hits
        .iter()
        .map(|h| (h.doc.clone(), h.context.clone()))
        .collect();
    full_keys.sort();
    weak_keys.sort();
    assert_eq!(
        full_keys, weak_keys,
        "augmentation recovers the same sections"
    );
    assert!(weak.outcomes[0].augmented);
    assert!(!full.outcomes[0].augmented);
    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn matcher_agrees_with_engine_on_stored_documents() {
    // The in-memory matcher (augmentation engine) and the store's query
    // processor implement the same semantics.
    let base = scratch("agree");
    let nm = NetMark::open(&base).unwrap();
    let docs = lessons_learned(&CorpusConfig::sized(15));
    for d in &docs {
        nm.insert_file(&d.name, &d.content).unwrap();
    }
    for q in [
        XdbQuery::context("Summary"),
        XdbQuery::content("engine"),
        XdbQuery::context_content("Recommendation", "harness"),
    ] {
        let engine: Vec<(String, String)> = nm
            .query(&q)
            .unwrap()
            .hits
            .iter()
            .map(|h| (h.doc.clone(), h.context.clone()))
            .collect();
        let mut matcher: Vec<(String, String)> = Vec::new();
        for d in &docs {
            let doc = netmark_docformats::upmark(&d.name, &d.content);
            for h in match_document(&doc, &q) {
                matcher.push((h.doc.clone(), h.context.clone()));
            }
        }
        let mut engine_sorted = engine.clone();
        engine_sorted.sort();
        matcher.sort();
        assert_eq!(engine_sorted, matcher, "query {q} semantics agree");
    }
    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn http_ingest_feeds_federated_query() {
    let base = scratch("http");
    let nm = Arc::new(NetMark::open(&base.join("store")).unwrap());
    let server = netmark_webdav::serve(nm.clone(), "127.0.0.1:0").unwrap();

    // Upload over HTTP.
    let body = "# Budget\nuploaded money\n";
    let mut s = std::net::TcpStream::connect(server.addr()).unwrap();
    s.write_all(
        format!(
            "PUT /docs/up.txt HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        )
        .as_bytes(),
    )
    .unwrap();
    s.shutdown(std::net::Shutdown::Write).unwrap();
    let mut resp = String::new();
    s.read_to_string(&mut resp).unwrap();
    assert!(resp.starts_with("HTTP/1.1 201"));

    // The uploaded document is visible through a databank immediately.
    let mut router = Router::new();
    router
        .register_source(Arc::new(NetmarkSource::new("store", Arc::clone(&nm))))
        .unwrap();
    router.define_databank("app", &["store"]).unwrap();
    let fr = router.query("app", &XdbQuery::content("uploaded")).unwrap();
    assert_eq!(fr.results.len(), 1);
    assert_eq!(fr.results.hits[0].doc, "up.txt");

    server.stop();
    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn daemon_and_server_share_one_store() {
    let base = scratch("daemon-server");
    let drop_dir = base.join("dropbox");
    std::fs::create_dir_all(&drop_dir).unwrap();
    let nm = Arc::new(NetMark::open(&base.join("store")).unwrap());
    let daemon = netmark_webdav::watch_folder(nm.clone(), &drop_dir, Duration::from_millis(20));
    let server = netmark_webdav::serve(nm.clone(), "127.0.0.1:0").unwrap();

    std::fs::write(drop_dir.join("dropped.txt"), "# Budget\nfolder money\n").unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while daemon.stats().ingested < 1 {
        assert!(
            std::time::Instant::now() < deadline,
            "daemon never ingested"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    // Visible over HTTP.
    let mut s = std::net::TcpStream::connect(server.addr()).unwrap();
    s.write_all(b"GET /xdb?Content=folder HTTP/1.1\r\n\r\n")
        .unwrap();
    s.shutdown(std::net::Shutdown::Write).unwrap();
    let mut resp = String::new();
    s.read_to_string(&mut resp).unwrap();
    assert!(resp.contains("dropped.txt"), "{resp}");

    server.stop();
    daemon.stop();
    std::fs::remove_dir_all(&base).unwrap();
}
