//! Cross-crate edge cases: adversarial documents, big documents, empty
//! inputs, unicode, and concurrent access.

use netmark::{NetMark, XdbQuery};
use std::path::PathBuf;
use std::sync::Arc;

fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("netmark-edge-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn empty_and_whitespace_documents() {
    let dir = scratch("empty");
    let nm = NetMark::open(&dir).unwrap();
    nm.insert_file("empty.txt", "").unwrap();
    nm.insert_file("blank.txt", "   \n\n\t  \n").unwrap();
    assert_eq!(nm.list_documents().unwrap().len(), 2);
    // They contribute nothing to any query but don't break anything.
    assert!(nm.query(&XdbQuery::content("anything")).unwrap().is_empty());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn unicode_content_and_headings() {
    let dir = scratch("unicode");
    let nm = NetMark::open(&dir).unwrap();
    nm.insert_file(
        "übersicht.txt",
        "# Résumé\nnaïve café — ✓ übermäßig\n# Büdget\n一千万円\n",
    )
    .unwrap();
    let rs = nm.query(&XdbQuery::context("Résumé")).unwrap();
    assert_eq!(rs.len(), 1);
    assert!(rs.hits[0].content_text().contains("café"));
    // Case-insensitive context match applies Unicode lowercasing.
    let rs = nm.query(&XdbQuery::context("résumé")).unwrap();
    assert_eq!(rs.len(), 1);
    let rs = nm.query(&XdbQuery::content("一千万円")).unwrap();
    assert_eq!(rs.len(), 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn xml_injection_in_document_text_is_inert() {
    let dir = scratch("inject");
    let nm = NetMark::open(&dir).unwrap();
    nm.insert_file(
        "evil.txt",
        "# Attack\n<script>alert(1)</script> &amp; </Content><Context>Fake</Context>\n",
    )
    .unwrap();
    let rs = nm.query(&XdbQuery::context("Attack")).unwrap();
    assert_eq!(rs.len(), 1);
    // The markup-looking text is stored as *text*; the synthetic "Fake"
    // context does not exist.
    assert!(nm.query(&XdbQuery::context("Fake")).unwrap().is_empty());
    // And the serialized results re-parse (escaping is correct).
    let xml = rs.to_xml();
    let cfg = netmark_sgml::NodeTypeConfig::xml_default();
    let reparsed = netmark_sgml::parse_xml(&xml, &cfg).unwrap();
    assert!(reparsed
        .text_content()
        .contains("<script>alert(1)</script>"));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn document_larger_than_one_page() {
    let dir = scratch("big");
    let nm = NetMark::open(&dir).unwrap();
    // One section whose content paragraph is ~100 KiB: far beyond a single
    // 8 KiB page; the store must still round-trip it (tuple size permits
    // ~8 KiB per node, so the upmarker's paragraph splitting matters).
    let mut text = String::from("# Huge\n");
    for i in 0..2000 {
        text.push_str(&format!(
            "paragraph number {i} with sentinel word zebra{i}\n\n"
        ));
    }
    nm.insert_file("huge.txt", &text).unwrap();
    let rs = nm.query(&XdbQuery::content("zebra1999")).unwrap();
    assert_eq!(rs.len(), 1);
    assert_eq!(rs.hits[0].context, "Huge");
    let info = nm.document_by_name("huge.txt").unwrap().unwrap();
    let doc = nm.reconstruct_document(info.doc_id).unwrap();
    assert!(doc.root.size() > 2000);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn many_sections_one_document() {
    let dir = scratch("sections");
    let nm = NetMark::open(&dir).unwrap();
    let mut text = String::new();
    for i in 0..500 {
        text.push_str(&format!("# Section {i}\nbody {i}\n"));
    }
    nm.insert_file("many.txt", &text).unwrap();
    let rs = nm.query(&XdbQuery::context("Section 250")).unwrap();
    assert_eq!(rs.len(), 1);
    assert_eq!(rs.hits[0].content_text(), "body 250");
    // The unconstrained query sees all 500 sections.
    let q = XdbQuery {
        doc: Some("many.txt".into()),
        ..XdbQuery::default()
    };
    assert_eq!(nm.query(&q).unwrap().len(), 500);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn concurrent_readers_during_writes() {
    let dir = scratch("concurrent");
    let nm = Arc::new(NetMark::open(&dir).unwrap());
    for i in 0..20 {
        nm.insert_file(&format!("seed{i}.txt"), "# Budget\nseed money\n")
            .unwrap();
    }
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let nm = Arc::clone(&nm);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut total = 0usize;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let rs = nm.query(&XdbQuery::context("Budget")).unwrap();
                    assert!(rs.len() >= 20);
                    total += rs.len();
                }
                total
            })
        })
        .collect();
    // Writer thread: 30 more documents while readers hammer.
    for i in 0..30 {
        nm.insert_file(&format!("w{i}.txt"), "# Budget\nwriter money\n")
            .unwrap();
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for r in readers {
        assert!(r.join().unwrap() > 0);
    }
    assert_eq!(nm.query(&XdbQuery::context("Budget")).unwrap().len(), 50);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn context_labels_with_query_syntax_characters() {
    let dir = scratch("syntax");
    let nm = NetMark::open(&dir).unwrap();
    nm.insert_file(
        "odd.txt",
        "# Cost & Schedule = Risk?\nspecial heading body\n",
    )
    .unwrap();
    // Percent-encoding carries the label through the URL path.
    let url = format!(
        "Context={}",
        netmark_xdb::url_encode("Cost & Schedule = Risk?")
    );
    let rs = nm.query_url(&url).unwrap().results().unwrap();
    assert_eq!(rs.len(), 1);
    assert!(rs.hits[0].content_text().contains("special heading body"));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn duplicate_file_names_coexist() {
    // The store identifies documents by id; names are metadata (the
    // daemon layer enforces replace-on-reingest, the store does not).
    let dir = scratch("dupnames");
    let nm = NetMark::open(&dir).unwrap();
    nm.insert_file("same.txt", "# Budget\nfirst\n").unwrap();
    nm.insert_file("same.txt", "# Budget\nsecond\n").unwrap();
    let rs = nm.query(&XdbQuery::context("Budget")).unwrap();
    assert_eq!(rs.len(), 2);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn stylesheet_replacement_takes_effect() {
    let dir = scratch("ssreplace");
    let nm = NetMark::open(&dir).unwrap();
    nm.insert_file("a.txt", "# Budget\nmoney\n").unwrap();
    nm.register_stylesheet(
        "r",
        "<xsl:stylesheet><xsl:template match=\"/\"><v1/></xsl:template></xsl:stylesheet>",
    )
    .unwrap();
    let out = nm
        .query_url("Context=Budget&xslt=r")
        .unwrap()
        .composed()
        .unwrap();
    assert_eq!(out.name, "v1");
    nm.register_stylesheet(
        "r",
        "<xsl:stylesheet><xsl:template match=\"/\"><v2/></xsl:template></xsl:stylesheet>",
    )
    .unwrap();
    let out = nm
        .query_url("Context=Budget&xslt=r")
        .unwrap()
        .composed()
        .unwrap();
    assert_eq!(out.name, "v2");
    assert_eq!(nm.stylesheet_names(), vec!["r".to_string()]);
    std::fs::remove_dir_all(&dir).unwrap();
}
