//! End-to-end pipeline integration: raw files of every format → upmark →
//! schema-less store → the paper's query shapes → XSLT composition →
//! reconstruction, plus persistence across reopen.

use netmark::{NetMark, XdbQuery};
use netmark_corpus::{mixed, CorpusConfig};
use std::path::PathBuf;

fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("netmark-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn mixed_corpus_full_pipeline() {
    let dir = scratch("pipeline");
    let nm = NetMark::open(&dir).unwrap();
    let docs = mixed(&CorpusConfig::sized(60));
    for d in &docs {
        nm.insert_file(&d.name, &d.content).unwrap();
    }
    let stats = nm.stats().unwrap();
    assert_eq!(stats.documents, docs.len());
    assert!(
        stats.nodes > docs.len() * 5,
        "documents decomposed into nodes"
    );

    // Every generated wdoc/sdoc document has a Budget section.
    let rs = nm.query(&XdbQuery::context("Budget")).unwrap();
    assert!(
        rs.len() >= docs.len() / 3,
        "Budget sections found: {}",
        rs.len()
    );
    // Hits carry non-empty content and correct labels.
    for hit in &rs.hits {
        assert_eq!(hit.context, "Budget");
        assert!(!hit.doc.is_empty());
    }

    // Content search across formats.
    let rs = nm.query(&XdbQuery::content("engine")).unwrap();
    assert!(!rs.is_empty());

    // Composition through a registered stylesheet.
    nm.register_stylesheet(
        "wrap",
        r#"<xsl:stylesheet>
             <xsl:template match="/">
               <composed><xsl:for-each select="hit">
                 <part doc="{@doc}"><xsl:value-of select="Content"/></part>
               </xsl:for-each></composed>
             </xsl:template>
           </xsl:stylesheet>"#,
    )
    .unwrap();
    let out = nm
        .query_url("Context=Budget&xslt=wrap&limit=10")
        .unwrap()
        .composed()
        .unwrap();
    assert_eq!(out.name, "composed");
    assert_eq!(out.find_all("part").len(), 10);

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn reconstruction_is_lossless_for_all_formats() {
    let dir = scratch("lossless");
    let nm = NetMark::open(&dir).unwrap();
    let docs = mixed(&CorpusConfig::sized(12));
    for d in &docs {
        let upmarked = netmark_docformats::upmark(&d.name, &d.content);
        let rep = nm.insert_document(&upmarked).unwrap();
        let back = nm.reconstruct_document(rep.doc_id).unwrap();
        assert_eq!(
            back.root, upmarked.root,
            "lossless round trip for {}",
            d.name
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn queries_survive_reopen_and_reindex() {
    let dir = scratch("reopen");
    let docs = mixed(&CorpusConfig::sized(30));
    let expected;
    {
        let nm = NetMark::open(&dir).unwrap();
        for d in &docs {
            nm.insert_file(&d.name, &d.content).unwrap();
        }
        expected = nm.query(&XdbQuery::context("Budget")).unwrap();
        nm.flush().unwrap();
    }
    // Reopen with the persisted text index.
    {
        let nm = NetMark::open(&dir).unwrap();
        let rs = nm.query(&XdbQuery::context("Budget")).unwrap();
        assert_eq!(rs.hits, expected.hits);
    }
    // Delete the index directory: rebuilt from the store.
    std::fs::remove_dir_all(dir.join("text.idx.d")).unwrap();
    {
        let nm = NetMark::open(&dir).unwrap();
        let rs = nm.query(&XdbQuery::context("Budget")).unwrap();
        assert_eq!(rs.hits, expected.hits);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn crash_recovery_preserves_committed_documents() {
    let dir = scratch("crash");
    let docs = mixed(&CorpusConfig::sized(20));
    {
        let nm = NetMark::open(&dir).unwrap();
        for d in &docs {
            nm.insert_file(&d.name, &d.content).unwrap();
        }
        // Simulated crash: drop without flush/checkpoint. The WAL has every
        // commit; data pages were never written back.
    }
    let nm = NetMark::open(&dir).unwrap();
    assert_eq!(nm.list_documents().unwrap().len(), docs.len());
    let rs = nm.query(&XdbQuery::context("Budget")).unwrap();
    assert!(!rs.is_empty(), "indexes rebuilt after recovery");
    // The store remains writable after recovery.
    nm.insert_file("after-crash.txt", "# Budget\npost-crash money\n")
        .unwrap();
    let rs = nm.query(&XdbQuery::content("post-crash")).unwrap();
    assert_eq!(rs.len(), 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn concurrent_readers_during_batch_ingest() {
    let dir = scratch("concurrent");
    let nm = std::sync::Arc::new(NetMark::open(&dir).unwrap());
    // Seed a little data so readers have something from the first poll.
    nm.insert_file("seed.txt", "# Budget\nseed money\n")
        .unwrap();

    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let nm = std::sync::Arc::clone(&nm);
            let stop = std::sync::Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut last_docs = 0usize;
                let mut polls = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    // Stats never error and never go backwards (single
                    // writer, committed-snapshot visibility).
                    let s = nm.stats().unwrap();
                    assert!(s.documents >= last_docs, "doc count regressed");
                    last_docs = s.documents;
                    // Every hit the query returns must resolve to a live,
                    // fully linked document: each query pins one committed
                    // MVCC view, so it can never observe a half-ingested
                    // batch.
                    let rs = nm.query(&XdbQuery::context("Budget")).unwrap();
                    for hit in &rs.hits {
                        assert_eq!(hit.context, "Budget");
                        assert!(!hit.doc.is_empty());
                    }
                    polls += 1;
                }
                polls
            })
        })
        .collect();

    let docs = mixed(&CorpusConfig::sized(120));
    let parsed: Vec<_> = docs
        .iter()
        .map(|d| netmark_docformats::upmark(&d.name, &d.content))
        .collect();
    for chunk in parsed.chunks(16) {
        nm.ingest_batch(chunk).unwrap();
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for r in readers {
        let polls = r.join().expect("reader thread panicked");
        assert!(polls > 0, "reader never got to run");
    }
    let stats = nm.stats().unwrap();
    assert_eq!(stats.documents, docs.len() + 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn document_lifecycle_updates_results() {
    let dir = scratch("lifecycle");
    let nm = NetMark::open(&dir).unwrap();
    nm.insert_file("a.txt", "# Budget\nversion one\n").unwrap();
    let v1 = nm.query(&XdbQuery::context("Budget")).unwrap();
    assert!(v1.hits[0].content_text().contains("version one"));
    // Replace: remove + re-ingest (what the daemon does on modification).
    let info = nm.document_by_name("a.txt").unwrap().unwrap();
    nm.remove_document(info.doc_id).unwrap();
    nm.insert_file("a.txt", "# Budget\nversion two\n").unwrap();
    let v2 = nm.query(&XdbQuery::context("Budget")).unwrap();
    assert_eq!(v2.len(), 1);
    assert!(v2.hits[0].content_text().contains("version two"));
    std::fs::remove_dir_all(&dir).unwrap();
}
