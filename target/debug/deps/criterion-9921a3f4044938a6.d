/root/repo/target/debug/deps/criterion-9921a3f4044938a6.d: crates/shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-9921a3f4044938a6.rmeta: crates/shims/criterion/src/lib.rs

crates/shims/criterion/src/lib.rs:
