/root/repo/target/debug/deps/netmark_model-b47b5b50fac8b409.d: crates/model/src/lib.rs crates/model/src/escape.rs crates/model/src/node.rs Cargo.toml

/root/repo/target/debug/deps/libnetmark_model-b47b5b50fac8b409.rmeta: crates/model/src/lib.rs crates/model/src/escape.rs crates/model/src/node.rs Cargo.toml

crates/model/src/lib.rs:
crates/model/src/escape.rs:
crates/model/src/node.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
