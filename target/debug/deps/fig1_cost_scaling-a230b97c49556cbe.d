/root/repo/target/debug/deps/fig1_cost_scaling-a230b97c49556cbe.d: crates/bench/src/bin/fig1_cost_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_cost_scaling-a230b97c49556cbe.rmeta: crates/bench/src/bin/fig1_cost_scaling.rs Cargo.toml

crates/bench/src/bin/fig1_cost_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
