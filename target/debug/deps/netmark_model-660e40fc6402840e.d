/root/repo/target/debug/deps/netmark_model-660e40fc6402840e.d: crates/model/src/lib.rs crates/model/src/escape.rs crates/model/src/node.rs Cargo.toml

/root/repo/target/debug/deps/libnetmark_model-660e40fc6402840e.rmeta: crates/model/src/lib.rs crates/model/src/escape.rs crates/model/src/node.rs Cargo.toml

crates/model/src/lib.rs:
crates/model/src/escape.rs:
crates/model/src/node.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
