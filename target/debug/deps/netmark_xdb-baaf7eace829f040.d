/root/repo/target/debug/deps/netmark_xdb-baaf7eace829f040.d: crates/xdb/src/lib.rs crates/xdb/src/caps.rs crates/xdb/src/query.rs crates/xdb/src/result.rs

/root/repo/target/debug/deps/libnetmark_xdb-baaf7eace829f040.rlib: crates/xdb/src/lib.rs crates/xdb/src/caps.rs crates/xdb/src/query.rs crates/xdb/src/result.rs

/root/repo/target/debug/deps/libnetmark_xdb-baaf7eace829f040.rmeta: crates/xdb/src/lib.rs crates/xdb/src/caps.rs crates/xdb/src/query.rs crates/xdb/src/result.rs

crates/xdb/src/lib.rs:
crates/xdb/src/caps.rs:
crates/xdb/src/query.rs:
crates/xdb/src/result.rs:
