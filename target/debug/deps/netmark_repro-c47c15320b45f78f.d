/root/repo/target/debug/deps/netmark_repro-c47c15320b45f78f.d: src/lib.rs

/root/repo/target/debug/deps/netmark_repro-c47c15320b45f78f: src/lib.rs

src/lib.rs:
