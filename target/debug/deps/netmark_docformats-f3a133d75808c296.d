/root/repo/target/debug/deps/netmark_docformats-f3a133d75808c296.d: crates/docformats/src/lib.rs crates/docformats/src/canonical.rs crates/docformats/src/detect.rs crates/docformats/src/html.rs crates/docformats/src/pdoc.rs crates/docformats/src/plaintext.rs crates/docformats/src/sdoc.rs crates/docformats/src/spreadsheet.rs crates/docformats/src/wdoc.rs Cargo.toml

/root/repo/target/debug/deps/libnetmark_docformats-f3a133d75808c296.rmeta: crates/docformats/src/lib.rs crates/docformats/src/canonical.rs crates/docformats/src/detect.rs crates/docformats/src/html.rs crates/docformats/src/pdoc.rs crates/docformats/src/plaintext.rs crates/docformats/src/sdoc.rs crates/docformats/src/spreadsheet.rs crates/docformats/src/wdoc.rs Cargo.toml

crates/docformats/src/lib.rs:
crates/docformats/src/canonical.rs:
crates/docformats/src/detect.rs:
crates/docformats/src/html.rs:
crates/docformats/src/pdoc.rs:
crates/docformats/src/plaintext.rs:
crates/docformats/src/sdoc.rs:
crates/docformats/src/spreadsheet.rs:
crates/docformats/src/wdoc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
