/root/repo/target/debug/deps/netmark_bench-bb4feb6c5bf115cd.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/netmark_bench-bb4feb6c5bf115cd: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
