/root/repo/target/debug/deps/netmark_sgml-8e4be03e8916fce1.d: crates/sgml/src/lib.rs crates/sgml/src/config.rs crates/sgml/src/parser.rs crates/sgml/src/tokenizer.rs Cargo.toml

/root/repo/target/debug/deps/libnetmark_sgml-8e4be03e8916fce1.rmeta: crates/sgml/src/lib.rs crates/sgml/src/config.rs crates/sgml/src/parser.rs crates/sgml/src/tokenizer.rs Cargo.toml

crates/sgml/src/lib.rs:
crates/sgml/src/config.rs:
crates/sgml/src/parser.rs:
crates/sgml/src/tokenizer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
