/root/repo/target/debug/deps/netmark_federation-87e2778d5a48bf64.d: crates/federation/src/lib.rs crates/federation/src/adapter.rs crates/federation/src/client.rs crates/federation/src/databank.rs crates/federation/src/matcher.rs crates/federation/src/remote.rs crates/federation/src/serve.rs

/root/repo/target/debug/deps/libnetmark_federation-87e2778d5a48bf64.rlib: crates/federation/src/lib.rs crates/federation/src/adapter.rs crates/federation/src/client.rs crates/federation/src/databank.rs crates/federation/src/matcher.rs crates/federation/src/remote.rs crates/federation/src/serve.rs

/root/repo/target/debug/deps/libnetmark_federation-87e2778d5a48bf64.rmeta: crates/federation/src/lib.rs crates/federation/src/adapter.rs crates/federation/src/client.rs crates/federation/src/databank.rs crates/federation/src/matcher.rs crates/federation/src/remote.rs crates/federation/src/serve.rs

crates/federation/src/lib.rs:
crates/federation/src/adapter.rs:
crates/federation/src/client.rs:
crates/federation/src/databank.rs:
crates/federation/src/matcher.rs:
crates/federation/src/remote.rs:
crates/federation/src/serve.rs:
