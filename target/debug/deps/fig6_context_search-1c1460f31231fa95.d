/root/repo/target/debug/deps/fig6_context_search-1c1460f31231fa95.d: crates/bench/src/bin/fig6_context_search.rs

/root/repo/target/debug/deps/fig6_context_search-1c1460f31231fa95: crates/bench/src/bin/fig6_context_search.rs

crates/bench/src/bin/fig6_context_search.rs:
