/root/repo/target/debug/deps/fig3_pipeline-22c2b9f341aac80c.d: crates/bench/src/bin/fig3_pipeline.rs

/root/repo/target/debug/deps/fig3_pipeline-22c2b9f341aac80c: crates/bench/src/bin/fig3_pipeline.rs

crates/bench/src/bin/fig3_pipeline.rs:
