/root/repo/target/debug/deps/pipeline-9fb780041445ec02.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-9fb780041445ec02: tests/pipeline.rs

tests/pipeline.rs:
