/root/repo/target/debug/deps/parking_lot-d2abb1b2268ec40b.d: crates/shims/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-d2abb1b2268ec40b.rlib: crates/shims/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-d2abb1b2268ec40b.rmeta: crates/shims/parking_lot/src/lib.rs

crates/shims/parking_lot/src/lib.rs:
