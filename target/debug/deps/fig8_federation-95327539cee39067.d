/root/repo/target/debug/deps/fig8_federation-95327539cee39067.d: crates/bench/src/bin/fig8_federation.rs

/root/repo/target/debug/deps/fig8_federation-95327539cee39067: crates/bench/src/bin/fig8_federation.rs

crates/bench/src/bin/fig8_federation.rs:
