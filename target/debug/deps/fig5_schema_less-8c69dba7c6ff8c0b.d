/root/repo/target/debug/deps/fig5_schema_less-8c69dba7c6ff8c0b.d: crates/bench/src/bin/fig5_schema_less.rs

/root/repo/target/debug/deps/fig5_schema_less-8c69dba7c6ff8c0b: crates/bench/src/bin/fig5_schema_less.rs

crates/bench/src/bin/fig5_schema_less.rs:
