/root/repo/target/debug/deps/rand-4d4f54d3df0cdcc9.d: crates/shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-4d4f54d3df0cdcc9.rmeta: crates/shims/rand/src/lib.rs

crates/shims/rand/src/lib.rs:
