/root/repo/target/debug/deps/ablations-e30d82f15bae27cd.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-e30d82f15bae27cd: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
