/root/repo/target/debug/deps/criterion-6e7e6b9c5f51e163.d: crates/shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-6e7e6b9c5f51e163.rlib: crates/shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-6e7e6b9c5f51e163.rmeta: crates/shims/criterion/src/lib.rs

crates/shims/criterion/src/lib.rs:
