/root/repo/target/debug/deps/ablations-692f280e6596944b.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-692f280e6596944b: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
