/root/repo/target/debug/deps/netmark_corpus-935eca68e6f5c25e.d: crates/corpus/src/lib.rs crates/corpus/src/generate.rs crates/corpus/src/words.rs

/root/repo/target/debug/deps/netmark_corpus-935eca68e6f5c25e: crates/corpus/src/lib.rs crates/corpus/src/generate.rs crates/corpus/src/words.rs

crates/corpus/src/lib.rs:
crates/corpus/src/generate.rs:
crates/corpus/src/words.rs:
