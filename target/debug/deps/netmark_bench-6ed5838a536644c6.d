/root/repo/target/debug/deps/netmark_bench-6ed5838a536644c6.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libnetmark_bench-6ed5838a536644c6.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libnetmark_bench-6ed5838a536644c6.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
