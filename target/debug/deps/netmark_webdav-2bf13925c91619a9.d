/root/repo/target/debug/deps/netmark_webdav-2bf13925c91619a9.d: crates/webdav/src/lib.rs crates/webdav/src/daemon.rs crates/webdav/src/http.rs crates/webdav/src/ingest.rs crates/webdav/src/server.rs

/root/repo/target/debug/deps/netmark_webdav-2bf13925c91619a9: crates/webdav/src/lib.rs crates/webdav/src/daemon.rs crates/webdav/src/http.rs crates/webdav/src/ingest.rs crates/webdav/src/server.rs

crates/webdav/src/lib.rs:
crates/webdav/src/daemon.rs:
crates/webdav/src/http.rs:
crates/webdav/src/ingest.rs:
crates/webdav/src/server.rs:
