/root/repo/target/debug/deps/netmark-cfea356bbdd6bef5.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libnetmark-cfea356bbdd6bef5.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
