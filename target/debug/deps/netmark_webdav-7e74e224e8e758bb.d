/root/repo/target/debug/deps/netmark_webdav-7e74e224e8e758bb.d: crates/webdav/src/lib.rs crates/webdav/src/daemon.rs crates/webdav/src/http.rs crates/webdav/src/ingest.rs crates/webdav/src/server.rs Cargo.toml

/root/repo/target/debug/deps/libnetmark_webdav-7e74e224e8e758bb.rmeta: crates/webdav/src/lib.rs crates/webdav/src/daemon.rs crates/webdav/src/http.rs crates/webdav/src/ingest.rs crates/webdav/src/server.rs Cargo.toml

crates/webdav/src/lib.rs:
crates/webdav/src/daemon.rs:
crates/webdav/src/http.rs:
crates/webdav/src/ingest.rs:
crates/webdav/src/server.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
