/root/repo/target/debug/deps/netmark_xslt-2f4f366610d3c4d8.d: crates/xslt/src/lib.rs crates/xslt/src/transform.rs crates/xslt/src/xpath.rs Cargo.toml

/root/repo/target/debug/deps/libnetmark_xslt-2f4f366610d3c4d8.rmeta: crates/xslt/src/lib.rs crates/xslt/src/transform.rs crates/xslt/src/xpath.rs Cargo.toml

crates/xslt/src/lib.rs:
crates/xslt/src/transform.rs:
crates/xslt/src/xpath.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
