/root/repo/target/debug/deps/fig3_pipeline-263e392c2953cda3.d: crates/bench/src/bin/fig3_pipeline.rs

/root/repo/target/debug/deps/fig3_pipeline-263e392c2953cda3: crates/bench/src/bin/fig3_pipeline.rs

crates/bench/src/bin/fig3_pipeline.rs:
