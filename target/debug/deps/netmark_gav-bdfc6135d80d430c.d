/root/repo/target/debug/deps/netmark_gav-bdfc6135d80d430c.d: crates/gav/src/lib.rs crates/gav/src/mediator.rs crates/gav/src/model.rs

/root/repo/target/debug/deps/netmark_gav-bdfc6135d80d430c: crates/gav/src/lib.rs crates/gav/src/mediator.rs crates/gav/src/model.rs

crates/gav/src/lib.rs:
crates/gav/src/mediator.rs:
crates/gav/src/model.rs:
