/root/repo/target/debug/deps/netmark_textindex-b41aa01ca917861a.d: crates/textindex/src/lib.rs crates/textindex/src/index.rs crates/textindex/src/postings.rs crates/textindex/src/tokenize.rs

/root/repo/target/debug/deps/netmark_textindex-b41aa01ca917861a: crates/textindex/src/lib.rs crates/textindex/src/index.rs crates/textindex/src/postings.rs crates/textindex/src/tokenize.rs

crates/textindex/src/lib.rs:
crates/textindex/src/index.rs:
crates/textindex/src/postings.rs:
crates/textindex/src/tokenize.rs:
