/root/repo/target/debug/deps/rand-2d3934bde2229d1d.d: crates/shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-2d3934bde2229d1d.rlib: crates/shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-2d3934bde2229d1d.rmeta: crates/shims/rand/src/lib.rs

crates/shims/rand/src/lib.rs:
