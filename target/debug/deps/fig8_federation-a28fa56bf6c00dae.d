/root/repo/target/debug/deps/fig8_federation-a28fa56bf6c00dae.d: crates/bench/src/bin/fig8_federation.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_federation-a28fa56bf6c00dae.rmeta: crates/bench/src/bin/fig8_federation.rs Cargo.toml

crates/bench/src/bin/fig8_federation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
