/root/repo/target/debug/deps/properties-32e53355d2ab3c7b.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-32e53355d2ab3c7b.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
