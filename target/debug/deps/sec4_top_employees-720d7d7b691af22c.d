/root/repo/target/debug/deps/sec4_top_employees-720d7d7b691af22c.d: crates/bench/src/bin/sec4_top_employees.rs

/root/repo/target/debug/deps/sec4_top_employees-720d7d7b691af22c: crates/bench/src/bin/sec4_top_employees.rs

crates/bench/src/bin/sec4_top_employees.rs:
