/root/repo/target/debug/deps/reproduce_all-07241f76db377885.d: crates/bench/src/bin/reproduce_all.rs

/root/repo/target/debug/deps/reproduce_all-07241f76db377885: crates/bench/src/bin/reproduce_all.rs

crates/bench/src/bin/reproduce_all.rs:
