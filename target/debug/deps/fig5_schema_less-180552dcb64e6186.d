/root/repo/target/debug/deps/fig5_schema_less-180552dcb64e6186.d: crates/bench/src/bin/fig5_schema_less.rs

/root/repo/target/debug/deps/fig5_schema_less-180552dcb64e6186: crates/bench/src/bin/fig5_schema_less.rs

crates/bench/src/bin/fig5_schema_less.rs:
