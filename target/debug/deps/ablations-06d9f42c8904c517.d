/root/repo/target/debug/deps/ablations-06d9f42c8904c517.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-06d9f42c8904c517: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
