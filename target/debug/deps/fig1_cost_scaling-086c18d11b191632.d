/root/repo/target/debug/deps/fig1_cost_scaling-086c18d11b191632.d: crates/bench/src/bin/fig1_cost_scaling.rs

/root/repo/target/debug/deps/fig1_cost_scaling-086c18d11b191632: crates/bench/src/bin/fig1_cost_scaling.rs

crates/bench/src/bin/fig1_cost_scaling.rs:
