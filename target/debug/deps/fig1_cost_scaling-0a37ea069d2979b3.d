/root/repo/target/debug/deps/fig1_cost_scaling-0a37ea069d2979b3.d: crates/bench/src/bin/fig1_cost_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_cost_scaling-0a37ea069d2979b3.rmeta: crates/bench/src/bin/fig1_cost_scaling.rs Cargo.toml

crates/bench/src/bin/fig1_cost_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
