/root/repo/target/debug/deps/fig7_xslt-660e6f10bee0083f.d: crates/bench/src/bin/fig7_xslt.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_xslt-660e6f10bee0083f.rmeta: crates/bench/src/bin/fig7_xslt.rs Cargo.toml

crates/bench/src/bin/fig7_xslt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
