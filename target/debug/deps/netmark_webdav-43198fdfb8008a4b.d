/root/repo/target/debug/deps/netmark_webdav-43198fdfb8008a4b.d: crates/webdav/src/lib.rs crates/webdav/src/daemon.rs crates/webdav/src/http.rs crates/webdav/src/server.rs

/root/repo/target/debug/deps/netmark_webdav-43198fdfb8008a4b: crates/webdav/src/lib.rs crates/webdav/src/daemon.rs crates/webdav/src/http.rs crates/webdav/src/server.rs

crates/webdav/src/lib.rs:
crates/webdav/src/daemon.rs:
crates/webdav/src/http.rs:
crates/webdav/src/server.rs:
