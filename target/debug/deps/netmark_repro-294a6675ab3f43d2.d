/root/repo/target/debug/deps/netmark_repro-294a6675ab3f43d2.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnetmark_repro-294a6675ab3f43d2.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
