/root/repo/target/debug/deps/netmark_bench-d7d554c60e94602e.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnetmark_bench-d7d554c60e94602e.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
