/root/repo/target/debug/deps/fig6_context_search-7b422d8f39edace5.d: crates/bench/src/bin/fig6_context_search.rs

/root/repo/target/debug/deps/fig6_context_search-7b422d8f39edace5: crates/bench/src/bin/fig6_context_search.rs

crates/bench/src/bin/fig6_context_search.rs:
