/root/repo/target/debug/deps/reproduce_all-34ccb6aabeebc12e.d: crates/bench/src/bin/reproduce_all.rs Cargo.toml

/root/repo/target/debug/deps/libreproduce_all-34ccb6aabeebc12e.rmeta: crates/bench/src/bin/reproduce_all.rs Cargo.toml

crates/bench/src/bin/reproduce_all.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
