/root/repo/target/debug/deps/fig3_pipeline-579d35511f76542e.d: crates/bench/src/bin/fig3_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_pipeline-579d35511f76542e.rmeta: crates/bench/src/bin/fig3_pipeline.rs Cargo.toml

crates/bench/src/bin/fig3_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
