/root/repo/target/debug/deps/netmark_xslt-e58a66b1b9226c5a.d: crates/xslt/src/lib.rs crates/xslt/src/transform.rs crates/xslt/src/xpath.rs

/root/repo/target/debug/deps/libnetmark_xslt-e58a66b1b9226c5a.rlib: crates/xslt/src/lib.rs crates/xslt/src/transform.rs crates/xslt/src/xpath.rs

/root/repo/target/debug/deps/libnetmark_xslt-e58a66b1b9226c5a.rmeta: crates/xslt/src/lib.rs crates/xslt/src/transform.rs crates/xslt/src/xpath.rs

crates/xslt/src/lib.rs:
crates/xslt/src/transform.rs:
crates/xslt/src/xpath.rs:
