/root/repo/target/debug/deps/fig5_schema_less-650bdf3d15fdf525.d: crates/bench/src/bin/fig5_schema_less.rs

/root/repo/target/debug/deps/fig5_schema_less-650bdf3d15fdf525: crates/bench/src/bin/fig5_schema_less.rs

crates/bench/src/bin/fig5_schema_less.rs:
