/root/repo/target/debug/deps/netmark_repro-9bdac35203b8e675.d: src/lib.rs

/root/repo/target/debug/deps/libnetmark_repro-9bdac35203b8e675.rlib: src/lib.rs

/root/repo/target/debug/deps/libnetmark_repro-9bdac35203b8e675.rmeta: src/lib.rs

src/lib.rs:
