/root/repo/target/debug/deps/netmark-cba37f029dfe3bd3.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/netmark-cba37f029dfe3bd3: crates/cli/src/main.rs

crates/cli/src/main.rs:
