/root/repo/target/debug/deps/reproduce_all-ebfbebb6c0bfaa5e.d: crates/bench/src/bin/reproduce_all.rs Cargo.toml

/root/repo/target/debug/deps/libreproduce_all-ebfbebb6c0bfaa5e.rmeta: crates/bench/src/bin/reproduce_all.rs Cargo.toml

crates/bench/src/bin/reproduce_all.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
