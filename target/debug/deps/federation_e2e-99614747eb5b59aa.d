/root/repo/target/debug/deps/federation_e2e-99614747eb5b59aa.d: tests/federation_e2e.rs

/root/repo/target/debug/deps/federation_e2e-99614747eb5b59aa: tests/federation_e2e.rs

tests/federation_e2e.rs:
