/root/repo/target/debug/deps/netmark_model-a7ec56c725ff261e.d: crates/model/src/lib.rs crates/model/src/escape.rs crates/model/src/node.rs

/root/repo/target/debug/deps/libnetmark_model-a7ec56c725ff261e.rlib: crates/model/src/lib.rs crates/model/src/escape.rs crates/model/src/node.rs

/root/repo/target/debug/deps/libnetmark_model-a7ec56c725ff261e.rmeta: crates/model/src/lib.rs crates/model/src/escape.rs crates/model/src/node.rs

crates/model/src/lib.rs:
crates/model/src/escape.rs:
crates/model/src/node.rs:
