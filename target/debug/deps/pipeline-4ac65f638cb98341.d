/root/repo/target/debug/deps/pipeline-4ac65f638cb98341.d: tests/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-4ac65f638cb98341.rmeta: tests/pipeline.rs Cargo.toml

tests/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
