/root/repo/target/debug/deps/netmark_relstore-7b174b0707753e9d.d: crates/relstore/src/lib.rs crates/relstore/src/btree.rs crates/relstore/src/buffer.rs crates/relstore/src/catalog.rs crates/relstore/src/db.rs crates/relstore/src/disk.rs crates/relstore/src/error.rs crates/relstore/src/heap.rs crates/relstore/src/keyenc.rs crates/relstore/src/page.rs crates/relstore/src/tuple.rs crates/relstore/src/wal.rs

/root/repo/target/debug/deps/libnetmark_relstore-7b174b0707753e9d.rlib: crates/relstore/src/lib.rs crates/relstore/src/btree.rs crates/relstore/src/buffer.rs crates/relstore/src/catalog.rs crates/relstore/src/db.rs crates/relstore/src/disk.rs crates/relstore/src/error.rs crates/relstore/src/heap.rs crates/relstore/src/keyenc.rs crates/relstore/src/page.rs crates/relstore/src/tuple.rs crates/relstore/src/wal.rs

/root/repo/target/debug/deps/libnetmark_relstore-7b174b0707753e9d.rmeta: crates/relstore/src/lib.rs crates/relstore/src/btree.rs crates/relstore/src/buffer.rs crates/relstore/src/catalog.rs crates/relstore/src/db.rs crates/relstore/src/disk.rs crates/relstore/src/error.rs crates/relstore/src/heap.rs crates/relstore/src/keyenc.rs crates/relstore/src/page.rs crates/relstore/src/tuple.rs crates/relstore/src/wal.rs

crates/relstore/src/lib.rs:
crates/relstore/src/btree.rs:
crates/relstore/src/buffer.rs:
crates/relstore/src/catalog.rs:
crates/relstore/src/db.rs:
crates/relstore/src/disk.rs:
crates/relstore/src/error.rs:
crates/relstore/src/heap.rs:
crates/relstore/src/keyenc.rs:
crates/relstore/src/page.rs:
crates/relstore/src/tuple.rs:
crates/relstore/src/wal.rs:
