/root/repo/target/debug/deps/netmark-7e092d3bc957f133.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/metrics.rs crates/core/src/netmark.rs crates/core/src/pipeline.rs crates/core/src/schema.rs crates/core/src/search.rs crates/core/src/store.rs Cargo.toml

/root/repo/target/debug/deps/libnetmark-7e092d3bc957f133.rmeta: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/metrics.rs crates/core/src/netmark.rs crates/core/src/pipeline.rs crates/core/src/schema.rs crates/core/src/search.rs crates/core/src/store.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/metrics.rs:
crates/core/src/netmark.rs:
crates/core/src/pipeline.rs:
crates/core/src/schema.rs:
crates/core/src/search.rs:
crates/core/src/store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
