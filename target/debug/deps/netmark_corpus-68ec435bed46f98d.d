/root/repo/target/debug/deps/netmark_corpus-68ec435bed46f98d.d: crates/corpus/src/lib.rs crates/corpus/src/generate.rs crates/corpus/src/words.rs Cargo.toml

/root/repo/target/debug/deps/libnetmark_corpus-68ec435bed46f98d.rmeta: crates/corpus/src/lib.rs crates/corpus/src/generate.rs crates/corpus/src/words.rs Cargo.toml

crates/corpus/src/lib.rs:
crates/corpus/src/generate.rs:
crates/corpus/src/words.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
