/root/repo/target/debug/deps/fig5_schema_less-9596971ebd12cd7d.d: crates/bench/src/bin/fig5_schema_less.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_schema_less-9596971ebd12cd7d.rmeta: crates/bench/src/bin/fig5_schema_less.rs Cargo.toml

crates/bench/src/bin/fig5_schema_less.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
