/root/repo/target/debug/deps/netmark_federation-6dddbba7358b1ec7.d: crates/federation/src/lib.rs crates/federation/src/adapter.rs crates/federation/src/client.rs crates/federation/src/databank.rs crates/federation/src/matcher.rs crates/federation/src/remote.rs crates/federation/src/serve.rs

/root/repo/target/debug/deps/netmark_federation-6dddbba7358b1ec7: crates/federation/src/lib.rs crates/federation/src/adapter.rs crates/federation/src/client.rs crates/federation/src/databank.rs crates/federation/src/matcher.rs crates/federation/src/remote.rs crates/federation/src/serve.rs

crates/federation/src/lib.rs:
crates/federation/src/adapter.rs:
crates/federation/src/client.rs:
crates/federation/src/databank.rs:
crates/federation/src/matcher.rs:
crates/federation/src/remote.rs:
crates/federation/src/serve.rs:
