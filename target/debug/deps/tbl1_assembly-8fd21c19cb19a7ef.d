/root/repo/target/debug/deps/tbl1_assembly-8fd21c19cb19a7ef.d: crates/bench/src/bin/tbl1_assembly.rs Cargo.toml

/root/repo/target/debug/deps/libtbl1_assembly-8fd21c19cb19a7ef.rmeta: crates/bench/src/bin/tbl1_assembly.rs Cargo.toml

crates/bench/src/bin/tbl1_assembly.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
