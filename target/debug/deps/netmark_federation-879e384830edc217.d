/root/repo/target/debug/deps/netmark_federation-879e384830edc217.d: crates/federation/src/lib.rs crates/federation/src/adapter.rs crates/federation/src/databank.rs crates/federation/src/matcher.rs crates/federation/src/serve.rs

/root/repo/target/debug/deps/libnetmark_federation-879e384830edc217.rlib: crates/federation/src/lib.rs crates/federation/src/adapter.rs crates/federation/src/databank.rs crates/federation/src/matcher.rs crates/federation/src/serve.rs

/root/repo/target/debug/deps/libnetmark_federation-879e384830edc217.rmeta: crates/federation/src/lib.rs crates/federation/src/adapter.rs crates/federation/src/databank.rs crates/federation/src/matcher.rs crates/federation/src/serve.rs

crates/federation/src/lib.rs:
crates/federation/src/adapter.rs:
crates/federation/src/databank.rs:
crates/federation/src/matcher.rs:
crates/federation/src/serve.rs:
