/root/repo/target/debug/deps/properties-4fa2c1d39235d2c8.d: tests/properties.rs

/root/repo/target/debug/deps/properties-4fa2c1d39235d2c8: tests/properties.rs

tests/properties.rs:
