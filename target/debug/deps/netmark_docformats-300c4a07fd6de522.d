/root/repo/target/debug/deps/netmark_docformats-300c4a07fd6de522.d: crates/docformats/src/lib.rs crates/docformats/src/canonical.rs crates/docformats/src/detect.rs crates/docformats/src/html.rs crates/docformats/src/pdoc.rs crates/docformats/src/plaintext.rs crates/docformats/src/sdoc.rs crates/docformats/src/spreadsheet.rs crates/docformats/src/wdoc.rs

/root/repo/target/debug/deps/libnetmark_docformats-300c4a07fd6de522.rlib: crates/docformats/src/lib.rs crates/docformats/src/canonical.rs crates/docformats/src/detect.rs crates/docformats/src/html.rs crates/docformats/src/pdoc.rs crates/docformats/src/plaintext.rs crates/docformats/src/sdoc.rs crates/docformats/src/spreadsheet.rs crates/docformats/src/wdoc.rs

/root/repo/target/debug/deps/libnetmark_docformats-300c4a07fd6de522.rmeta: crates/docformats/src/lib.rs crates/docformats/src/canonical.rs crates/docformats/src/detect.rs crates/docformats/src/html.rs crates/docformats/src/pdoc.rs crates/docformats/src/plaintext.rs crates/docformats/src/sdoc.rs crates/docformats/src/spreadsheet.rs crates/docformats/src/wdoc.rs

crates/docformats/src/lib.rs:
crates/docformats/src/canonical.rs:
crates/docformats/src/detect.rs:
crates/docformats/src/html.rs:
crates/docformats/src/pdoc.rs:
crates/docformats/src/plaintext.rs:
crates/docformats/src/sdoc.rs:
crates/docformats/src/spreadsheet.rs:
crates/docformats/src/wdoc.rs:
