/root/repo/target/debug/deps/fig1_cost_scaling-6012dc165f24730a.d: crates/bench/src/bin/fig1_cost_scaling.rs

/root/repo/target/debug/deps/fig1_cost_scaling-6012dc165f24730a: crates/bench/src/bin/fig1_cost_scaling.rs

crates/bench/src/bin/fig1_cost_scaling.rs:
