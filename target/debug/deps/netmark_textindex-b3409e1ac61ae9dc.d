/root/repo/target/debug/deps/netmark_textindex-b3409e1ac61ae9dc.d: crates/textindex/src/lib.rs crates/textindex/src/index.rs crates/textindex/src/postings.rs crates/textindex/src/tokenize.rs

/root/repo/target/debug/deps/libnetmark_textindex-b3409e1ac61ae9dc.rlib: crates/textindex/src/lib.rs crates/textindex/src/index.rs crates/textindex/src/postings.rs crates/textindex/src/tokenize.rs

/root/repo/target/debug/deps/libnetmark_textindex-b3409e1ac61ae9dc.rmeta: crates/textindex/src/lib.rs crates/textindex/src/index.rs crates/textindex/src/postings.rs crates/textindex/src/tokenize.rs

crates/textindex/src/lib.rs:
crates/textindex/src/index.rs:
crates/textindex/src/postings.rs:
crates/textindex/src/tokenize.rs:
