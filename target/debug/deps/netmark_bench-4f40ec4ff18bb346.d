/root/repo/target/debug/deps/netmark_bench-4f40ec4ff18bb346.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/netmark_bench-4f40ec4ff18bb346: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
