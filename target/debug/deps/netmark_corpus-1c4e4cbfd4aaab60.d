/root/repo/target/debug/deps/netmark_corpus-1c4e4cbfd4aaab60.d: crates/corpus/src/lib.rs crates/corpus/src/generate.rs crates/corpus/src/words.rs Cargo.toml

/root/repo/target/debug/deps/libnetmark_corpus-1c4e4cbfd4aaab60.rmeta: crates/corpus/src/lib.rs crates/corpus/src/generate.rs crates/corpus/src/words.rs Cargo.toml

crates/corpus/src/lib.rs:
crates/corpus/src/generate.rs:
crates/corpus/src/words.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
