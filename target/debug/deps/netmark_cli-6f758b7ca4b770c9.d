/root/repo/target/debug/deps/netmark_cli-6f758b7ca4b770c9.d: crates/cli/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnetmark_cli-6f758b7ca4b770c9.rmeta: crates/cli/src/lib.rs Cargo.toml

crates/cli/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
