/root/repo/target/debug/deps/edge_cases-00cb4f6d08a3ef3c.d: tests/edge_cases.rs

/root/repo/target/debug/deps/edge_cases-00cb4f6d08a3ef3c: tests/edge_cases.rs

tests/edge_cases.rs:
