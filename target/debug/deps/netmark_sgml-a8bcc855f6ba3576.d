/root/repo/target/debug/deps/netmark_sgml-a8bcc855f6ba3576.d: crates/sgml/src/lib.rs crates/sgml/src/config.rs crates/sgml/src/parser.rs crates/sgml/src/tokenizer.rs

/root/repo/target/debug/deps/libnetmark_sgml-a8bcc855f6ba3576.rlib: crates/sgml/src/lib.rs crates/sgml/src/config.rs crates/sgml/src/parser.rs crates/sgml/src/tokenizer.rs

/root/repo/target/debug/deps/libnetmark_sgml-a8bcc855f6ba3576.rmeta: crates/sgml/src/lib.rs crates/sgml/src/config.rs crates/sgml/src/parser.rs crates/sgml/src/tokenizer.rs

crates/sgml/src/lib.rs:
crates/sgml/src/config.rs:
crates/sgml/src/parser.rs:
crates/sgml/src/tokenizer.rs:
