/root/repo/target/debug/deps/pipeline-48ffd658abfe2947.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-48ffd658abfe2947: tests/pipeline.rs

tests/pipeline.rs:
