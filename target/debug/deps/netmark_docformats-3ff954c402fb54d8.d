/root/repo/target/debug/deps/netmark_docformats-3ff954c402fb54d8.d: crates/docformats/src/lib.rs crates/docformats/src/canonical.rs crates/docformats/src/detect.rs crates/docformats/src/html.rs crates/docformats/src/pdoc.rs crates/docformats/src/plaintext.rs crates/docformats/src/sdoc.rs crates/docformats/src/spreadsheet.rs crates/docformats/src/wdoc.rs

/root/repo/target/debug/deps/netmark_docformats-3ff954c402fb54d8: crates/docformats/src/lib.rs crates/docformats/src/canonical.rs crates/docformats/src/detect.rs crates/docformats/src/html.rs crates/docformats/src/pdoc.rs crates/docformats/src/plaintext.rs crates/docformats/src/sdoc.rs crates/docformats/src/spreadsheet.rs crates/docformats/src/wdoc.rs

crates/docformats/src/lib.rs:
crates/docformats/src/canonical.rs:
crates/docformats/src/detect.rs:
crates/docformats/src/html.rs:
crates/docformats/src/pdoc.rs:
crates/docformats/src/plaintext.rs:
crates/docformats/src/sdoc.rs:
crates/docformats/src/spreadsheet.rs:
crates/docformats/src/wdoc.rs:
