/root/repo/target/debug/deps/proptest-dfaf4819f14317a2.d: crates/shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-dfaf4819f14317a2.rlib: crates/shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-dfaf4819f14317a2.rmeta: crates/shims/proptest/src/lib.rs

crates/shims/proptest/src/lib.rs:
