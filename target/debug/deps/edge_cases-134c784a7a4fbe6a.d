/root/repo/target/debug/deps/edge_cases-134c784a7a4fbe6a.d: tests/edge_cases.rs

/root/repo/target/debug/deps/edge_cases-134c784a7a4fbe6a: tests/edge_cases.rs

tests/edge_cases.rs:
