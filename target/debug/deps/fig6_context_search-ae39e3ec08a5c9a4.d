/root/repo/target/debug/deps/fig6_context_search-ae39e3ec08a5c9a4.d: crates/bench/src/bin/fig6_context_search.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_context_search-ae39e3ec08a5c9a4.rmeta: crates/bench/src/bin/fig6_context_search.rs Cargo.toml

crates/bench/src/bin/fig6_context_search.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
