/root/repo/target/debug/deps/netmark_corpus-aa4e91acaf47278a.d: crates/corpus/src/lib.rs crates/corpus/src/generate.rs crates/corpus/src/words.rs

/root/repo/target/debug/deps/libnetmark_corpus-aa4e91acaf47278a.rlib: crates/corpus/src/lib.rs crates/corpus/src/generate.rs crates/corpus/src/words.rs

/root/repo/target/debug/deps/libnetmark_corpus-aa4e91acaf47278a.rmeta: crates/corpus/src/lib.rs crates/corpus/src/generate.rs crates/corpus/src/words.rs

crates/corpus/src/lib.rs:
crates/corpus/src/generate.rs:
crates/corpus/src/words.rs:
