/root/repo/target/debug/deps/federation_e2e-779f903012170898.d: tests/federation_e2e.rs

/root/repo/target/debug/deps/federation_e2e-779f903012170898: tests/federation_e2e.rs

tests/federation_e2e.rs:
