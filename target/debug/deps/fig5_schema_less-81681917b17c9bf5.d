/root/repo/target/debug/deps/fig5_schema_less-81681917b17c9bf5.d: crates/bench/src/bin/fig5_schema_less.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_schema_less-81681917b17c9bf5.rmeta: crates/bench/src/bin/fig5_schema_less.rs Cargo.toml

crates/bench/src/bin/fig5_schema_less.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
