/root/repo/target/debug/deps/federation_fault-6b897d17e7685d36.d: tests/federation_fault.rs Cargo.toml

/root/repo/target/debug/deps/libfederation_fault-6b897d17e7685d36.rmeta: tests/federation_fault.rs Cargo.toml

tests/federation_fault.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
