/root/repo/target/debug/deps/fig3_pipeline-d0f65f1fa61d379a.d: crates/bench/src/bin/fig3_pipeline.rs

/root/repo/target/debug/deps/fig3_pipeline-d0f65f1fa61d379a: crates/bench/src/bin/fig3_pipeline.rs

crates/bench/src/bin/fig3_pipeline.rs:
