/root/repo/target/debug/deps/ablations-4f41c37d20998207.d: crates/bench/src/bin/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-4f41c37d20998207.rmeta: crates/bench/src/bin/ablations.rs Cargo.toml

crates/bench/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
