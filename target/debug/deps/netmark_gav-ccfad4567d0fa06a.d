/root/repo/target/debug/deps/netmark_gav-ccfad4567d0fa06a.d: crates/gav/src/lib.rs crates/gav/src/mediator.rs crates/gav/src/model.rs Cargo.toml

/root/repo/target/debug/deps/libnetmark_gav-ccfad4567d0fa06a.rmeta: crates/gav/src/lib.rs crates/gav/src/mediator.rs crates/gav/src/model.rs Cargo.toml

crates/gav/src/lib.rs:
crates/gav/src/mediator.rs:
crates/gav/src/model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
