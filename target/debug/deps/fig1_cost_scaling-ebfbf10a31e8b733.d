/root/repo/target/debug/deps/fig1_cost_scaling-ebfbf10a31e8b733.d: crates/bench/src/bin/fig1_cost_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_cost_scaling-ebfbf10a31e8b733.rmeta: crates/bench/src/bin/fig1_cost_scaling.rs Cargo.toml

crates/bench/src/bin/fig1_cost_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
