/root/repo/target/debug/deps/sec4_top_employees-e75e7e4a80e4ad5a.d: crates/bench/src/bin/sec4_top_employees.rs

/root/repo/target/debug/deps/sec4_top_employees-e75e7e4a80e4ad5a: crates/bench/src/bin/sec4_top_employees.rs

crates/bench/src/bin/sec4_top_employees.rs:
