/root/repo/target/debug/deps/netmark_sgml-66955d90db082d67.d: crates/sgml/src/lib.rs crates/sgml/src/config.rs crates/sgml/src/parser.rs crates/sgml/src/tokenizer.rs

/root/repo/target/debug/deps/netmark_sgml-66955d90db082d67: crates/sgml/src/lib.rs crates/sgml/src/config.rs crates/sgml/src/parser.rs crates/sgml/src/tokenizer.rs

crates/sgml/src/lib.rs:
crates/sgml/src/config.rs:
crates/sgml/src/parser.rs:
crates/sgml/src/tokenizer.rs:
