/root/repo/target/debug/deps/netmark_xdb-84f10e5d642beb0a.d: crates/xdb/src/lib.rs crates/xdb/src/caps.rs crates/xdb/src/query.rs crates/xdb/src/result.rs

/root/repo/target/debug/deps/netmark_xdb-84f10e5d642beb0a: crates/xdb/src/lib.rs crates/xdb/src/caps.rs crates/xdb/src/query.rs crates/xdb/src/result.rs

crates/xdb/src/lib.rs:
crates/xdb/src/caps.rs:
crates/xdb/src/query.rs:
crates/xdb/src/result.rs:
