/root/repo/target/debug/deps/netmark_bench-f06a821310981eca.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnetmark_bench-f06a821310981eca.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
