/root/repo/target/debug/deps/proptest-c2bc23c6e9a34d2c.d: crates/shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-c2bc23c6e9a34d2c.rmeta: crates/shims/proptest/src/lib.rs

crates/shims/proptest/src/lib.rs:
