/root/repo/target/debug/deps/federation_e2e-0799b76dd9dea50f.d: tests/federation_e2e.rs Cargo.toml

/root/repo/target/debug/deps/libfederation_e2e-0799b76dd9dea50f.rmeta: tests/federation_e2e.rs Cargo.toml

tests/federation_e2e.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
