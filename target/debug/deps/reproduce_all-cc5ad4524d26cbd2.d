/root/repo/target/debug/deps/reproduce_all-cc5ad4524d26cbd2.d: crates/bench/src/bin/reproduce_all.rs Cargo.toml

/root/repo/target/debug/deps/libreproduce_all-cc5ad4524d26cbd2.rmeta: crates/bench/src/bin/reproduce_all.rs Cargo.toml

crates/bench/src/bin/reproduce_all.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
