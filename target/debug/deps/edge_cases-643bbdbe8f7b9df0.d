/root/repo/target/debug/deps/edge_cases-643bbdbe8f7b9df0.d: tests/edge_cases.rs Cargo.toml

/root/repo/target/debug/deps/libedge_cases-643bbdbe8f7b9df0.rmeta: tests/edge_cases.rs Cargo.toml

tests/edge_cases.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
