/root/repo/target/debug/deps/netmark_cli-6041bf6bc55c8484.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/libnetmark_cli-6041bf6bc55c8484.rlib: crates/cli/src/lib.rs

/root/repo/target/debug/deps/libnetmark_cli-6041bf6bc55c8484.rmeta: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
