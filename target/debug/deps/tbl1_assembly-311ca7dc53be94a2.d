/root/repo/target/debug/deps/tbl1_assembly-311ca7dc53be94a2.d: crates/bench/src/bin/tbl1_assembly.rs

/root/repo/target/debug/deps/tbl1_assembly-311ca7dc53be94a2: crates/bench/src/bin/tbl1_assembly.rs

crates/bench/src/bin/tbl1_assembly.rs:
