/root/repo/target/debug/deps/netmark_gav-6a1ff322cd4ef726.d: crates/gav/src/lib.rs crates/gav/src/mediator.rs crates/gav/src/model.rs

/root/repo/target/debug/deps/libnetmark_gav-6a1ff322cd4ef726.rlib: crates/gav/src/lib.rs crates/gav/src/mediator.rs crates/gav/src/model.rs

/root/repo/target/debug/deps/libnetmark_gav-6a1ff322cd4ef726.rmeta: crates/gav/src/lib.rs crates/gav/src/mediator.rs crates/gav/src/model.rs

crates/gav/src/lib.rs:
crates/gav/src/mediator.rs:
crates/gav/src/model.rs:
