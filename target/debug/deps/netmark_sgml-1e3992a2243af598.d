/root/repo/target/debug/deps/netmark_sgml-1e3992a2243af598.d: crates/sgml/src/lib.rs crates/sgml/src/config.rs crates/sgml/src/parser.rs crates/sgml/src/tokenizer.rs Cargo.toml

/root/repo/target/debug/deps/libnetmark_sgml-1e3992a2243af598.rmeta: crates/sgml/src/lib.rs crates/sgml/src/config.rs crates/sgml/src/parser.rs crates/sgml/src/tokenizer.rs Cargo.toml

crates/sgml/src/lib.rs:
crates/sgml/src/config.rs:
crates/sgml/src/parser.rs:
crates/sgml/src/tokenizer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
