/root/repo/target/debug/deps/edge_cases-558242871779effc.d: tests/edge_cases.rs

/root/repo/target/debug/deps/edge_cases-558242871779effc: tests/edge_cases.rs

tests/edge_cases.rs:
