/root/repo/target/debug/deps/fig7_xslt-d81004a6035b818b.d: crates/bench/src/bin/fig7_xslt.rs

/root/repo/target/debug/deps/fig7_xslt-d81004a6035b818b: crates/bench/src/bin/fig7_xslt.rs

crates/bench/src/bin/fig7_xslt.rs:
