/root/repo/target/debug/deps/fig8_federation-ff3c751a604cd5a2.d: crates/bench/src/bin/fig8_federation.rs

/root/repo/target/debug/deps/fig8_federation-ff3c751a604cd5a2: crates/bench/src/bin/fig8_federation.rs

crates/bench/src/bin/fig8_federation.rs:
