/root/repo/target/debug/deps/ablations-5533c994d9e75b9f.d: crates/bench/src/bin/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-5533c994d9e75b9f.rmeta: crates/bench/src/bin/ablations.rs Cargo.toml

crates/bench/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
