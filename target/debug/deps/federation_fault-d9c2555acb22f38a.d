/root/repo/target/debug/deps/federation_fault-d9c2555acb22f38a.d: tests/federation_fault.rs

/root/repo/target/debug/deps/federation_fault-d9c2555acb22f38a: tests/federation_fault.rs

tests/federation_fault.rs:
