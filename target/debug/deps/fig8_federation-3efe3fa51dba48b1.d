/root/repo/target/debug/deps/fig8_federation-3efe3fa51dba48b1.d: crates/bench/src/bin/fig8_federation.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_federation-3efe3fa51dba48b1.rmeta: crates/bench/src/bin/fig8_federation.rs Cargo.toml

crates/bench/src/bin/fig8_federation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
