/root/repo/target/debug/deps/fig7_xslt-5528f542df1bcf2d.d: crates/bench/src/bin/fig7_xslt.rs

/root/repo/target/debug/deps/fig7_xslt-5528f542df1bcf2d: crates/bench/src/bin/fig7_xslt.rs

crates/bench/src/bin/fig7_xslt.rs:
