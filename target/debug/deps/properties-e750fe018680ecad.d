/root/repo/target/debug/deps/properties-e750fe018680ecad.d: tests/properties.rs

/root/repo/target/debug/deps/properties-e750fe018680ecad: tests/properties.rs

tests/properties.rs:
