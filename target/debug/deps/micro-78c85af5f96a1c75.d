/root/repo/target/debug/deps/micro-78c85af5f96a1c75.d: crates/bench/benches/micro.rs Cargo.toml

/root/repo/target/debug/deps/libmicro-78c85af5f96a1c75.rmeta: crates/bench/benches/micro.rs Cargo.toml

crates/bench/benches/micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
