/root/repo/target/debug/deps/tbl1_assembly-a199d5db2ca1139e.d: crates/bench/src/bin/tbl1_assembly.rs Cargo.toml

/root/repo/target/debug/deps/libtbl1_assembly-a199d5db2ca1139e.rmeta: crates/bench/src/bin/tbl1_assembly.rs Cargo.toml

crates/bench/src/bin/tbl1_assembly.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
