/root/repo/target/debug/deps/netmark_model-cb875b621a6ebaf1.d: crates/model/src/lib.rs crates/model/src/escape.rs crates/model/src/node.rs

/root/repo/target/debug/deps/netmark_model-cb875b621a6ebaf1: crates/model/src/lib.rs crates/model/src/escape.rs crates/model/src/node.rs

crates/model/src/lib.rs:
crates/model/src/escape.rs:
crates/model/src/node.rs:
