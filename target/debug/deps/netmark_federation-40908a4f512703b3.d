/root/repo/target/debug/deps/netmark_federation-40908a4f512703b3.d: crates/federation/src/lib.rs crates/federation/src/adapter.rs crates/federation/src/client.rs crates/federation/src/databank.rs crates/federation/src/matcher.rs crates/federation/src/remote.rs crates/federation/src/serve.rs Cargo.toml

/root/repo/target/debug/deps/libnetmark_federation-40908a4f512703b3.rmeta: crates/federation/src/lib.rs crates/federation/src/adapter.rs crates/federation/src/client.rs crates/federation/src/databank.rs crates/federation/src/matcher.rs crates/federation/src/remote.rs crates/federation/src/serve.rs Cargo.toml

crates/federation/src/lib.rs:
crates/federation/src/adapter.rs:
crates/federation/src/client.rs:
crates/federation/src/databank.rs:
crates/federation/src/matcher.rs:
crates/federation/src/remote.rs:
crates/federation/src/serve.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
