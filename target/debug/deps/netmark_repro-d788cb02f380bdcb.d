/root/repo/target/debug/deps/netmark_repro-d788cb02f380bdcb.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnetmark_repro-d788cb02f380bdcb.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
