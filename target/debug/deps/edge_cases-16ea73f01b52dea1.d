/root/repo/target/debug/deps/edge_cases-16ea73f01b52dea1.d: tests/edge_cases.rs Cargo.toml

/root/repo/target/debug/deps/libedge_cases-16ea73f01b52dea1.rmeta: tests/edge_cases.rs Cargo.toml

tests/edge_cases.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
