/root/repo/target/debug/deps/fig1_cost_scaling-650dcde4a61c050b.d: crates/bench/src/bin/fig1_cost_scaling.rs

/root/repo/target/debug/deps/fig1_cost_scaling-650dcde4a61c050b: crates/bench/src/bin/fig1_cost_scaling.rs

crates/bench/src/bin/fig1_cost_scaling.rs:
