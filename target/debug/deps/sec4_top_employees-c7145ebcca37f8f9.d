/root/repo/target/debug/deps/sec4_top_employees-c7145ebcca37f8f9.d: crates/bench/src/bin/sec4_top_employees.rs Cargo.toml

/root/repo/target/debug/deps/libsec4_top_employees-c7145ebcca37f8f9.rmeta: crates/bench/src/bin/sec4_top_employees.rs Cargo.toml

crates/bench/src/bin/sec4_top_employees.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
