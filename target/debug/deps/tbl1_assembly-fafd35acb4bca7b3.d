/root/repo/target/debug/deps/tbl1_assembly-fafd35acb4bca7b3.d: crates/bench/src/bin/tbl1_assembly.rs

/root/repo/target/debug/deps/tbl1_assembly-fafd35acb4bca7b3: crates/bench/src/bin/tbl1_assembly.rs

crates/bench/src/bin/tbl1_assembly.rs:
