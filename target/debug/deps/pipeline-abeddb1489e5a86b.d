/root/repo/target/debug/deps/pipeline-abeddb1489e5a86b.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-abeddb1489e5a86b: tests/pipeline.rs

tests/pipeline.rs:
