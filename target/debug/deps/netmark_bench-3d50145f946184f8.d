/root/repo/target/debug/deps/netmark_bench-3d50145f946184f8.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libnetmark_bench-3d50145f946184f8.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libnetmark_bench-3d50145f946184f8.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
