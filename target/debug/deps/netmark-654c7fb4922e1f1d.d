/root/repo/target/debug/deps/netmark-654c7fb4922e1f1d.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/netmark-654c7fb4922e1f1d: crates/cli/src/main.rs

crates/cli/src/main.rs:
