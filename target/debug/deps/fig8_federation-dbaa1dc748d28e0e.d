/root/repo/target/debug/deps/fig8_federation-dbaa1dc748d28e0e.d: crates/bench/src/bin/fig8_federation.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_federation-dbaa1dc748d28e0e.rmeta: crates/bench/src/bin/fig8_federation.rs Cargo.toml

crates/bench/src/bin/fig8_federation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
