/root/repo/target/debug/deps/fig6_context_search-fc16ca3aba261fd0.d: crates/bench/src/bin/fig6_context_search.rs

/root/repo/target/debug/deps/fig6_context_search-fc16ca3aba261fd0: crates/bench/src/bin/fig6_context_search.rs

crates/bench/src/bin/fig6_context_search.rs:
