/root/repo/target/debug/deps/netmark-03689999e3bb0be4.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/netmark-03689999e3bb0be4: crates/cli/src/main.rs

crates/cli/src/main.rs:
