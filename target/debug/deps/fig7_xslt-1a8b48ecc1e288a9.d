/root/repo/target/debug/deps/fig7_xslt-1a8b48ecc1e288a9.d: crates/bench/src/bin/fig7_xslt.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_xslt-1a8b48ecc1e288a9.rmeta: crates/bench/src/bin/fig7_xslt.rs Cargo.toml

crates/bench/src/bin/fig7_xslt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
