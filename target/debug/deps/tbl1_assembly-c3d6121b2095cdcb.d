/root/repo/target/debug/deps/tbl1_assembly-c3d6121b2095cdcb.d: crates/bench/src/bin/tbl1_assembly.rs

/root/repo/target/debug/deps/tbl1_assembly-c3d6121b2095cdcb: crates/bench/src/bin/tbl1_assembly.rs

crates/bench/src/bin/tbl1_assembly.rs:
