/root/repo/target/debug/deps/properties-34b10f61744492ce.d: tests/properties.rs

/root/repo/target/debug/deps/properties-34b10f61744492ce: tests/properties.rs

tests/properties.rs:
