/root/repo/target/debug/deps/netmark_repro-1c02f77cf8db1f63.d: src/lib.rs

/root/repo/target/debug/deps/libnetmark_repro-1c02f77cf8db1f63.rlib: src/lib.rs

/root/repo/target/debug/deps/libnetmark_repro-1c02f77cf8db1f63.rmeta: src/lib.rs

src/lib.rs:
