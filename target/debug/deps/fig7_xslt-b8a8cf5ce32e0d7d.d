/root/repo/target/debug/deps/fig7_xslt-b8a8cf5ce32e0d7d.d: crates/bench/src/bin/fig7_xslt.rs

/root/repo/target/debug/deps/fig7_xslt-b8a8cf5ce32e0d7d: crates/bench/src/bin/fig7_xslt.rs

crates/bench/src/bin/fig7_xslt.rs:
