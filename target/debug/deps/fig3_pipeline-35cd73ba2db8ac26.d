/root/repo/target/debug/deps/fig3_pipeline-35cd73ba2db8ac26.d: crates/bench/src/bin/fig3_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_pipeline-35cd73ba2db8ac26.rmeta: crates/bench/src/bin/fig3_pipeline.rs Cargo.toml

crates/bench/src/bin/fig3_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
