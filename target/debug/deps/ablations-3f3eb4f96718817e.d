/root/repo/target/debug/deps/ablations-3f3eb4f96718817e.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-3f3eb4f96718817e: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
