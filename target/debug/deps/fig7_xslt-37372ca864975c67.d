/root/repo/target/debug/deps/fig7_xslt-37372ca864975c67.d: crates/bench/src/bin/fig7_xslt.rs

/root/repo/target/debug/deps/fig7_xslt-37372ca864975c67: crates/bench/src/bin/fig7_xslt.rs

crates/bench/src/bin/fig7_xslt.rs:
