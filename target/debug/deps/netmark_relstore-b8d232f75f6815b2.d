/root/repo/target/debug/deps/netmark_relstore-b8d232f75f6815b2.d: crates/relstore/src/lib.rs crates/relstore/src/btree.rs crates/relstore/src/buffer.rs crates/relstore/src/catalog.rs crates/relstore/src/db.rs crates/relstore/src/disk.rs crates/relstore/src/error.rs crates/relstore/src/heap.rs crates/relstore/src/keyenc.rs crates/relstore/src/page.rs crates/relstore/src/tuple.rs crates/relstore/src/wal.rs

/root/repo/target/debug/deps/netmark_relstore-b8d232f75f6815b2: crates/relstore/src/lib.rs crates/relstore/src/btree.rs crates/relstore/src/buffer.rs crates/relstore/src/catalog.rs crates/relstore/src/db.rs crates/relstore/src/disk.rs crates/relstore/src/error.rs crates/relstore/src/heap.rs crates/relstore/src/keyenc.rs crates/relstore/src/page.rs crates/relstore/src/tuple.rs crates/relstore/src/wal.rs

crates/relstore/src/lib.rs:
crates/relstore/src/btree.rs:
crates/relstore/src/buffer.rs:
crates/relstore/src/catalog.rs:
crates/relstore/src/db.rs:
crates/relstore/src/disk.rs:
crates/relstore/src/error.rs:
crates/relstore/src/heap.rs:
crates/relstore/src/keyenc.rs:
crates/relstore/src/page.rs:
crates/relstore/src/tuple.rs:
crates/relstore/src/wal.rs:
