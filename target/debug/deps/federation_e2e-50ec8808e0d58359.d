/root/repo/target/debug/deps/federation_e2e-50ec8808e0d58359.d: tests/federation_e2e.rs Cargo.toml

/root/repo/target/debug/deps/libfederation_e2e-50ec8808e0d58359.rmeta: tests/federation_e2e.rs Cargo.toml

tests/federation_e2e.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
