/root/repo/target/debug/deps/netmark_bench-9248dc06d1c482ed.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnetmark_bench-9248dc06d1c482ed.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
