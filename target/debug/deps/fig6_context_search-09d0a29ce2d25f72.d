/root/repo/target/debug/deps/fig6_context_search-09d0a29ce2d25f72.d: crates/bench/src/bin/fig6_context_search.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_context_search-09d0a29ce2d25f72.rmeta: crates/bench/src/bin/fig6_context_search.rs Cargo.toml

crates/bench/src/bin/fig6_context_search.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
