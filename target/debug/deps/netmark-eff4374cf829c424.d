/root/repo/target/debug/deps/netmark-eff4374cf829c424.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libnetmark-eff4374cf829c424.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
