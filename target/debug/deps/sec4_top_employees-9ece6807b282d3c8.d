/root/repo/target/debug/deps/sec4_top_employees-9ece6807b282d3c8.d: crates/bench/src/bin/sec4_top_employees.rs

/root/repo/target/debug/deps/sec4_top_employees-9ece6807b282d3c8: crates/bench/src/bin/sec4_top_employees.rs

crates/bench/src/bin/sec4_top_employees.rs:
