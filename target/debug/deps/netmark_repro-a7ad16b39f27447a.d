/root/repo/target/debug/deps/netmark_repro-a7ad16b39f27447a.d: src/lib.rs

/root/repo/target/debug/deps/libnetmark_repro-a7ad16b39f27447a.rlib: src/lib.rs

/root/repo/target/debug/deps/libnetmark_repro-a7ad16b39f27447a.rmeta: src/lib.rs

src/lib.rs:
