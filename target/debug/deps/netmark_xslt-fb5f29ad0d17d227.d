/root/repo/target/debug/deps/netmark_xslt-fb5f29ad0d17d227.d: crates/xslt/src/lib.rs crates/xslt/src/transform.rs crates/xslt/src/xpath.rs

/root/repo/target/debug/deps/netmark_xslt-fb5f29ad0d17d227: crates/xslt/src/lib.rs crates/xslt/src/transform.rs crates/xslt/src/xpath.rs

crates/xslt/src/lib.rs:
crates/xslt/src/transform.rs:
crates/xslt/src/xpath.rs:
