/root/repo/target/debug/deps/properties-0c7307c069d796b1.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-0c7307c069d796b1.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
