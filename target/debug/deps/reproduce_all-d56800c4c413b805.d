/root/repo/target/debug/deps/reproduce_all-d56800c4c413b805.d: crates/bench/src/bin/reproduce_all.rs

/root/repo/target/debug/deps/reproduce_all-d56800c4c413b805: crates/bench/src/bin/reproduce_all.rs

crates/bench/src/bin/reproduce_all.rs:
