/root/repo/target/debug/deps/netmark-bbb27a4f13304964.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/metrics.rs crates/core/src/netmark.rs crates/core/src/pipeline.rs crates/core/src/schema.rs crates/core/src/search.rs crates/core/src/store.rs

/root/repo/target/debug/deps/libnetmark-bbb27a4f13304964.rlib: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/metrics.rs crates/core/src/netmark.rs crates/core/src/pipeline.rs crates/core/src/schema.rs crates/core/src/search.rs crates/core/src/store.rs

/root/repo/target/debug/deps/libnetmark-bbb27a4f13304964.rmeta: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/metrics.rs crates/core/src/netmark.rs crates/core/src/pipeline.rs crates/core/src/schema.rs crates/core/src/search.rs crates/core/src/store.rs

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/metrics.rs:
crates/core/src/netmark.rs:
crates/core/src/pipeline.rs:
crates/core/src/schema.rs:
crates/core/src/search.rs:
crates/core/src/store.rs:
