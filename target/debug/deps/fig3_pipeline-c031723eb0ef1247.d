/root/repo/target/debug/deps/fig3_pipeline-c031723eb0ef1247.d: crates/bench/src/bin/fig3_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_pipeline-c031723eb0ef1247.rmeta: crates/bench/src/bin/fig3_pipeline.rs Cargo.toml

crates/bench/src/bin/fig3_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
