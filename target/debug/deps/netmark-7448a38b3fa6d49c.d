/root/repo/target/debug/deps/netmark-7448a38b3fa6d49c.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/metrics.rs crates/core/src/netmark.rs crates/core/src/pipeline.rs crates/core/src/schema.rs crates/core/src/search.rs crates/core/src/store.rs

/root/repo/target/debug/deps/netmark-7448a38b3fa6d49c: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/metrics.rs crates/core/src/netmark.rs crates/core/src/pipeline.rs crates/core/src/schema.rs crates/core/src/search.rs crates/core/src/store.rs

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/metrics.rs:
crates/core/src/netmark.rs:
crates/core/src/pipeline.rs:
crates/core/src/schema.rs:
crates/core/src/search.rs:
crates/core/src/store.rs:
