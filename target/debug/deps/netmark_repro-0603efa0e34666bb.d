/root/repo/target/debug/deps/netmark_repro-0603efa0e34666bb.d: src/lib.rs

/root/repo/target/debug/deps/netmark_repro-0603efa0e34666bb: src/lib.rs

src/lib.rs:
