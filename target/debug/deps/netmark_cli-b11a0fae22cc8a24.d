/root/repo/target/debug/deps/netmark_cli-b11a0fae22cc8a24.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/libnetmark_cli-b11a0fae22cc8a24.rlib: crates/cli/src/lib.rs

/root/repo/target/debug/deps/libnetmark_cli-b11a0fae22cc8a24.rmeta: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
