/root/repo/target/debug/deps/netmark_repro-b028cef168c0016d.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnetmark_repro-b028cef168c0016d.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
