/root/repo/target/debug/deps/fig5_schema_less-ee99f27f17a028e9.d: crates/bench/src/bin/fig5_schema_less.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_schema_less-ee99f27f17a028e9.rmeta: crates/bench/src/bin/fig5_schema_less.rs Cargo.toml

crates/bench/src/bin/fig5_schema_less.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
