/root/repo/target/debug/deps/netmark_cli-a4dda9cb7772d0f9.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/netmark_cli-a4dda9cb7772d0f9: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
