/root/repo/target/debug/deps/netmark_webdav-23cf8e56a6415a98.d: crates/webdav/src/lib.rs crates/webdav/src/daemon.rs crates/webdav/src/http.rs crates/webdav/src/ingest.rs crates/webdav/src/server.rs

/root/repo/target/debug/deps/libnetmark_webdav-23cf8e56a6415a98.rlib: crates/webdav/src/lib.rs crates/webdav/src/daemon.rs crates/webdav/src/http.rs crates/webdav/src/ingest.rs crates/webdav/src/server.rs

/root/repo/target/debug/deps/libnetmark_webdav-23cf8e56a6415a98.rmeta: crates/webdav/src/lib.rs crates/webdav/src/daemon.rs crates/webdav/src/http.rs crates/webdav/src/ingest.rs crates/webdav/src/server.rs

crates/webdav/src/lib.rs:
crates/webdav/src/daemon.rs:
crates/webdav/src/http.rs:
crates/webdav/src/ingest.rs:
crates/webdav/src/server.rs:
