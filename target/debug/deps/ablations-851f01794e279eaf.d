/root/repo/target/debug/deps/ablations-851f01794e279eaf.d: crates/bench/src/bin/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-851f01794e279eaf.rmeta: crates/bench/src/bin/ablations.rs Cargo.toml

crates/bench/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
