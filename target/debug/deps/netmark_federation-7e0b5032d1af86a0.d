/root/repo/target/debug/deps/netmark_federation-7e0b5032d1af86a0.d: crates/federation/src/lib.rs crates/federation/src/adapter.rs crates/federation/src/databank.rs crates/federation/src/matcher.rs crates/federation/src/serve.rs Cargo.toml

/root/repo/target/debug/deps/libnetmark_federation-7e0b5032d1af86a0.rmeta: crates/federation/src/lib.rs crates/federation/src/adapter.rs crates/federation/src/databank.rs crates/federation/src/matcher.rs crates/federation/src/serve.rs Cargo.toml

crates/federation/src/lib.rs:
crates/federation/src/adapter.rs:
crates/federation/src/databank.rs:
crates/federation/src/matcher.rs:
crates/federation/src/serve.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
