/root/repo/target/debug/deps/fig6_context_search-78cc3830bb8f54d9.d: crates/bench/src/bin/fig6_context_search.rs

/root/repo/target/debug/deps/fig6_context_search-78cc3830bb8f54d9: crates/bench/src/bin/fig6_context_search.rs

crates/bench/src/bin/fig6_context_search.rs:
