/root/repo/target/debug/deps/fig3_pipeline-e890754be22e1d2f.d: crates/bench/src/bin/fig3_pipeline.rs

/root/repo/target/debug/deps/fig3_pipeline-e890754be22e1d2f: crates/bench/src/bin/fig3_pipeline.rs

crates/bench/src/bin/fig3_pipeline.rs:
