/root/repo/target/debug/deps/sec4_top_employees-cd83e28f7df2dc82.d: crates/bench/src/bin/sec4_top_employees.rs

/root/repo/target/debug/deps/sec4_top_employees-cd83e28f7df2dc82: crates/bench/src/bin/sec4_top_employees.rs

crates/bench/src/bin/sec4_top_employees.rs:
