/root/repo/target/debug/deps/netmark_relstore-8fc27f6fedabfa35.d: crates/relstore/src/lib.rs crates/relstore/src/btree.rs crates/relstore/src/buffer.rs crates/relstore/src/catalog.rs crates/relstore/src/db.rs crates/relstore/src/disk.rs crates/relstore/src/error.rs crates/relstore/src/heap.rs crates/relstore/src/keyenc.rs crates/relstore/src/page.rs crates/relstore/src/tuple.rs crates/relstore/src/wal.rs Cargo.toml

/root/repo/target/debug/deps/libnetmark_relstore-8fc27f6fedabfa35.rmeta: crates/relstore/src/lib.rs crates/relstore/src/btree.rs crates/relstore/src/buffer.rs crates/relstore/src/catalog.rs crates/relstore/src/db.rs crates/relstore/src/disk.rs crates/relstore/src/error.rs crates/relstore/src/heap.rs crates/relstore/src/keyenc.rs crates/relstore/src/page.rs crates/relstore/src/tuple.rs crates/relstore/src/wal.rs Cargo.toml

crates/relstore/src/lib.rs:
crates/relstore/src/btree.rs:
crates/relstore/src/buffer.rs:
crates/relstore/src/catalog.rs:
crates/relstore/src/db.rs:
crates/relstore/src/disk.rs:
crates/relstore/src/error.rs:
crates/relstore/src/heap.rs:
crates/relstore/src/keyenc.rs:
crates/relstore/src/page.rs:
crates/relstore/src/tuple.rs:
crates/relstore/src/wal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
