/root/repo/target/debug/deps/fig8_federation-c37942a96e829f4f.d: crates/bench/src/bin/fig8_federation.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_federation-c37942a96e829f4f.rmeta: crates/bench/src/bin/fig8_federation.rs Cargo.toml

crates/bench/src/bin/fig8_federation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
