/root/repo/target/debug/deps/netmark_cli-122c345af587a121.d: crates/cli/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnetmark_cli-122c345af587a121.rmeta: crates/cli/src/lib.rs Cargo.toml

crates/cli/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
