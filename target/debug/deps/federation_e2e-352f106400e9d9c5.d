/root/repo/target/debug/deps/federation_e2e-352f106400e9d9c5.d: tests/federation_e2e.rs

/root/repo/target/debug/deps/federation_e2e-352f106400e9d9c5: tests/federation_e2e.rs

tests/federation_e2e.rs:
