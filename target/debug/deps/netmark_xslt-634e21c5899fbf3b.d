/root/repo/target/debug/deps/netmark_xslt-634e21c5899fbf3b.d: crates/xslt/src/lib.rs crates/xslt/src/transform.rs crates/xslt/src/xpath.rs Cargo.toml

/root/repo/target/debug/deps/libnetmark_xslt-634e21c5899fbf3b.rmeta: crates/xslt/src/lib.rs crates/xslt/src/transform.rs crates/xslt/src/xpath.rs Cargo.toml

crates/xslt/src/lib.rs:
crates/xslt/src/transform.rs:
crates/xslt/src/xpath.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
