/root/repo/target/debug/deps/netmark_repro-1ca73a100c9502c9.d: src/lib.rs

/root/repo/target/debug/deps/netmark_repro-1ca73a100c9502c9: src/lib.rs

src/lib.rs:
