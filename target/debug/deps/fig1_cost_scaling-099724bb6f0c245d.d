/root/repo/target/debug/deps/fig1_cost_scaling-099724bb6f0c245d.d: crates/bench/src/bin/fig1_cost_scaling.rs

/root/repo/target/debug/deps/fig1_cost_scaling-099724bb6f0c245d: crates/bench/src/bin/fig1_cost_scaling.rs

crates/bench/src/bin/fig1_cost_scaling.rs:
