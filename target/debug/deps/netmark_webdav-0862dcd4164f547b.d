/root/repo/target/debug/deps/netmark_webdav-0862dcd4164f547b.d: crates/webdav/src/lib.rs crates/webdav/src/daemon.rs crates/webdav/src/http.rs crates/webdav/src/server.rs

/root/repo/target/debug/deps/libnetmark_webdav-0862dcd4164f547b.rlib: crates/webdav/src/lib.rs crates/webdav/src/daemon.rs crates/webdav/src/http.rs crates/webdav/src/server.rs

/root/repo/target/debug/deps/libnetmark_webdav-0862dcd4164f547b.rmeta: crates/webdav/src/lib.rs crates/webdav/src/daemon.rs crates/webdav/src/http.rs crates/webdav/src/server.rs

crates/webdav/src/lib.rs:
crates/webdav/src/daemon.rs:
crates/webdav/src/http.rs:
crates/webdav/src/server.rs:
