/root/repo/target/debug/deps/fig8_federation-11da5e26e7cece27.d: crates/bench/src/bin/fig8_federation.rs

/root/repo/target/debug/deps/fig8_federation-11da5e26e7cece27: crates/bench/src/bin/fig8_federation.rs

crates/bench/src/bin/fig8_federation.rs:
