/root/repo/target/debug/deps/reproduce_all-97ed45e61735006a.d: crates/bench/src/bin/reproduce_all.rs

/root/repo/target/debug/deps/reproduce_all-97ed45e61735006a: crates/bench/src/bin/reproduce_all.rs

crates/bench/src/bin/reproduce_all.rs:
