/root/repo/target/debug/deps/fig8_federation-21538a4a68f5d099.d: crates/bench/src/bin/fig8_federation.rs

/root/repo/target/debug/deps/fig8_federation-21538a4a68f5d099: crates/bench/src/bin/fig8_federation.rs

crates/bench/src/bin/fig8_federation.rs:
