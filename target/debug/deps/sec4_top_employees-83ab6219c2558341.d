/root/repo/target/debug/deps/sec4_top_employees-83ab6219c2558341.d: crates/bench/src/bin/sec4_top_employees.rs Cargo.toml

/root/repo/target/debug/deps/libsec4_top_employees-83ab6219c2558341.rmeta: crates/bench/src/bin/sec4_top_employees.rs Cargo.toml

crates/bench/src/bin/sec4_top_employees.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
