/root/repo/target/debug/deps/fig5_schema_less-470ef35a6771ff53.d: crates/bench/src/bin/fig5_schema_less.rs

/root/repo/target/debug/deps/fig5_schema_less-470ef35a6771ff53: crates/bench/src/bin/fig5_schema_less.rs

crates/bench/src/bin/fig5_schema_less.rs:
