/root/repo/target/debug/deps/reproduce_all-6cc357aa940a402b.d: crates/bench/src/bin/reproduce_all.rs

/root/repo/target/debug/deps/reproduce_all-6cc357aa940a402b: crates/bench/src/bin/reproduce_all.rs

crates/bench/src/bin/reproduce_all.rs:
