/root/repo/target/debug/deps/netmark_textindex-b030dcee8723ec21.d: crates/textindex/src/lib.rs crates/textindex/src/index.rs crates/textindex/src/postings.rs crates/textindex/src/tokenize.rs Cargo.toml

/root/repo/target/debug/deps/libnetmark_textindex-b030dcee8723ec21.rmeta: crates/textindex/src/lib.rs crates/textindex/src/index.rs crates/textindex/src/postings.rs crates/textindex/src/tokenize.rs Cargo.toml

crates/textindex/src/lib.rs:
crates/textindex/src/index.rs:
crates/textindex/src/postings.rs:
crates/textindex/src/tokenize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
