/root/repo/target/debug/deps/netmark_xdb-ce946bdc41104d0b.d: crates/xdb/src/lib.rs crates/xdb/src/caps.rs crates/xdb/src/query.rs crates/xdb/src/result.rs Cargo.toml

/root/repo/target/debug/deps/libnetmark_xdb-ce946bdc41104d0b.rmeta: crates/xdb/src/lib.rs crates/xdb/src/caps.rs crates/xdb/src/query.rs crates/xdb/src/result.rs Cargo.toml

crates/xdb/src/lib.rs:
crates/xdb/src/caps.rs:
crates/xdb/src/query.rs:
crates/xdb/src/result.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
