/root/repo/target/debug/deps/netmark_repro-3a0f4dfb3b0bbf93.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnetmark_repro-3a0f4dfb3b0bbf93.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
