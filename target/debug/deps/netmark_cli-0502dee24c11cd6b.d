/root/repo/target/debug/deps/netmark_cli-0502dee24c11cd6b.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/netmark_cli-0502dee24c11cd6b: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
