/root/repo/target/debug/deps/parking_lot-92fd42328c2814b8.d: crates/shims/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-92fd42328c2814b8.rmeta: crates/shims/parking_lot/src/lib.rs

crates/shims/parking_lot/src/lib.rs:
