/root/repo/target/debug/deps/tbl1_assembly-cf9bc5fd1b080a87.d: crates/bench/src/bin/tbl1_assembly.rs

/root/repo/target/debug/deps/tbl1_assembly-cf9bc5fd1b080a87: crates/bench/src/bin/tbl1_assembly.rs

crates/bench/src/bin/tbl1_assembly.rs:
