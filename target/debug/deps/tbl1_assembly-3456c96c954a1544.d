/root/repo/target/debug/deps/tbl1_assembly-3456c96c954a1544.d: crates/bench/src/bin/tbl1_assembly.rs Cargo.toml

/root/repo/target/debug/deps/libtbl1_assembly-3456c96c954a1544.rmeta: crates/bench/src/bin/tbl1_assembly.rs Cargo.toml

crates/bench/src/bin/tbl1_assembly.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
