/root/repo/target/debug/deps/engine-392cf454316c0eb6.d: crates/relstore/tests/engine.rs Cargo.toml

/root/repo/target/debug/deps/libengine-392cf454316c0eb6.rmeta: crates/relstore/tests/engine.rs Cargo.toml

crates/relstore/tests/engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
