/root/repo/target/debug/deps/engine-3912b8607a2a452a.d: crates/relstore/tests/engine.rs

/root/repo/target/debug/deps/engine-3912b8607a2a452a: crates/relstore/tests/engine.rs

crates/relstore/tests/engine.rs:
