/root/repo/target/debug/deps/netmark_bench-1503507ae53cd648.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/netmark_bench-1503507ae53cd648: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
