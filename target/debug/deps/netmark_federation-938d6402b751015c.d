/root/repo/target/debug/deps/netmark_federation-938d6402b751015c.d: crates/federation/src/lib.rs crates/federation/src/adapter.rs crates/federation/src/databank.rs crates/federation/src/matcher.rs crates/federation/src/serve.rs

/root/repo/target/debug/deps/libnetmark_federation-938d6402b751015c.rlib: crates/federation/src/lib.rs crates/federation/src/adapter.rs crates/federation/src/databank.rs crates/federation/src/matcher.rs crates/federation/src/serve.rs

/root/repo/target/debug/deps/libnetmark_federation-938d6402b751015c.rmeta: crates/federation/src/lib.rs crates/federation/src/adapter.rs crates/federation/src/databank.rs crates/federation/src/matcher.rs crates/federation/src/serve.rs

crates/federation/src/lib.rs:
crates/federation/src/adapter.rs:
crates/federation/src/databank.rs:
crates/federation/src/matcher.rs:
crates/federation/src/serve.rs:
