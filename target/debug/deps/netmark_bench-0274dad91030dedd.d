/root/repo/target/debug/deps/netmark_bench-0274dad91030dedd.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libnetmark_bench-0274dad91030dedd.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libnetmark_bench-0274dad91030dedd.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
