/root/repo/target/debug/examples/top_employees-24bc40cf74ddb5a9.d: examples/top_employees.rs

/root/repo/target/debug/examples/top_employees-24bc40cf74ddb5a9: examples/top_employees.rs

examples/top_employees.rs:
