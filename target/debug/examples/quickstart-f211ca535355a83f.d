/root/repo/target/debug/examples/quickstart-f211ca535355a83f.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-f211ca535355a83f: examples/quickstart.rs

examples/quickstart.rs:
