/root/repo/target/debug/examples/profile_ingest-65f78e5608b80e74.d: crates/bench/examples/profile_ingest.rs

/root/repo/target/debug/examples/profile_ingest-65f78e5608b80e74: crates/bench/examples/profile_ingest.rs

crates/bench/examples/profile_ingest.rs:
