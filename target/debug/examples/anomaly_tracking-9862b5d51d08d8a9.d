/root/repo/target/debug/examples/anomaly_tracking-9862b5d51d08d8a9.d: examples/anomaly_tracking.rs

/root/repo/target/debug/examples/anomaly_tracking-9862b5d51d08d8a9: examples/anomaly_tracking.rs

examples/anomaly_tracking.rs:
