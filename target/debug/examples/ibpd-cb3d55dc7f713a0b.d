/root/repo/target/debug/examples/ibpd-cb3d55dc7f713a0b.d: examples/ibpd.rs

/root/repo/target/debug/examples/ibpd-cb3d55dc7f713a0b: examples/ibpd.rs

examples/ibpd.rs:
