/root/repo/target/debug/examples/proposal_financial-6d217b38f2e4b523.d: examples/proposal_financial.rs Cargo.toml

/root/repo/target/debug/examples/libproposal_financial-6d217b38f2e4b523.rmeta: examples/proposal_financial.rs Cargo.toml

examples/proposal_financial.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
