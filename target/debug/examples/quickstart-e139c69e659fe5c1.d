/root/repo/target/debug/examples/quickstart-e139c69e659fe5c1.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-e139c69e659fe5c1.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
