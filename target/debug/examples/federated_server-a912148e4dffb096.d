/root/repo/target/debug/examples/federated_server-a912148e4dffb096.d: examples/federated_server.rs

/root/repo/target/debug/examples/federated_server-a912148e4dffb096: examples/federated_server.rs

examples/federated_server.rs:
