/root/repo/target/debug/examples/top_employees-4e9110c0c450e211.d: examples/top_employees.rs Cargo.toml

/root/repo/target/debug/examples/libtop_employees-4e9110c0c450e211.rmeta: examples/top_employees.rs Cargo.toml

examples/top_employees.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
