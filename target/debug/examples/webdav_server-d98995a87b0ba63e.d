/root/repo/target/debug/examples/webdav_server-d98995a87b0ba63e.d: examples/webdav_server.rs

/root/repo/target/debug/examples/webdav_server-d98995a87b0ba63e: examples/webdav_server.rs

examples/webdav_server.rs:
