/root/repo/target/debug/examples/ibpd-2b2fdb4f454003c5.d: examples/ibpd.rs

/root/repo/target/debug/examples/ibpd-2b2fdb4f454003c5: examples/ibpd.rs

examples/ibpd.rs:
