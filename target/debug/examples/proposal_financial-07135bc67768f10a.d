/root/repo/target/debug/examples/proposal_financial-07135bc67768f10a.d: examples/proposal_financial.rs Cargo.toml

/root/repo/target/debug/examples/libproposal_financial-07135bc67768f10a.rmeta: examples/proposal_financial.rs Cargo.toml

examples/proposal_financial.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
