/root/repo/target/debug/examples/proposal_financial-9f7920ae4b6def44.d: examples/proposal_financial.rs

/root/repo/target/debug/examples/proposal_financial-9f7920ae4b6def44: examples/proposal_financial.rs

examples/proposal_financial.rs:
