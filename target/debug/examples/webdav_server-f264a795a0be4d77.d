/root/repo/target/debug/examples/webdav_server-f264a795a0be4d77.d: examples/webdav_server.rs Cargo.toml

/root/repo/target/debug/examples/libwebdav_server-f264a795a0be4d77.rmeta: examples/webdav_server.rs Cargo.toml

examples/webdav_server.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
