/root/repo/target/debug/examples/quickstart-9569a24c6500bfa8.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-9569a24c6500bfa8: examples/quickstart.rs

examples/quickstart.rs:
