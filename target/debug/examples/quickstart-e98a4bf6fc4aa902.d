/root/repo/target/debug/examples/quickstart-e98a4bf6fc4aa902.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-e98a4bf6fc4aa902.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
