/root/repo/target/debug/examples/federated_server-e0948c5c4282b9e4.d: examples/federated_server.rs

/root/repo/target/debug/examples/federated_server-e0948c5c4282b9e4: examples/federated_server.rs

examples/federated_server.rs:
