/root/repo/target/debug/examples/anomaly_tracking-b3a91409ca52f976.d: examples/anomaly_tracking.rs Cargo.toml

/root/repo/target/debug/examples/libanomaly_tracking-b3a91409ca52f976.rmeta: examples/anomaly_tracking.rs Cargo.toml

examples/anomaly_tracking.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
