/root/repo/target/debug/examples/anomaly_tracking-d7945ebf73d01780.d: examples/anomaly_tracking.rs Cargo.toml

/root/repo/target/debug/examples/libanomaly_tracking-d7945ebf73d01780.rmeta: examples/anomaly_tracking.rs Cargo.toml

examples/anomaly_tracking.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
