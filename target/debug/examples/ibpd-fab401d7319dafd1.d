/root/repo/target/debug/examples/ibpd-fab401d7319dafd1.d: examples/ibpd.rs Cargo.toml

/root/repo/target/debug/examples/libibpd-fab401d7319dafd1.rmeta: examples/ibpd.rs Cargo.toml

examples/ibpd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
