/root/repo/target/debug/examples/ibpd-93b039257cd78ee5.d: examples/ibpd.rs Cargo.toml

/root/repo/target/debug/examples/libibpd-93b039257cd78ee5.rmeta: examples/ibpd.rs Cargo.toml

examples/ibpd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
