/root/repo/target/debug/examples/top_employees-a2357d5390e20ecb.d: examples/top_employees.rs

/root/repo/target/debug/examples/top_employees-a2357d5390e20ecb: examples/top_employees.rs

examples/top_employees.rs:
