/root/repo/target/debug/examples/top_employees-dab4af06bc20009c.d: examples/top_employees.rs Cargo.toml

/root/repo/target/debug/examples/libtop_employees-dab4af06bc20009c.rmeta: examples/top_employees.rs Cargo.toml

examples/top_employees.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
