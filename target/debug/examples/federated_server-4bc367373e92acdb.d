/root/repo/target/debug/examples/federated_server-4bc367373e92acdb.d: examples/federated_server.rs Cargo.toml

/root/repo/target/debug/examples/libfederated_server-4bc367373e92acdb.rmeta: examples/federated_server.rs Cargo.toml

examples/federated_server.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
