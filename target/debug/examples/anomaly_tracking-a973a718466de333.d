/root/repo/target/debug/examples/anomaly_tracking-a973a718466de333.d: examples/anomaly_tracking.rs

/root/repo/target/debug/examples/anomaly_tracking-a973a718466de333: examples/anomaly_tracking.rs

examples/anomaly_tracking.rs:
