/root/repo/target/debug/examples/federated_server-10da75377fc3bad4.d: examples/federated_server.rs Cargo.toml

/root/repo/target/debug/examples/libfederated_server-10da75377fc3bad4.rmeta: examples/federated_server.rs Cargo.toml

examples/federated_server.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
