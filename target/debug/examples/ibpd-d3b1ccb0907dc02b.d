/root/repo/target/debug/examples/ibpd-d3b1ccb0907dc02b.d: examples/ibpd.rs

/root/repo/target/debug/examples/ibpd-d3b1ccb0907dc02b: examples/ibpd.rs

examples/ibpd.rs:
