/root/repo/target/debug/examples/proposal_financial-c206e43879ea0274.d: examples/proposal_financial.rs

/root/repo/target/debug/examples/proposal_financial-c206e43879ea0274: examples/proposal_financial.rs

examples/proposal_financial.rs:
