/root/repo/target/debug/examples/anomaly_tracking-5c3bccb7d3265cb5.d: examples/anomaly_tracking.rs

/root/repo/target/debug/examples/anomaly_tracking-5c3bccb7d3265cb5: examples/anomaly_tracking.rs

examples/anomaly_tracking.rs:
