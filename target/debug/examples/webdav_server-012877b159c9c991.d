/root/repo/target/debug/examples/webdav_server-012877b159c9c991.d: examples/webdav_server.rs Cargo.toml

/root/repo/target/debug/examples/libwebdav_server-012877b159c9c991.rmeta: examples/webdav_server.rs Cargo.toml

examples/webdav_server.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
