/root/repo/target/debug/examples/proposal_financial-1d1a77c19da11167.d: examples/proposal_financial.rs

/root/repo/target/debug/examples/proposal_financial-1d1a77c19da11167: examples/proposal_financial.rs

examples/proposal_financial.rs:
