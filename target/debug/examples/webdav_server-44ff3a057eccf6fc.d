/root/repo/target/debug/examples/webdav_server-44ff3a057eccf6fc.d: examples/webdav_server.rs

/root/repo/target/debug/examples/webdav_server-44ff3a057eccf6fc: examples/webdav_server.rs

examples/webdav_server.rs:
