/root/repo/target/debug/examples/webdav_server-a26f2c0067439cd7.d: examples/webdav_server.rs

/root/repo/target/debug/examples/webdav_server-a26f2c0067439cd7: examples/webdav_server.rs

examples/webdav_server.rs:
