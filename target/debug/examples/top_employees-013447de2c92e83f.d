/root/repo/target/debug/examples/top_employees-013447de2c92e83f.d: examples/top_employees.rs

/root/repo/target/debug/examples/top_employees-013447de2c92e83f: examples/top_employees.rs

examples/top_employees.rs:
