/root/repo/target/debug/examples/federated_server-60ad0677e5e374b0.d: examples/federated_server.rs

/root/repo/target/debug/examples/federated_server-60ad0677e5e374b0: examples/federated_server.rs

examples/federated_server.rs:
