/root/repo/target/debug/examples/quickstart-2e0fc8a237f6848b.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-2e0fc8a237f6848b: examples/quickstart.rs

examples/quickstart.rs:
