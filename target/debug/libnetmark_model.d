/root/repo/target/debug/libnetmark_model.rlib: /root/repo/crates/model/src/escape.rs /root/repo/crates/model/src/lib.rs /root/repo/crates/model/src/node.rs
