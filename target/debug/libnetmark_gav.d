/root/repo/target/debug/libnetmark_gav.rlib: /root/repo/crates/gav/src/lib.rs /root/repo/crates/gav/src/mediator.rs /root/repo/crates/gav/src/model.rs
