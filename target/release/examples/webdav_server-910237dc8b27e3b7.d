/root/repo/target/release/examples/webdav_server-910237dc8b27e3b7.d: examples/webdav_server.rs Cargo.toml

/root/repo/target/release/examples/libwebdav_server-910237dc8b27e3b7.rmeta: examples/webdav_server.rs Cargo.toml

examples/webdav_server.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
