/root/repo/target/release/examples/ibpd-b32ac84e3de56350.d: examples/ibpd.rs Cargo.toml

/root/repo/target/release/examples/libibpd-b32ac84e3de56350.rmeta: examples/ibpd.rs Cargo.toml

examples/ibpd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
