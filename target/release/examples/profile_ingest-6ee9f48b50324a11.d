/root/repo/target/release/examples/profile_ingest-6ee9f48b50324a11.d: crates/bench/examples/profile_ingest.rs

/root/repo/target/release/examples/profile_ingest-6ee9f48b50324a11: crates/bench/examples/profile_ingest.rs

crates/bench/examples/profile_ingest.rs:
