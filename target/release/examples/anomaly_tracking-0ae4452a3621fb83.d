/root/repo/target/release/examples/anomaly_tracking-0ae4452a3621fb83.d: examples/anomaly_tracking.rs Cargo.toml

/root/repo/target/release/examples/libanomaly_tracking-0ae4452a3621fb83.rmeta: examples/anomaly_tracking.rs Cargo.toml

examples/anomaly_tracking.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
