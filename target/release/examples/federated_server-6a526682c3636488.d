/root/repo/target/release/examples/federated_server-6a526682c3636488.d: examples/federated_server.rs Cargo.toml

/root/repo/target/release/examples/libfederated_server-6a526682c3636488.rmeta: examples/federated_server.rs Cargo.toml

examples/federated_server.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
