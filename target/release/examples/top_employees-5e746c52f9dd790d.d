/root/repo/target/release/examples/top_employees-5e746c52f9dd790d.d: examples/top_employees.rs Cargo.toml

/root/repo/target/release/examples/libtop_employees-5e746c52f9dd790d.rmeta: examples/top_employees.rs Cargo.toml

examples/top_employees.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
