/root/repo/target/release/examples/quickstart-79411837e8fa8368.d: examples/quickstart.rs Cargo.toml

/root/repo/target/release/examples/libquickstart-79411837e8fa8368.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
