/root/repo/target/release/examples/federated_server-b2e32efae73dbe79.d: examples/federated_server.rs

/root/repo/target/release/examples/federated_server-b2e32efae73dbe79: examples/federated_server.rs

examples/federated_server.rs:
