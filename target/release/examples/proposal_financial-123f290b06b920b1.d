/root/repo/target/release/examples/proposal_financial-123f290b06b920b1.d: examples/proposal_financial.rs Cargo.toml

/root/repo/target/release/examples/libproposal_financial-123f290b06b920b1.rmeta: examples/proposal_financial.rs Cargo.toml

examples/proposal_financial.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
