/root/repo/target/release/deps/fig3_pipeline-b85f2b2e04d2b7f0.d: crates/bench/src/bin/fig3_pipeline.rs Cargo.toml

/root/repo/target/release/deps/libfig3_pipeline-b85f2b2e04d2b7f0.rmeta: crates/bench/src/bin/fig3_pipeline.rs Cargo.toml

crates/bench/src/bin/fig3_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
