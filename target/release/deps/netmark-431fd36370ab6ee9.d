/root/repo/target/release/deps/netmark-431fd36370ab6ee9.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/metrics.rs crates/core/src/netmark.rs crates/core/src/pipeline.rs crates/core/src/schema.rs crates/core/src/search.rs crates/core/src/store.rs Cargo.toml

/root/repo/target/release/deps/libnetmark-431fd36370ab6ee9.rmeta: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/metrics.rs crates/core/src/netmark.rs crates/core/src/pipeline.rs crates/core/src/schema.rs crates/core/src/search.rs crates/core/src/store.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/metrics.rs:
crates/core/src/netmark.rs:
crates/core/src/pipeline.rs:
crates/core/src/schema.rs:
crates/core/src/search.rs:
crates/core/src/store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
