/root/repo/target/release/deps/netmark-e520ca8aa84b8c6d.d: crates/cli/src/main.rs

/root/repo/target/release/deps/netmark-e520ca8aa84b8c6d: crates/cli/src/main.rs

crates/cli/src/main.rs:
