/root/repo/target/release/deps/netmark_corpus-35f9e2089d31fd2f.d: crates/corpus/src/lib.rs crates/corpus/src/generate.rs crates/corpus/src/words.rs Cargo.toml

/root/repo/target/release/deps/libnetmark_corpus-35f9e2089d31fd2f.rmeta: crates/corpus/src/lib.rs crates/corpus/src/generate.rs crates/corpus/src/words.rs Cargo.toml

crates/corpus/src/lib.rs:
crates/corpus/src/generate.rs:
crates/corpus/src/words.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
