/root/repo/target/release/deps/fig7_xslt-6857eb9b7eec1839.d: crates/bench/src/bin/fig7_xslt.rs

/root/repo/target/release/deps/fig7_xslt-6857eb9b7eec1839: crates/bench/src/bin/fig7_xslt.rs

crates/bench/src/bin/fig7_xslt.rs:
