/root/repo/target/release/deps/netmark_xslt-beb0a7287f06c26c.d: crates/xslt/src/lib.rs crates/xslt/src/transform.rs crates/xslt/src/xpath.rs Cargo.toml

/root/repo/target/release/deps/libnetmark_xslt-beb0a7287f06c26c.rmeta: crates/xslt/src/lib.rs crates/xslt/src/transform.rs crates/xslt/src/xpath.rs Cargo.toml

crates/xslt/src/lib.rs:
crates/xslt/src/transform.rs:
crates/xslt/src/xpath.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
