/root/repo/target/release/deps/fig6_context_search-fe8b464513b16910.d: crates/bench/src/bin/fig6_context_search.rs

/root/repo/target/release/deps/fig6_context_search-fe8b464513b16910: crates/bench/src/bin/fig6_context_search.rs

crates/bench/src/bin/fig6_context_search.rs:
