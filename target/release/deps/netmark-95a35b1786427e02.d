/root/repo/target/release/deps/netmark-95a35b1786427e02.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/metrics.rs crates/core/src/netmark.rs crates/core/src/pipeline.rs crates/core/src/schema.rs crates/core/src/search.rs crates/core/src/store.rs

/root/repo/target/release/deps/libnetmark-95a35b1786427e02.rlib: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/metrics.rs crates/core/src/netmark.rs crates/core/src/pipeline.rs crates/core/src/schema.rs crates/core/src/search.rs crates/core/src/store.rs

/root/repo/target/release/deps/libnetmark-95a35b1786427e02.rmeta: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/metrics.rs crates/core/src/netmark.rs crates/core/src/pipeline.rs crates/core/src/schema.rs crates/core/src/search.rs crates/core/src/store.rs

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/metrics.rs:
crates/core/src/netmark.rs:
crates/core/src/pipeline.rs:
crates/core/src/schema.rs:
crates/core/src/search.rs:
crates/core/src/store.rs:
