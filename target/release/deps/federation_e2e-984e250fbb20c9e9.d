/root/repo/target/release/deps/federation_e2e-984e250fbb20c9e9.d: tests/federation_e2e.rs Cargo.toml

/root/repo/target/release/deps/libfederation_e2e-984e250fbb20c9e9.rmeta: tests/federation_e2e.rs Cargo.toml

tests/federation_e2e.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
