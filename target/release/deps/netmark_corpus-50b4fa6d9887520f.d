/root/repo/target/release/deps/netmark_corpus-50b4fa6d9887520f.d: crates/corpus/src/lib.rs crates/corpus/src/generate.rs crates/corpus/src/words.rs Cargo.toml

/root/repo/target/release/deps/libnetmark_corpus-50b4fa6d9887520f.rmeta: crates/corpus/src/lib.rs crates/corpus/src/generate.rs crates/corpus/src/words.rs Cargo.toml

crates/corpus/src/lib.rs:
crates/corpus/src/generate.rs:
crates/corpus/src/words.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
