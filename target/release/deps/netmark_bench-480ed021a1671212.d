/root/repo/target/release/deps/netmark_bench-480ed021a1671212.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libnetmark_bench-480ed021a1671212.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libnetmark_bench-480ed021a1671212.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
