/root/repo/target/release/deps/tbl1_assembly-e4515a59a7edb6cf.d: crates/bench/src/bin/tbl1_assembly.rs Cargo.toml

/root/repo/target/release/deps/libtbl1_assembly-e4515a59a7edb6cf.rmeta: crates/bench/src/bin/tbl1_assembly.rs Cargo.toml

crates/bench/src/bin/tbl1_assembly.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
