/root/repo/target/release/deps/fig6_context_search-b4a404cdbec19a9d.d: crates/bench/src/bin/fig6_context_search.rs

/root/repo/target/release/deps/fig6_context_search-b4a404cdbec19a9d: crates/bench/src/bin/fig6_context_search.rs

crates/bench/src/bin/fig6_context_search.rs:
