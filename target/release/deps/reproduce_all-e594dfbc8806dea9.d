/root/repo/target/release/deps/reproduce_all-e594dfbc8806dea9.d: crates/bench/src/bin/reproduce_all.rs

/root/repo/target/release/deps/reproduce_all-e594dfbc8806dea9: crates/bench/src/bin/reproduce_all.rs

crates/bench/src/bin/reproduce_all.rs:
