/root/repo/target/release/deps/ablations-28eb85e96fc99b43.d: crates/bench/src/bin/ablations.rs Cargo.toml

/root/repo/target/release/deps/libablations-28eb85e96fc99b43.rmeta: crates/bench/src/bin/ablations.rs Cargo.toml

crates/bench/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
