/root/repo/target/release/deps/fig6_context_search-748293123cecaf62.d: crates/bench/src/bin/fig6_context_search.rs Cargo.toml

/root/repo/target/release/deps/libfig6_context_search-748293123cecaf62.rmeta: crates/bench/src/bin/fig6_context_search.rs Cargo.toml

crates/bench/src/bin/fig6_context_search.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
