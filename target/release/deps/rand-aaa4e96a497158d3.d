/root/repo/target/release/deps/rand-aaa4e96a497158d3.d: crates/shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-aaa4e96a497158d3.rmeta: crates/shims/rand/src/lib.rs

crates/shims/rand/src/lib.rs:
