/root/repo/target/release/deps/fig3_pipeline-6f1d3d078a8e0ed0.d: crates/bench/src/bin/fig3_pipeline.rs

/root/repo/target/release/deps/fig3_pipeline-6f1d3d078a8e0ed0: crates/bench/src/bin/fig3_pipeline.rs

crates/bench/src/bin/fig3_pipeline.rs:
