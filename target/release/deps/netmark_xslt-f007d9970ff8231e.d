/root/repo/target/release/deps/netmark_xslt-f007d9970ff8231e.d: crates/xslt/src/lib.rs crates/xslt/src/transform.rs crates/xslt/src/xpath.rs

/root/repo/target/release/deps/libnetmark_xslt-f007d9970ff8231e.rlib: crates/xslt/src/lib.rs crates/xslt/src/transform.rs crates/xslt/src/xpath.rs

/root/repo/target/release/deps/libnetmark_xslt-f007d9970ff8231e.rmeta: crates/xslt/src/lib.rs crates/xslt/src/transform.rs crates/xslt/src/xpath.rs

crates/xslt/src/lib.rs:
crates/xslt/src/transform.rs:
crates/xslt/src/xpath.rs:
