/root/repo/target/release/deps/fig8_federation-8cdd8a5bc06d6bd9.d: crates/bench/src/bin/fig8_federation.rs Cargo.toml

/root/repo/target/release/deps/libfig8_federation-8cdd8a5bc06d6bd9.rmeta: crates/bench/src/bin/fig8_federation.rs Cargo.toml

crates/bench/src/bin/fig8_federation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
