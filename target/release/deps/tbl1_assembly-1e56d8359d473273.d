/root/repo/target/release/deps/tbl1_assembly-1e56d8359d473273.d: crates/bench/src/bin/tbl1_assembly.rs Cargo.toml

/root/repo/target/release/deps/libtbl1_assembly-1e56d8359d473273.rmeta: crates/bench/src/bin/tbl1_assembly.rs Cargo.toml

crates/bench/src/bin/tbl1_assembly.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
