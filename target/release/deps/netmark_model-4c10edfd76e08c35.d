/root/repo/target/release/deps/netmark_model-4c10edfd76e08c35.d: crates/model/src/lib.rs crates/model/src/escape.rs crates/model/src/node.rs Cargo.toml

/root/repo/target/release/deps/libnetmark_model-4c10edfd76e08c35.rmeta: crates/model/src/lib.rs crates/model/src/escape.rs crates/model/src/node.rs Cargo.toml

crates/model/src/lib.rs:
crates/model/src/escape.rs:
crates/model/src/node.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
