/root/repo/target/release/deps/netmark_gav-1033f1d707b54d64.d: crates/gav/src/lib.rs crates/gav/src/mediator.rs crates/gav/src/model.rs

/root/repo/target/release/deps/libnetmark_gav-1033f1d707b54d64.rlib: crates/gav/src/lib.rs crates/gav/src/mediator.rs crates/gav/src/model.rs

/root/repo/target/release/deps/libnetmark_gav-1033f1d707b54d64.rmeta: crates/gav/src/lib.rs crates/gav/src/mediator.rs crates/gav/src/model.rs

crates/gav/src/lib.rs:
crates/gav/src/mediator.rs:
crates/gav/src/model.rs:
