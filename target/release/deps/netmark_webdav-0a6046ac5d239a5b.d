/root/repo/target/release/deps/netmark_webdav-0a6046ac5d239a5b.d: crates/webdav/src/lib.rs crates/webdav/src/daemon.rs crates/webdav/src/http.rs crates/webdav/src/ingest.rs crates/webdav/src/server.rs Cargo.toml

/root/repo/target/release/deps/libnetmark_webdav-0a6046ac5d239a5b.rmeta: crates/webdav/src/lib.rs crates/webdav/src/daemon.rs crates/webdav/src/http.rs crates/webdav/src/ingest.rs crates/webdav/src/server.rs Cargo.toml

crates/webdav/src/lib.rs:
crates/webdav/src/daemon.rs:
crates/webdav/src/http.rs:
crates/webdav/src/ingest.rs:
crates/webdav/src/server.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
