/root/repo/target/release/deps/properties-211c3e1e1d4ff1ce.d: tests/properties.rs Cargo.toml

/root/repo/target/release/deps/libproperties-211c3e1e1d4ff1ce.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
