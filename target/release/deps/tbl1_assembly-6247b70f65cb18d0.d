/root/repo/target/release/deps/tbl1_assembly-6247b70f65cb18d0.d: crates/bench/src/bin/tbl1_assembly.rs

/root/repo/target/release/deps/tbl1_assembly-6247b70f65cb18d0: crates/bench/src/bin/tbl1_assembly.rs

crates/bench/src/bin/tbl1_assembly.rs:
