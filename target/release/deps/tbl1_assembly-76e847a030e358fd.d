/root/repo/target/release/deps/tbl1_assembly-76e847a030e358fd.d: crates/bench/src/bin/tbl1_assembly.rs

/root/repo/target/release/deps/tbl1_assembly-76e847a030e358fd: crates/bench/src/bin/tbl1_assembly.rs

crates/bench/src/bin/tbl1_assembly.rs:
