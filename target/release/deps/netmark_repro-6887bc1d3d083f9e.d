/root/repo/target/release/deps/netmark_repro-6887bc1d3d083f9e.d: src/lib.rs

/root/repo/target/release/deps/libnetmark_repro-6887bc1d3d083f9e.rlib: src/lib.rs

/root/repo/target/release/deps/libnetmark_repro-6887bc1d3d083f9e.rmeta: src/lib.rs

src/lib.rs:
