/root/repo/target/release/deps/fig8_federation-147d910220d5723c.d: crates/bench/src/bin/fig8_federation.rs

/root/repo/target/release/deps/fig8_federation-147d910220d5723c: crates/bench/src/bin/fig8_federation.rs

crates/bench/src/bin/fig8_federation.rs:
