/root/repo/target/release/deps/netmark_xdb-e1ea80ebc86c47ea.d: crates/xdb/src/lib.rs crates/xdb/src/query.rs crates/xdb/src/result.rs Cargo.toml

/root/repo/target/release/deps/libnetmark_xdb-e1ea80ebc86c47ea.rmeta: crates/xdb/src/lib.rs crates/xdb/src/query.rs crates/xdb/src/result.rs Cargo.toml

crates/xdb/src/lib.rs:
crates/xdb/src/query.rs:
crates/xdb/src/result.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
