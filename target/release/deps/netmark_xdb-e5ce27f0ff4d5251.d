/root/repo/target/release/deps/netmark_xdb-e5ce27f0ff4d5251.d: crates/xdb/src/lib.rs crates/xdb/src/query.rs crates/xdb/src/result.rs Cargo.toml

/root/repo/target/release/deps/libnetmark_xdb-e5ce27f0ff4d5251.rmeta: crates/xdb/src/lib.rs crates/xdb/src/query.rs crates/xdb/src/result.rs Cargo.toml

crates/xdb/src/lib.rs:
crates/xdb/src/query.rs:
crates/xdb/src/result.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
