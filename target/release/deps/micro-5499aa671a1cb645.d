/root/repo/target/release/deps/micro-5499aa671a1cb645.d: crates/bench/benches/micro.rs Cargo.toml

/root/repo/target/release/deps/libmicro-5499aa671a1cb645.rmeta: crates/bench/benches/micro.rs Cargo.toml

crates/bench/benches/micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
