/root/repo/target/release/deps/rand-13b393b138e9536e.d: crates/shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-13b393b138e9536e.rlib: crates/shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-13b393b138e9536e.rmeta: crates/shims/rand/src/lib.rs

crates/shims/rand/src/lib.rs:
