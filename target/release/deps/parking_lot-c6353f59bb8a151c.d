/root/repo/target/release/deps/parking_lot-c6353f59bb8a151c.d: crates/shims/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-c6353f59bb8a151c.rlib: crates/shims/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-c6353f59bb8a151c.rmeta: crates/shims/parking_lot/src/lib.rs

crates/shims/parking_lot/src/lib.rs:
