/root/repo/target/release/deps/fig3_pipeline-efecdeac62f30958.d: crates/bench/src/bin/fig3_pipeline.rs Cargo.toml

/root/repo/target/release/deps/libfig3_pipeline-efecdeac62f30958.rmeta: crates/bench/src/bin/fig3_pipeline.rs Cargo.toml

crates/bench/src/bin/fig3_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
