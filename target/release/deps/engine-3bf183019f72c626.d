/root/repo/target/release/deps/engine-3bf183019f72c626.d: crates/relstore/tests/engine.rs Cargo.toml

/root/repo/target/release/deps/libengine-3bf183019f72c626.rmeta: crates/relstore/tests/engine.rs Cargo.toml

crates/relstore/tests/engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
