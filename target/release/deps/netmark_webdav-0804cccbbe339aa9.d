/root/repo/target/release/deps/netmark_webdav-0804cccbbe339aa9.d: crates/webdav/src/lib.rs crates/webdav/src/daemon.rs crates/webdav/src/http.rs crates/webdav/src/ingest.rs crates/webdav/src/server.rs

/root/repo/target/release/deps/libnetmark_webdav-0804cccbbe339aa9.rlib: crates/webdav/src/lib.rs crates/webdav/src/daemon.rs crates/webdav/src/http.rs crates/webdav/src/ingest.rs crates/webdav/src/server.rs

/root/repo/target/release/deps/libnetmark_webdav-0804cccbbe339aa9.rmeta: crates/webdav/src/lib.rs crates/webdav/src/daemon.rs crates/webdav/src/http.rs crates/webdav/src/ingest.rs crates/webdav/src/server.rs

crates/webdav/src/lib.rs:
crates/webdav/src/daemon.rs:
crates/webdav/src/http.rs:
crates/webdav/src/ingest.rs:
crates/webdav/src/server.rs:
