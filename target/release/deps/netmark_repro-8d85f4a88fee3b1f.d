/root/repo/target/release/deps/netmark_repro-8d85f4a88fee3b1f.d: src/lib.rs

/root/repo/target/release/deps/libnetmark_repro-8d85f4a88fee3b1f.rlib: src/lib.rs

/root/repo/target/release/deps/libnetmark_repro-8d85f4a88fee3b1f.rmeta: src/lib.rs

src/lib.rs:
