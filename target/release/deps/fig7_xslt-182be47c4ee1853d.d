/root/repo/target/release/deps/fig7_xslt-182be47c4ee1853d.d: crates/bench/src/bin/fig7_xslt.rs Cargo.toml

/root/repo/target/release/deps/libfig7_xslt-182be47c4ee1853d.rmeta: crates/bench/src/bin/fig7_xslt.rs Cargo.toml

crates/bench/src/bin/fig7_xslt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
