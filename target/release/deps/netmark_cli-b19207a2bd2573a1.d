/root/repo/target/release/deps/netmark_cli-b19207a2bd2573a1.d: crates/cli/src/lib.rs

/root/repo/target/release/deps/libnetmark_cli-b19207a2bd2573a1.rlib: crates/cli/src/lib.rs

/root/repo/target/release/deps/libnetmark_cli-b19207a2bd2573a1.rmeta: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
