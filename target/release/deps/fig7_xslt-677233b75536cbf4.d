/root/repo/target/release/deps/fig7_xslt-677233b75536cbf4.d: crates/bench/src/bin/fig7_xslt.rs Cargo.toml

/root/repo/target/release/deps/libfig7_xslt-677233b75536cbf4.rmeta: crates/bench/src/bin/fig7_xslt.rs Cargo.toml

crates/bench/src/bin/fig7_xslt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
