/root/repo/target/release/deps/fig8_federation-b0e19d5df924495b.d: crates/bench/src/bin/fig8_federation.rs

/root/repo/target/release/deps/fig8_federation-b0e19d5df924495b: crates/bench/src/bin/fig8_federation.rs

crates/bench/src/bin/fig8_federation.rs:
