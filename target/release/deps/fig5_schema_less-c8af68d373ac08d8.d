/root/repo/target/release/deps/fig5_schema_less-c8af68d373ac08d8.d: crates/bench/src/bin/fig5_schema_less.rs

/root/repo/target/release/deps/fig5_schema_less-c8af68d373ac08d8: crates/bench/src/bin/fig5_schema_less.rs

crates/bench/src/bin/fig5_schema_less.rs:
