/root/repo/target/release/deps/netmark_gav-5d312eee11c830ff.d: crates/gav/src/lib.rs crates/gav/src/mediator.rs crates/gav/src/model.rs Cargo.toml

/root/repo/target/release/deps/libnetmark_gav-5d312eee11c830ff.rmeta: crates/gav/src/lib.rs crates/gav/src/mediator.rs crates/gav/src/model.rs Cargo.toml

crates/gav/src/lib.rs:
crates/gav/src/mediator.rs:
crates/gav/src/model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
