/root/repo/target/release/deps/fig8_federation-5c3b34e57967c9c9.d: crates/bench/src/bin/fig8_federation.rs Cargo.toml

/root/repo/target/release/deps/libfig8_federation-5c3b34e57967c9c9.rmeta: crates/bench/src/bin/fig8_federation.rs Cargo.toml

crates/bench/src/bin/fig8_federation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
