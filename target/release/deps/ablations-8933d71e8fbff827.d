/root/repo/target/release/deps/ablations-8933d71e8fbff827.d: crates/bench/src/bin/ablations.rs Cargo.toml

/root/repo/target/release/deps/libablations-8933d71e8fbff827.rmeta: crates/bench/src/bin/ablations.rs Cargo.toml

crates/bench/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
