/root/repo/target/release/deps/parking_lot-b7aaf0026d315bc5.d: crates/shims/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-b7aaf0026d315bc5.rmeta: crates/shims/parking_lot/src/lib.rs

crates/shims/parking_lot/src/lib.rs:
