/root/repo/target/release/deps/proptest-4728fa1777cff911.d: crates/shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-4728fa1777cff911.rlib: crates/shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-4728fa1777cff911.rmeta: crates/shims/proptest/src/lib.rs

crates/shims/proptest/src/lib.rs:
