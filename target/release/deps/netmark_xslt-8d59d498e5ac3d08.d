/root/repo/target/release/deps/netmark_xslt-8d59d498e5ac3d08.d: crates/xslt/src/lib.rs crates/xslt/src/transform.rs crates/xslt/src/xpath.rs Cargo.toml

/root/repo/target/release/deps/libnetmark_xslt-8d59d498e5ac3d08.rmeta: crates/xslt/src/lib.rs crates/xslt/src/transform.rs crates/xslt/src/xpath.rs Cargo.toml

crates/xslt/src/lib.rs:
crates/xslt/src/transform.rs:
crates/xslt/src/xpath.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
