/root/repo/target/release/deps/sec4_top_employees-3cc8dbf4675c33de.d: crates/bench/src/bin/sec4_top_employees.rs Cargo.toml

/root/repo/target/release/deps/libsec4_top_employees-3cc8dbf4675c33de.rmeta: crates/bench/src/bin/sec4_top_employees.rs Cargo.toml

crates/bench/src/bin/sec4_top_employees.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
