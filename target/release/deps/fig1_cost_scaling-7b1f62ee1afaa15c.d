/root/repo/target/release/deps/fig1_cost_scaling-7b1f62ee1afaa15c.d: crates/bench/src/bin/fig1_cost_scaling.rs

/root/repo/target/release/deps/fig1_cost_scaling-7b1f62ee1afaa15c: crates/bench/src/bin/fig1_cost_scaling.rs

crates/bench/src/bin/fig1_cost_scaling.rs:
