/root/repo/target/release/deps/netmark_repro-468227b952f60dd7.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libnetmark_repro-468227b952f60dd7.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
