/root/repo/target/release/deps/netmark_corpus-476f84ad0d85b95f.d: crates/corpus/src/lib.rs crates/corpus/src/generate.rs crates/corpus/src/words.rs

/root/repo/target/release/deps/libnetmark_corpus-476f84ad0d85b95f.rlib: crates/corpus/src/lib.rs crates/corpus/src/generate.rs crates/corpus/src/words.rs

/root/repo/target/release/deps/libnetmark_corpus-476f84ad0d85b95f.rmeta: crates/corpus/src/lib.rs crates/corpus/src/generate.rs crates/corpus/src/words.rs

crates/corpus/src/lib.rs:
crates/corpus/src/generate.rs:
crates/corpus/src/words.rs:
