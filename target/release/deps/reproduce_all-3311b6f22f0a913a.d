/root/repo/target/release/deps/reproduce_all-3311b6f22f0a913a.d: crates/bench/src/bin/reproduce_all.rs Cargo.toml

/root/repo/target/release/deps/libreproduce_all-3311b6f22f0a913a.rmeta: crates/bench/src/bin/reproduce_all.rs Cargo.toml

crates/bench/src/bin/reproduce_all.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
