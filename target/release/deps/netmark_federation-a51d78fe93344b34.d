/root/repo/target/release/deps/netmark_federation-a51d78fe93344b34.d: crates/federation/src/lib.rs crates/federation/src/adapter.rs crates/federation/src/databank.rs crates/federation/src/matcher.rs crates/federation/src/serve.rs

/root/repo/target/release/deps/libnetmark_federation-a51d78fe93344b34.rlib: crates/federation/src/lib.rs crates/federation/src/adapter.rs crates/federation/src/databank.rs crates/federation/src/matcher.rs crates/federation/src/serve.rs

/root/repo/target/release/deps/libnetmark_federation-a51d78fe93344b34.rmeta: crates/federation/src/lib.rs crates/federation/src/adapter.rs crates/federation/src/databank.rs crates/federation/src/matcher.rs crates/federation/src/serve.rs

crates/federation/src/lib.rs:
crates/federation/src/adapter.rs:
crates/federation/src/databank.rs:
crates/federation/src/matcher.rs:
crates/federation/src/serve.rs:
