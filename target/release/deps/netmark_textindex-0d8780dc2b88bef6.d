/root/repo/target/release/deps/netmark_textindex-0d8780dc2b88bef6.d: crates/textindex/src/lib.rs crates/textindex/src/index.rs crates/textindex/src/postings.rs crates/textindex/src/tokenize.rs Cargo.toml

/root/repo/target/release/deps/libnetmark_textindex-0d8780dc2b88bef6.rmeta: crates/textindex/src/lib.rs crates/textindex/src/index.rs crates/textindex/src/postings.rs crates/textindex/src/tokenize.rs Cargo.toml

crates/textindex/src/lib.rs:
crates/textindex/src/index.rs:
crates/textindex/src/postings.rs:
crates/textindex/src/tokenize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
