/root/repo/target/release/deps/netmark_federation-a0a2d66307110dde.d: crates/federation/src/lib.rs crates/federation/src/adapter.rs crates/federation/src/databank.rs crates/federation/src/matcher.rs crates/federation/src/serve.rs

/root/repo/target/release/deps/libnetmark_federation-a0a2d66307110dde.rlib: crates/federation/src/lib.rs crates/federation/src/adapter.rs crates/federation/src/databank.rs crates/federation/src/matcher.rs crates/federation/src/serve.rs

/root/repo/target/release/deps/libnetmark_federation-a0a2d66307110dde.rmeta: crates/federation/src/lib.rs crates/federation/src/adapter.rs crates/federation/src/databank.rs crates/federation/src/matcher.rs crates/federation/src/serve.rs

crates/federation/src/lib.rs:
crates/federation/src/adapter.rs:
crates/federation/src/databank.rs:
crates/federation/src/matcher.rs:
crates/federation/src/serve.rs:
