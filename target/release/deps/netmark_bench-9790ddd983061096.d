/root/repo/target/release/deps/netmark_bench-9790ddd983061096.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libnetmark_bench-9790ddd983061096.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
