/root/repo/target/release/deps/netmark-949f6ce11224a1be.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/release/deps/libnetmark-949f6ce11224a1be.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
