/root/repo/target/release/deps/netmark_model-11bb8df68e1cd8d1.d: crates/model/src/lib.rs crates/model/src/escape.rs crates/model/src/node.rs

/root/repo/target/release/deps/libnetmark_model-11bb8df68e1cd8d1.rlib: crates/model/src/lib.rs crates/model/src/escape.rs crates/model/src/node.rs

/root/repo/target/release/deps/libnetmark_model-11bb8df68e1cd8d1.rmeta: crates/model/src/lib.rs crates/model/src/escape.rs crates/model/src/node.rs

crates/model/src/lib.rs:
crates/model/src/escape.rs:
crates/model/src/node.rs:
