/root/repo/target/release/deps/fig6_context_search-e40de8e1fdfc416a.d: crates/bench/src/bin/fig6_context_search.rs Cargo.toml

/root/repo/target/release/deps/libfig6_context_search-e40de8e1fdfc416a.rmeta: crates/bench/src/bin/fig6_context_search.rs Cargo.toml

crates/bench/src/bin/fig6_context_search.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
