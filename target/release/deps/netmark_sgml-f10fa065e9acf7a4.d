/root/repo/target/release/deps/netmark_sgml-f10fa065e9acf7a4.d: crates/sgml/src/lib.rs crates/sgml/src/config.rs crates/sgml/src/parser.rs crates/sgml/src/tokenizer.rs Cargo.toml

/root/repo/target/release/deps/libnetmark_sgml-f10fa065e9acf7a4.rmeta: crates/sgml/src/lib.rs crates/sgml/src/config.rs crates/sgml/src/parser.rs crates/sgml/src/tokenizer.rs Cargo.toml

crates/sgml/src/lib.rs:
crates/sgml/src/config.rs:
crates/sgml/src/parser.rs:
crates/sgml/src/tokenizer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
