/root/repo/target/release/deps/fig5_schema_less-57ebb4bcada1712b.d: crates/bench/src/bin/fig5_schema_less.rs Cargo.toml

/root/repo/target/release/deps/libfig5_schema_less-57ebb4bcada1712b.rmeta: crates/bench/src/bin/fig5_schema_less.rs Cargo.toml

crates/bench/src/bin/fig5_schema_less.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
