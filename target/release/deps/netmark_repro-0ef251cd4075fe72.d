/root/repo/target/release/deps/netmark_repro-0ef251cd4075fe72.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libnetmark_repro-0ef251cd4075fe72.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
