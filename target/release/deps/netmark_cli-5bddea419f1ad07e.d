/root/repo/target/release/deps/netmark_cli-5bddea419f1ad07e.d: crates/cli/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libnetmark_cli-5bddea419f1ad07e.rmeta: crates/cli/src/lib.rs Cargo.toml

crates/cli/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
