/root/repo/target/release/deps/netmark_webdav-63723b77faabd53c.d: crates/webdav/src/lib.rs crates/webdav/src/daemon.rs crates/webdav/src/http.rs crates/webdav/src/server.rs

/root/repo/target/release/deps/libnetmark_webdav-63723b77faabd53c.rlib: crates/webdav/src/lib.rs crates/webdav/src/daemon.rs crates/webdav/src/http.rs crates/webdav/src/server.rs

/root/repo/target/release/deps/libnetmark_webdav-63723b77faabd53c.rmeta: crates/webdav/src/lib.rs crates/webdav/src/daemon.rs crates/webdav/src/http.rs crates/webdav/src/server.rs

crates/webdav/src/lib.rs:
crates/webdav/src/daemon.rs:
crates/webdav/src/http.rs:
crates/webdav/src/server.rs:
