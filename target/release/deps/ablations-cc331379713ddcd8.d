/root/repo/target/release/deps/ablations-cc331379713ddcd8.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-cc331379713ddcd8: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
