/root/repo/target/release/deps/edge_cases-b079b3291907fb08.d: tests/edge_cases.rs Cargo.toml

/root/repo/target/release/deps/libedge_cases-b079b3291907fb08.rmeta: tests/edge_cases.rs Cargo.toml

tests/edge_cases.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
