/root/repo/target/release/deps/fig1_cost_scaling-4fcbd3040bbead2e.d: crates/bench/src/bin/fig1_cost_scaling.rs

/root/repo/target/release/deps/fig1_cost_scaling-4fcbd3040bbead2e: crates/bench/src/bin/fig1_cost_scaling.rs

crates/bench/src/bin/fig1_cost_scaling.rs:
