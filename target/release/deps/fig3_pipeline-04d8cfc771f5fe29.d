/root/repo/target/release/deps/fig3_pipeline-04d8cfc771f5fe29.d: crates/bench/src/bin/fig3_pipeline.rs

/root/repo/target/release/deps/fig3_pipeline-04d8cfc771f5fe29: crates/bench/src/bin/fig3_pipeline.rs

crates/bench/src/bin/fig3_pipeline.rs:
