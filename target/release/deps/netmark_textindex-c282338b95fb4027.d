/root/repo/target/release/deps/netmark_textindex-c282338b95fb4027.d: crates/textindex/src/lib.rs crates/textindex/src/index.rs crates/textindex/src/postings.rs crates/textindex/src/tokenize.rs

/root/repo/target/release/deps/libnetmark_textindex-c282338b95fb4027.rlib: crates/textindex/src/lib.rs crates/textindex/src/index.rs crates/textindex/src/postings.rs crates/textindex/src/tokenize.rs

/root/repo/target/release/deps/libnetmark_textindex-c282338b95fb4027.rmeta: crates/textindex/src/lib.rs crates/textindex/src/index.rs crates/textindex/src/postings.rs crates/textindex/src/tokenize.rs

crates/textindex/src/lib.rs:
crates/textindex/src/index.rs:
crates/textindex/src/postings.rs:
crates/textindex/src/tokenize.rs:
