/root/repo/target/release/deps/fig1_cost_scaling-83ca1fc7e61fbe4b.d: crates/bench/src/bin/fig1_cost_scaling.rs Cargo.toml

/root/repo/target/release/deps/libfig1_cost_scaling-83ca1fc7e61fbe4b.rmeta: crates/bench/src/bin/fig1_cost_scaling.rs Cargo.toml

crates/bench/src/bin/fig1_cost_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
