/root/repo/target/release/deps/reproduce_all-2cd2d9ca1ab4569c.d: crates/bench/src/bin/reproduce_all.rs

/root/repo/target/release/deps/reproduce_all-2cd2d9ca1ab4569c: crates/bench/src/bin/reproduce_all.rs

crates/bench/src/bin/reproduce_all.rs:
