/root/repo/target/release/deps/netmark_repro-8e8a6fbadc16b094.d: src/lib.rs

/root/repo/target/release/deps/libnetmark_repro-8e8a6fbadc16b094.rlib: src/lib.rs

/root/repo/target/release/deps/libnetmark_repro-8e8a6fbadc16b094.rmeta: src/lib.rs

src/lib.rs:
