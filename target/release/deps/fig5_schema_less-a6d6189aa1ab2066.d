/root/repo/target/release/deps/fig5_schema_less-a6d6189aa1ab2066.d: crates/bench/src/bin/fig5_schema_less.rs

/root/repo/target/release/deps/fig5_schema_less-a6d6189aa1ab2066: crates/bench/src/bin/fig5_schema_less.rs

crates/bench/src/bin/fig5_schema_less.rs:
