/root/repo/target/release/deps/fig1_cost_scaling-3c6133d0d653ad6e.d: crates/bench/src/bin/fig1_cost_scaling.rs Cargo.toml

/root/repo/target/release/deps/libfig1_cost_scaling-3c6133d0d653ad6e.rmeta: crates/bench/src/bin/fig1_cost_scaling.rs Cargo.toml

crates/bench/src/bin/fig1_cost_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
