/root/repo/target/release/deps/netmark_xdb-ef6f3c0e019e8768.d: crates/xdb/src/lib.rs crates/xdb/src/caps.rs crates/xdb/src/query.rs crates/xdb/src/result.rs

/root/repo/target/release/deps/libnetmark_xdb-ef6f3c0e019e8768.rlib: crates/xdb/src/lib.rs crates/xdb/src/caps.rs crates/xdb/src/query.rs crates/xdb/src/result.rs

/root/repo/target/release/deps/libnetmark_xdb-ef6f3c0e019e8768.rmeta: crates/xdb/src/lib.rs crates/xdb/src/caps.rs crates/xdb/src/query.rs crates/xdb/src/result.rs

crates/xdb/src/lib.rs:
crates/xdb/src/caps.rs:
crates/xdb/src/query.rs:
crates/xdb/src/result.rs:
