/root/repo/target/release/deps/netmark_model-ee6bb2cd0c9fbb10.d: crates/model/src/lib.rs crates/model/src/escape.rs crates/model/src/node.rs Cargo.toml

/root/repo/target/release/deps/libnetmark_model-ee6bb2cd0c9fbb10.rmeta: crates/model/src/lib.rs crates/model/src/escape.rs crates/model/src/node.rs Cargo.toml

crates/model/src/lib.rs:
crates/model/src/escape.rs:
crates/model/src/node.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
