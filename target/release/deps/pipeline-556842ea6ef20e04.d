/root/repo/target/release/deps/pipeline-556842ea6ef20e04.d: tests/pipeline.rs Cargo.toml

/root/repo/target/release/deps/libpipeline-556842ea6ef20e04.rmeta: tests/pipeline.rs Cargo.toml

tests/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
