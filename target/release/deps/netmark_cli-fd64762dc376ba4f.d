/root/repo/target/release/deps/netmark_cli-fd64762dc376ba4f.d: crates/cli/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libnetmark_cli-fd64762dc376ba4f.rmeta: crates/cli/src/lib.rs Cargo.toml

crates/cli/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
