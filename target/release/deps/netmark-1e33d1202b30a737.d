/root/repo/target/release/deps/netmark-1e33d1202b30a737.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/release/deps/libnetmark-1e33d1202b30a737.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
