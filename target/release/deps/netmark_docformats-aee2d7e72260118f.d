/root/repo/target/release/deps/netmark_docformats-aee2d7e72260118f.d: crates/docformats/src/lib.rs crates/docformats/src/canonical.rs crates/docformats/src/detect.rs crates/docformats/src/html.rs crates/docformats/src/pdoc.rs crates/docformats/src/plaintext.rs crates/docformats/src/sdoc.rs crates/docformats/src/spreadsheet.rs crates/docformats/src/wdoc.rs

/root/repo/target/release/deps/libnetmark_docformats-aee2d7e72260118f.rlib: crates/docformats/src/lib.rs crates/docformats/src/canonical.rs crates/docformats/src/detect.rs crates/docformats/src/html.rs crates/docformats/src/pdoc.rs crates/docformats/src/plaintext.rs crates/docformats/src/sdoc.rs crates/docformats/src/spreadsheet.rs crates/docformats/src/wdoc.rs

/root/repo/target/release/deps/libnetmark_docformats-aee2d7e72260118f.rmeta: crates/docformats/src/lib.rs crates/docformats/src/canonical.rs crates/docformats/src/detect.rs crates/docformats/src/html.rs crates/docformats/src/pdoc.rs crates/docformats/src/plaintext.rs crates/docformats/src/sdoc.rs crates/docformats/src/spreadsheet.rs crates/docformats/src/wdoc.rs

crates/docformats/src/lib.rs:
crates/docformats/src/canonical.rs:
crates/docformats/src/detect.rs:
crates/docformats/src/html.rs:
crates/docformats/src/pdoc.rs:
crates/docformats/src/plaintext.rs:
crates/docformats/src/sdoc.rs:
crates/docformats/src/spreadsheet.rs:
crates/docformats/src/wdoc.rs:
