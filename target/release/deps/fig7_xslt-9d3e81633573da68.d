/root/repo/target/release/deps/fig7_xslt-9d3e81633573da68.d: crates/bench/src/bin/fig7_xslt.rs

/root/repo/target/release/deps/fig7_xslt-9d3e81633573da68: crates/bench/src/bin/fig7_xslt.rs

crates/bench/src/bin/fig7_xslt.rs:
