/root/repo/target/release/deps/netmark_federation-ce2f296620e7a42f.d: crates/federation/src/lib.rs crates/federation/src/adapter.rs crates/federation/src/databank.rs crates/federation/src/matcher.rs crates/federation/src/serve.rs Cargo.toml

/root/repo/target/release/deps/libnetmark_federation-ce2f296620e7a42f.rmeta: crates/federation/src/lib.rs crates/federation/src/adapter.rs crates/federation/src/databank.rs crates/federation/src/matcher.rs crates/federation/src/serve.rs Cargo.toml

crates/federation/src/lib.rs:
crates/federation/src/adapter.rs:
crates/federation/src/databank.rs:
crates/federation/src/matcher.rs:
crates/federation/src/serve.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
