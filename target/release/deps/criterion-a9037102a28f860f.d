/root/repo/target/release/deps/criterion-a9037102a28f860f.d: crates/shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-a9037102a28f860f.rmeta: crates/shims/criterion/src/lib.rs

crates/shims/criterion/src/lib.rs:
