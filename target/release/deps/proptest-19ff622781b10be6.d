/root/repo/target/release/deps/proptest-19ff622781b10be6.d: crates/shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-19ff622781b10be6.rmeta: crates/shims/proptest/src/lib.rs

crates/shims/proptest/src/lib.rs:
