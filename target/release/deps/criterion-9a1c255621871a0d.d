/root/repo/target/release/deps/criterion-9a1c255621871a0d.d: crates/shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-9a1c255621871a0d.rlib: crates/shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-9a1c255621871a0d.rmeta: crates/shims/criterion/src/lib.rs

crates/shims/criterion/src/lib.rs:
