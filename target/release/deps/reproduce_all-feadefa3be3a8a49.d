/root/repo/target/release/deps/reproduce_all-feadefa3be3a8a49.d: crates/bench/src/bin/reproduce_all.rs Cargo.toml

/root/repo/target/release/deps/libreproduce_all-feadefa3be3a8a49.rmeta: crates/bench/src/bin/reproduce_all.rs Cargo.toml

crates/bench/src/bin/reproduce_all.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
