/root/repo/target/release/deps/netmark_textindex-a4881564655ad196.d: crates/textindex/src/lib.rs crates/textindex/src/index.rs crates/textindex/src/postings.rs crates/textindex/src/tokenize.rs Cargo.toml

/root/repo/target/release/deps/libnetmark_textindex-a4881564655ad196.rmeta: crates/textindex/src/lib.rs crates/textindex/src/index.rs crates/textindex/src/postings.rs crates/textindex/src/tokenize.rs Cargo.toml

crates/textindex/src/lib.rs:
crates/textindex/src/index.rs:
crates/textindex/src/postings.rs:
crates/textindex/src/tokenize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
