/root/repo/target/release/deps/sec4_top_employees-728387a16d3bdc18.d: crates/bench/src/bin/sec4_top_employees.rs

/root/repo/target/release/deps/sec4_top_employees-728387a16d3bdc18: crates/bench/src/bin/sec4_top_employees.rs

crates/bench/src/bin/sec4_top_employees.rs:
