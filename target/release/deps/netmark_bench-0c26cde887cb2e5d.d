/root/repo/target/release/deps/netmark_bench-0c26cde887cb2e5d.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libnetmark_bench-0c26cde887cb2e5d.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libnetmark_bench-0c26cde887cb2e5d.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
