/root/repo/target/release/deps/sec4_top_employees-624db48977644db1.d: crates/bench/src/bin/sec4_top_employees.rs

/root/repo/target/release/deps/sec4_top_employees-624db48977644db1: crates/bench/src/bin/sec4_top_employees.rs

crates/bench/src/bin/sec4_top_employees.rs:
