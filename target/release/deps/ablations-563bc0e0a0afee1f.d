/root/repo/target/release/deps/ablations-563bc0e0a0afee1f.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-563bc0e0a0afee1f: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
