/root/repo/target/release/deps/sec4_top_employees-dfaf62d62da5ea48.d: crates/bench/src/bin/sec4_top_employees.rs Cargo.toml

/root/repo/target/release/deps/libsec4_top_employees-dfaf62d62da5ea48.rmeta: crates/bench/src/bin/sec4_top_employees.rs Cargo.toml

crates/bench/src/bin/sec4_top_employees.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
