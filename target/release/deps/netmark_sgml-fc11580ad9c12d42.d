/root/repo/target/release/deps/netmark_sgml-fc11580ad9c12d42.d: crates/sgml/src/lib.rs crates/sgml/src/config.rs crates/sgml/src/parser.rs crates/sgml/src/tokenizer.rs

/root/repo/target/release/deps/libnetmark_sgml-fc11580ad9c12d42.rlib: crates/sgml/src/lib.rs crates/sgml/src/config.rs crates/sgml/src/parser.rs crates/sgml/src/tokenizer.rs

/root/repo/target/release/deps/libnetmark_sgml-fc11580ad9c12d42.rmeta: crates/sgml/src/lib.rs crates/sgml/src/config.rs crates/sgml/src/parser.rs crates/sgml/src/tokenizer.rs

crates/sgml/src/lib.rs:
crates/sgml/src/config.rs:
crates/sgml/src/parser.rs:
crates/sgml/src/tokenizer.rs:
