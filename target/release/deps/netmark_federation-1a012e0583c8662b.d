/root/repo/target/release/deps/netmark_federation-1a012e0583c8662b.d: crates/federation/src/lib.rs crates/federation/src/adapter.rs crates/federation/src/client.rs crates/federation/src/databank.rs crates/federation/src/matcher.rs crates/federation/src/remote.rs crates/federation/src/serve.rs

/root/repo/target/release/deps/libnetmark_federation-1a012e0583c8662b.rlib: crates/federation/src/lib.rs crates/federation/src/adapter.rs crates/federation/src/client.rs crates/federation/src/databank.rs crates/federation/src/matcher.rs crates/federation/src/remote.rs crates/federation/src/serve.rs

/root/repo/target/release/deps/libnetmark_federation-1a012e0583c8662b.rmeta: crates/federation/src/lib.rs crates/federation/src/adapter.rs crates/federation/src/client.rs crates/federation/src/databank.rs crates/federation/src/matcher.rs crates/federation/src/remote.rs crates/federation/src/serve.rs

crates/federation/src/lib.rs:
crates/federation/src/adapter.rs:
crates/federation/src/client.rs:
crates/federation/src/databank.rs:
crates/federation/src/matcher.rs:
crates/federation/src/remote.rs:
crates/federation/src/serve.rs:
