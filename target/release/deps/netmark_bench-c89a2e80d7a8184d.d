/root/repo/target/release/deps/netmark_bench-c89a2e80d7a8184d.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libnetmark_bench-c89a2e80d7a8184d.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
