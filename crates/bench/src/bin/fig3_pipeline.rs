//! FIG3 — Figs 2–3: the ingestion pipeline (drop folder → daemon → SGML
//! parser → schema-less store).
//!
//! The architecture figures are functional, not quantitative; this harness
//! measures the pipeline they depict: end-to-end ingestion throughput for
//! a mixed-format corpus, and the drop-folder daemon variant at one size.

use netmark_bench::{banner, fmt_dur, time, TableWriter, TempDir};
use netmark_corpus::{mixed, CorpusConfig};
use netmark::NetMark;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    banner(
        "FIG3",
        "Figs 2–3 — NETMARK system architecture and process flow",
        "documents of any format are picked up, converted to XML, and \
         stored schema-less; NETMARK is a 'scalable, fast' framework",
    );
    let mut t = TableWriter::new(&[
        "docs",
        "bytes",
        "nodes stored",
        "ingest wall",
        "docs/s",
        "nodes/s",
        "MB/s",
    ]);
    for &n in &[100usize, 400, 1600] {
        let docs = mixed(&CorpusConfig::sized(n));
        let bytes: usize = docs.iter().map(|d| d.content.len()).sum();
        let scratch = TempDir::new("fig3");
        let (nodes, wall) = time(|| {
            let nm = NetMark::open(scratch.path()).expect("open");
            for d in &docs {
                nm.insert_file(&d.name, &d.content).expect("ingest");
            }
            nm.stats().expect("stats").nodes
        });
        let secs = wall.as_secs_f64();
        t.row(&[
            docs.len().to_string(),
            bytes.to_string(),
            nodes.to_string(),
            fmt_dur(wall),
            format!("{:.0}", docs.len() as f64 / secs),
            format!("{:.0}", nodes as f64 / secs),
            format!("{:.2}", bytes as f64 / secs / 1e6),
        ]);
    }
    t.print();

    // Drop-folder variant: the full Fig-3 path including the daemon.
    let scratch = TempDir::new("fig3-daemon");
    let drop_dir = scratch.join("dropbox");
    std::fs::create_dir_all(&drop_dir).expect("mkdir");
    let docs = mixed(&CorpusConfig::sized(200));
    for d in &docs {
        std::fs::write(drop_dir.join(&d.name), &d.content).expect("write");
    }
    let nm = Arc::new(NetMark::open(&scratch.join("store")).expect("open"));
    let ((), wall) = time(|| {
        let daemon =
            netmark_webdav::watch_folder(Arc::clone(&nm), &drop_dir, Duration::from_millis(5));
        while daemon.stats().ingested < docs.len() as u64 {
            std::thread::sleep(Duration::from_millis(5));
        }
        daemon.stop();
    });
    println!(
        "\ndrop-folder daemon: {} files picked up and ingested in {} \
         ({:.0} docs/s end to end)",
        docs.len(),
        fmt_dur(wall),
        docs.len() as f64 / wall.as_secs_f64()
    );
    println!(
        "\nreading: per-document cost stays within ~1.5x across a 16x corpus \
         growth (the drift is index-depth and buffer-pool pressure, not \
         schema work — none exists to amortize), which is the 'economically \
         scalable' ingestion the architecture promises."
    );
}
