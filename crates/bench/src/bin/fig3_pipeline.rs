//! FIG3 — Figs 2–3: the ingestion pipeline (drop folder → daemon → SGML
//! parser → schema-less store).
//!
//! The architecture figures are functional, not quantitative; this harness
//! measures the pipeline they depict two ways:
//!
//! 1. sequential per-file ingestion across corpus sizes (cost scaling);
//! 2. the staged pipeline (parallel upmark workers → batched store
//!    transactions → WAL group commit) head-to-head against the
//!    sequential path on a 5k mixed corpus with durable commits
//!    (`sync_commits = true`), with per-stage wall time, batch sizes, and
//!    fsyncs saved.
//!
//! The head-to-head paths each run in a fresh subprocess (`--seq` /
//! `--pipe` self-invocations): a few hundred MB of prior writes leave
//! enough allocator and page-cache residue to skew whichever path runs
//! second by 20–70% on small machines.

use netmark::{ingest_files, NetMark, NetMarkOptions, PipelineConfig, PipelineStats, RawFile};
use netmark_bench::{banner, fmt_dur, time, TableWriter, TempDir};
use netmark_corpus::{mixed, CorpusConfig};
use netmark_relstore::WalStats;
use std::sync::Arc;
use std::time::Duration;

const HEAD_TO_HEAD_DOCS: usize = 5000;

fn main() {
    match std::env::args().nth(1).as_deref() {
        Some("--seq") => return run_sequential(),
        Some("--pipe") => return run_pipeline(),
        _ => {}
    }

    banner(
        "FIG3",
        "Figs 2–3 — NETMARK system architecture and process flow",
        "documents of any format are picked up, converted to XML, and \
         stored schema-less; NETMARK is a 'scalable, fast' framework",
    );
    let mut t = TableWriter::new(&[
        "docs",
        "bytes",
        "nodes stored",
        "ingest wall",
        "docs/s",
        "nodes/s",
        "MB/s",
    ]);
    for &n in &[100usize, 400, 1600] {
        let docs = mixed(&CorpusConfig::sized(n));
        let bytes: usize = docs.iter().map(|d| d.content.len()).sum();
        let scratch = TempDir::new("fig3");
        let (nodes, wall) = time(|| {
            let nm = NetMark::open(scratch.path()).expect("open");
            for d in &docs {
                nm.insert_file(&d.name, &d.content).expect("ingest");
            }
            nm.stats().expect("stats").nodes
        });
        let secs = wall.as_secs_f64();
        t.row(&[
            docs.len().to_string(),
            bytes.to_string(),
            nodes.to_string(),
            fmt_dur(wall),
            format!("{:.0}", docs.len() as f64 / secs),
            format!("{:.0}", nodes as f64 / secs),
            format!("{:.2}", bytes as f64 / secs / 1e6),
        ]);
    }
    t.print();

    // Staged pipeline vs sequential ingestion, 5k mixed corpus, durable
    // (fsync-on-commit) configuration on both sides. Each path runs in a
    // fresh subprocess so neither inherits the other's process state.
    let docs = mixed(&CorpusConfig::sized(HEAD_TO_HEAD_DOCS));
    let bytes: usize = docs.iter().map(|d| d.content.len()).sum();
    println!(
        "\nstaged pipeline vs sequential — {} docs, {:.1} MB, sync_commits=true",
        docs.len(),
        bytes as f64 / 1e6
    );

    let seq = self_invoke("--seq");
    let (seq_wall, seq_fsyncs) = parse_seq(&seq);
    let seq_docs_s = docs.len() as f64 / seq_wall.as_secs_f64();

    let pipe = self_invoke("--pipe");
    let stats = parse_pipe(&pipe);
    assert_eq!(
        stats.ingest.documents as usize,
        docs.len(),
        "all docs landed"
    );
    assert_eq!(stats.ingest.errors, 0, "no per-file failures");

    print_pipeline(
        &PipelineConfig::default(),
        &stats,
        seq_docs_s,
        seq_wall,
        seq_fsyncs,
    );

    // Drop-folder variant: the full Fig-3 path including the daemon, which
    // rides the same pipeline (one batched sweep per poll).
    let scratch = TempDir::new("fig3-daemon");
    let drop_dir = scratch.join("dropbox");
    std::fs::create_dir_all(&drop_dir).expect("mkdir");
    let docs = mixed(&CorpusConfig::sized(200));
    for d in &docs {
        std::fs::write(drop_dir.join(&d.name), &d.content).expect("write");
    }
    let nm = Arc::new(NetMark::open(&scratch.join("store")).expect("open"));
    let ((), wall) = time(|| {
        let daemon = netmark_webdav::watch_folder(nm.clone(), &drop_dir, Duration::from_millis(5));
        while daemon.stats().ingested < docs.len() as u64 {
            std::thread::sleep(Duration::from_millis(5));
        }
        daemon.stop();
    });
    println!(
        "\ndrop-folder daemon: {} files picked up and ingested in {} \
         ({:.0} docs/s end to end)",
        docs.len(),
        fmt_dur(wall),
        docs.len() as f64 / wall.as_secs_f64()
    );
    println!(
        "\nreading: per-document cost stays within ~1.5x across a 16x corpus \
         growth (the drift is index-depth and buffer-pool pressure, not \
         schema work — none exists to amortize); batching N documents per \
         transaction and sharing WAL fsyncs across a group-commit window \
         then recovers the per-commit durability tax, which is the \
         'economically scalable' ingestion the architecture promises. The \
         speedup is fsync-cost-bound: sequential pays one fsync per \
         document (~0.3-0.7ms on this container's storage), the pipeline \
         ~1 per 60-commit group. On 2005-era disks (5-10ms per fsync, the \
         paper's hardware) the same batching is a >10x wall-clock win."
    );
}

/// `--seq` subprocess: durable sequential ingest; one parseable line out.
fn run_sequential() {
    let docs = mixed(&CorpusConfig::sized(HEAD_TO_HEAD_DOCS));
    let scratch = TempDir::new("fig3-seq");
    let (fsyncs, wall) = time(|| {
        let nm = NetMark::open(scratch.path()).expect("open");
        for d in &docs {
            nm.insert_file(&d.name, &d.content).expect("ingest");
        }
        nm.wal_stats().syncs
    });
    println!("SEQ {} {}", wall.as_nanos(), fsyncs);
}

/// `--pipe` subprocess: staged pipeline ingest; one parseable line out.
fn run_pipeline() {
    let docs = mixed(&CorpusConfig::sized(HEAD_TO_HEAD_DOCS));
    let scratch = TempDir::new("fig3-pipe");
    let mut opts = NetMarkOptions::default();
    opts.db.group_commit_window = Duration::from_millis(20);
    let nm = NetMark::open_with(scratch.path(), opts).expect("open");
    let files: Vec<RawFile> = docs
        .iter()
        .map(|d| RawFile::new(d.name.clone(), d.content.clone()))
        .collect();
    let cfg = PipelineConfig::default();
    let s = ingest_files(&nm, files, &cfg).expect("pipeline ingest");
    println!(
        "PIPE {} {} {} {} {} {} {} {} {} {} {} {}",
        s.elapsed.as_nanos(),
        s.files_in,
        s.ingest.documents,
        s.ingest.nodes,
        s.ingest.batches,
        s.ingest.errors,
        s.ingest.max_queue_depth,
        s.ingest.upmark_time.as_nanos(),
        s.ingest.store_time.as_nanos(),
        s.ingest.index_time.as_nanos(),
        s.wal.commits,
        s.wal.syncs,
    );
}

fn self_invoke(arg: &str) -> String {
    let exe = std::env::current_exe().expect("current exe");
    let out = std::process::Command::new(exe)
        .arg(arg)
        .output()
        .expect("spawn self");
    assert!(
        out.status.success(),
        "{arg} subprocess failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 output")
}

fn parse_seq(out: &str) -> (Duration, u64) {
    let f = fields(out, "SEQ", 2);
    (Duration::from_nanos(f[0]), f[1])
}

fn parse_pipe(out: &str) -> PipelineStats {
    let f = fields(out, "PIPE", 12);
    PipelineStats {
        elapsed: Duration::from_nanos(f[0]),
        files_in: f[1] as usize,
        ingest: netmark::IngestStats {
            documents: f[2],
            nodes: f[3],
            batches: f[4],
            errors: f[5],
            max_queue_depth: f[6],
            upmark_time: Duration::from_nanos(f[7]),
            store_time: Duration::from_nanos(f[8]),
            index_time: Duration::from_nanos(f[9]),
        },
        wal: WalStats {
            commits: f[10],
            syncs: f[11],
        },
    }
}

fn fields(out: &str, tag: &str, n: usize) -> Vec<u64> {
    let line = out
        .lines()
        .find(|l| l.starts_with(tag))
        .unwrap_or_else(|| panic!("no {tag} line in subprocess output: {out}"));
    let f: Vec<u64> = line
        .split_whitespace()
        .skip(1)
        .map(|v| v.parse().expect("numeric field"))
        .collect();
    assert_eq!(f.len(), n, "malformed {tag} line: {line}");
    f
}

fn print_pipeline(
    cfg: &PipelineConfig,
    stats: &PipelineStats,
    seq_docs_s: f64,
    seq_wall: Duration,
    seq_fsyncs: u64,
) {
    let mut t = TableWriter::new(&["path", "wall", "docs/s", "nodes/s", "wal fsyncs"]);
    t.row(&[
        "sequential".into(),
        fmt_dur(seq_wall),
        format!("{seq_docs_s:.0}"),
        "-".into(),
        seq_fsyncs.to_string(),
    ]);
    t.row(&[
        format!("pipeline ({}w x {} docs/txn)", cfg.workers, cfg.batch_docs),
        fmt_dur(stats.elapsed),
        format!("{:.0}", stats.docs_per_sec()),
        format!("{:.0}", stats.nodes_per_sec()),
        stats.wal.syncs.to_string(),
    ]);
    t.print();

    println!(
        "per-stage wall: upmark {} | store {} | index {}",
        fmt_dur(stats.ingest.upmark_time),
        fmt_dur(stats.ingest.store_time),
        fmt_dur(stats.ingest.index_time),
    );
    println!(
        "batches: {} (mean {:.1} docs/txn), max queue depth {}, fsyncs saved {}",
        stats.ingest.batches,
        stats.ingest.mean_batch_size(),
        stats.ingest.max_queue_depth,
        stats.fsyncs_saved(),
    );
    println!(
        "speedup: {:.1}x documents/sec over sequential ingestion",
        stats.docs_per_sec() / seq_docs_s
    );
}
