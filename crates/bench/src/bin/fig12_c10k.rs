//! FIG12 — C10k on the bounded front end: 10k concurrent keep-alive
//! clients against one NETMARK server, without an async runtime.
//!
//! Not a figure from the paper: NETMARK's production claim ("hundreds of
//! users … JPL, other NASA centers", §4) implies an access server that
//! survives concurrency, and the reproduction's old thread-per-connection
//! loop did not — every idle keep-alive client held an OS thread, and
//! over capacity it queued without bound. This harness pins the new
//! front end's two promises:
//!
//! 1. **Capacity** — N keep-alive clients (default 10 000) all connect
//!    and stay connected; measurement rounds issue requests over every
//!    connection. Acceptance: bounded p99, **zero** sheds, zero accept
//!    errors — idle connections cost an fd and a parking-lot slot, not a
//!    thread.
//! 2. **Overload** — a second server with deliberately tiny caps
//!    (`max_conns` 64) takes a connect storm 4× its capacity.
//!    Acceptance: the surplus is shed with `429` + `Retry-After` (never
//!    a hang, never an unbounded queue), admitted clients are still
//!    served, and the sheds are visible in `GET /xdb/stats`.
//!
//! The server runs as a subprocess (`FIG12_ROLE=server`) so client and
//! server draw on separate fd budgets; the parent drives the phases and
//! scrapes `/xdb/stats` over the wire like an operator would.
//!
//! `FIG12_CLIENTS` overrides the phase-1 population (CI smoke uses 500);
//! `FIG12_ROUNDS` the measurement rounds per phase.

use netmark::NetMark;
use netmark_bench::{banner, fmt_dur, percentile, TableWriter, TempDir};
use netmark_webdav::{serve_with, FrontendConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

fn env_num(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Soft `RLIMIT_NOFILE`, read the portable-enough way.
fn fd_limit() -> usize {
    std::fs::read_to_string("/proc/self/limits")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Max open files"))
                .and_then(|l| l.split_whitespace().nth(3))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(1024)
}

// ------------------------------------------------------------ server role

/// The subprocess: bring up a real server, print the address, serve
/// until the parent closes our stdin.
fn run_server() {
    let dir = TempDir::new("fig12-server");
    let nm = std::sync::Arc::new(NetMark::open(dir.path()).unwrap());
    for i in 0..8 {
        nm.insert_file(
            &format!("doc{i}.txt"),
            &format!("# Budget\nproject {i} shuttle funding\n"),
        )
        .unwrap();
    }
    let cfg = FrontendConfig {
        workers: env_num("FIG12_WORKERS", 8),
        queue_depth: env_num("FIG12_QUEUE_DEPTH", 1024),
        max_conns: env_num("FIG12_MAX_CONNS", 8192),
        max_per_client: usize::MAX, // every client shares 127.0.0.1
        idle_timeout: Duration::from_secs(env_num("FIG12_IDLE_SECS", 600) as u64),
        poll_interval: Duration::from_millis(env_num("FIG12_POLL_MS", 10) as u64),
        retry_after: Duration::from_secs(1),
        ..FrontendConfig::default()
    };
    let h = serve_with(nm, "127.0.0.1:0", cfg).unwrap();
    println!("ADDR {}", h.addr());
    std::io::stdout().flush().unwrap();
    // Parent closing our stdin is the shutdown signal.
    let mut line = String::new();
    let _ = std::io::stdin().read_line(&mut line);
    h.stop();
}

/// Spawns the server subprocess with the given caps; returns the child
/// and its bound address.
fn spawn_server(env: &[(&str, String)]) -> (Child, SocketAddr) {
    let exe = std::env::current_exe().expect("current exe");
    let mut cmd = Command::new(exe);
    cmd.env("FIG12_ROLE", "server")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped());
    for (k, v) in env {
        cmd.env(k, v);
    }
    let mut child = cmd.spawn().expect("spawn server subprocess");
    let stdout = child.stdout.take().expect("child stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = lines
        .next()
        .expect("server printed nothing")
        .expect("read server stdout")
        .strip_prefix("ADDR ")
        .expect("ADDR line")
        .parse()
        .expect("server address");
    (child, addr)
}

fn stop_server(mut child: Child) {
    drop(child.stdin.take()); // EOF → clean server shutdown
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match child.try_wait() {
            Ok(Some(_)) => return,
            Ok(None) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(50)),
            _ => {
                let _ = child.kill();
                let _ = child.wait();
                return;
            }
        }
    }
}

// ------------------------------------------------------------ client side

/// One framed keep-alive GET on an open connection; returns the full
/// response text.
fn get(s: &mut TcpStream, path: &str) -> std::io::Result<String> {
    write!(s, "GET {path} HTTP/1.1\r\n\r\n")?;
    read_response(s)
}

fn read_response(s: &mut TcpStream) -> std::io::Result<String> {
    s.set_read_timeout(Some(Duration::from_secs(30)))?;
    let mut raw = Vec::new();
    let mut byte = [0u8; 1];
    while !raw.ends_with(b"\r\n\r\n") {
        let n = s.read(&mut byte)?;
        if n == 0 {
            return Err(std::io::Error::other("closed mid-headers"));
        }
        raw.push(byte[0]);
    }
    let head = String::from_utf8_lossy(&raw).to_string();
    let len: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0);
    let mut body = vec![0u8; len];
    s.read_exact(&mut body)?;
    Ok(head + &String::from_utf8_lossy(&body))
}

/// Reads the named counter attribute out of the `<server …/>` element of
/// a `/xdb/stats` document.
fn server_counter(stats_doc: &str, attr: &str) -> u64 {
    let server = stats_doc
        .split("<server ")
        .nth(1)
        .unwrap_or_else(|| panic!("stats document has no <server/> element: {stats_doc}"));
    server
        .split(&format!("{attr}=\""))
        .nth(1)
        .and_then(|rest| rest.split('"').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no {attr} counter in <server/>: {stats_doc}"))
}

fn scrape_stats(addr: SocketAddr) -> String {
    let mut s = TcpStream::connect(addr).expect("stats connection");
    get(&mut s, "/xdb/stats").expect("stats request")
}

/// Phase 1: `clients` keep-alive connections held open at once;
/// `rounds` measurement passes issue one request per connection per
/// round from a small pool of driver threads.
fn phase_capacity(addr: SocketAddr, clients: usize, rounds: usize, table: &mut TableWriter) {
    let drivers = 16usize;
    let conns: Mutex<Vec<TcpStream>> = Mutex::new(Vec::with_capacity(clients));
    let failures = AtomicUsize::new(0);

    // Connect storm, paced across driver threads. Every connection
    // proves itself with one request, then stays open and idle.
    let connect_started = Instant::now();
    std::thread::scope(|scope| {
        for d in 0..drivers {
            let conns = &conns;
            let failures = &failures;
            let share = clients / drivers + usize::from(d < clients % drivers);
            scope.spawn(move || {
                let mut local = Vec::with_capacity(share);
                for i in 0..share {
                    match TcpStream::connect(addr) {
                        Ok(mut s) => {
                            if get(&mut s, "/xdb/capabilities").is_ok() {
                                local.push(s);
                            } else {
                                failures.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(_) => {
                            failures.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    if i % 64 == 63 {
                        // Pace: don't outrun the accept backlog.
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
                conns.lock().unwrap().append(&mut local);
            });
        }
    });
    let mut conns = conns.into_inner().unwrap();
    let connect_elapsed = connect_started.elapsed();
    assert_eq!(
        failures.load(Ordering::Relaxed),
        0,
        "connections failed during the storm"
    );
    assert_eq!(conns.len(), clients);
    println!(
        "  {} keep-alive connections established in {} (all held open)",
        conns.len(),
        fmt_dur(connect_elapsed)
    );

    // Measurement rounds over the standing population.
    for round in 0..rounds {
        let lats: Mutex<Vec<Duration>> = Mutex::new(Vec::with_capacity(clients));
        let round_started = Instant::now();
        std::thread::scope(|scope| {
            let chunk = conns.len() / drivers + 1;
            for part in conns.chunks_mut(chunk) {
                let lats = &lats;
                let failures = &failures;
                scope.spawn(move || {
                    let mut local = Vec::with_capacity(part.len());
                    for s in part {
                        let started = Instant::now();
                        match get(s, "/xdb/stats") {
                            Ok(resp) if resp.starts_with("HTTP/1.1 200") => {
                                local.push(started.elapsed())
                            }
                            _ => {
                                failures.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    lats.lock().unwrap().append(&mut local);
                });
            }
        });
        let mut lats = lats.into_inner().unwrap();
        lats.sort();
        let round_elapsed = round_started.elapsed();
        table.row(&[
            format!("capacity r{}", round + 1),
            conns.len().to_string(),
            lats.len().to_string(),
            fmt_dur(percentile(&mut lats, 0.50)),
            fmt_dur(percentile(&mut lats, 0.99)),
            fmt_dur(*lats.last().unwrap()),
            fmt_dur(round_elapsed),
        ]);
        assert_eq!(failures.load(Ordering::Relaxed), 0, "requests failed");
        // Bounded p99: generous — the point is "seconds, not minutes or
        // a hang", on a box where every driver shares one core with the
        // server.
        assert!(
            percentile(&mut lats, 0.99) < Duration::from_secs(10),
            "p99 unbounded under C10k"
        );
    }

    let stats = scrape_stats(addr);
    let sheds = server_counter(&stats, "shed");
    let accept_errors = server_counter(&stats, "accept-errors");
    let parked = server_counter(&stats, "parked");
    println!(
        "  server: shed={sheds} accept-errors={accept_errors} parked={parked} \
         active={}",
        server_counter(&stats, "active")
    );
    assert_eq!(sheds, 0, "capacity phase must not shed");
    assert_eq!(accept_errors, 0, "accept loop stalled (EMFILE?)");
    drop(conns);
}

/// Phase 2: a connect storm 4× the tiny server's capacity. Surplus
/// connections must see a prompt `429` with `Retry-After`; admitted ones
/// must still be served.
fn phase_overload(addr: SocketAddr, capacity: usize, table: &mut TableWriter) {
    let storm = capacity * 4;
    let served = AtomicUsize::new(0);
    let shed = AtomicUsize::new(0);
    let broken = AtomicUsize::new(0);
    let shed_lats: Mutex<Vec<Duration>> = Mutex::new(Vec::new());
    let started = Instant::now();

    std::thread::scope(|scope| {
        for _ in 0..16 {
            let (served, shed, broken, shed_lats) = (&served, &shed, &broken, &shed_lats);
            scope.spawn(move || {
                let mut held = Vec::new();
                while served.load(Ordering::Relaxed)
                    + shed.load(Ordering::Relaxed)
                    + broken.load(Ordering::Relaxed)
                    < storm
                {
                    let t0 = Instant::now();
                    let Ok(mut s) = TcpStream::connect(addr) else {
                        broken.fetch_add(1, Ordering::Relaxed);
                        continue;
                    };
                    // An admitted connection yields a 200; a shed one
                    // gets the canned 429 and a server-side close.
                    match get(&mut s, "/xdb/capabilities") {
                        Ok(resp) if resp.starts_with("HTTP/1.1 200") => {
                            served.fetch_add(1, Ordering::Relaxed);
                            held.push(s); // hold the slot: keep pressure on
                        }
                        Ok(resp) if resp.starts_with("HTTP/1.1 429") => {
                            assert!(
                                resp.contains("Retry-After:"),
                                "shed response missing Retry-After: {resp}"
                            );
                            shed.fetch_add(1, Ordering::Relaxed);
                            shed_lats.lock().unwrap().push(t0.elapsed());
                        }
                        _ => {
                            broken.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                drop(held);
            });
        }
    });

    let mut lats = shed_lats.into_inner().unwrap();
    lats.sort();
    let sheds_seen = shed.load(Ordering::Relaxed);
    table.row(&[
        "overload".to_string(),
        storm.to_string(),
        format!("{} served", served.load(Ordering::Relaxed)),
        format!("{sheds_seen} shed"),
        if lats.is_empty() {
            "-".to_string()
        } else {
            fmt_dur(percentile(&mut lats, 0.99))
        },
        format!("{} broken", broken.load(Ordering::Relaxed)),
        fmt_dur(started.elapsed()),
    ]);

    assert!(sheds_seen > 0, "overload phase never shed");
    assert!(served.load(Ordering::Relaxed) > 0, "nobody was served");
    if let Some(p99) = (!lats.is_empty()).then(|| percentile(&mut lats, 0.99)) {
        // A shed is the *cheap* path: the answer must come back fast
        // even while the server is saturated.
        assert!(p99 < Duration::from_secs(5), "sheds were slow: {p99:?}");
    }

    // The storm is over (held slots released above); the stats endpoint
    // answers, and the sheds are on the operator's dashboard.
    let deadline = Instant::now() + Duration::from_secs(10);
    let sheds_reported = loop {
        let mut s = match TcpStream::connect(addr) {
            Ok(s) => s,
            Err(_) => {
                assert!(Instant::now() < deadline, "stats endpoint unreachable");
                std::thread::sleep(Duration::from_millis(100));
                continue;
            }
        };
        match get(&mut s, "/xdb/stats") {
            Ok(resp) if resp.starts_with("HTTP/1.1 200") => {
                break server_counter(&resp, "shed");
            }
            _ => {
                assert!(Instant::now() < deadline, "stats endpoint kept shedding");
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    };
    println!("  server reports shed={sheds_reported} via /xdb/stats");
    assert!(sheds_reported as usize >= sheds_seen.min(1));
}

fn main() {
    if std::env::var("FIG12_ROLE").as_deref() == Ok("server") {
        run_server();
        return;
    }

    banner(
        "FIG12",
        "C10k on the bounded front end (not a paper figure)",
        "hundreds of concurrent users are served by lean middleware: idle \
         keep-alive clients cost an fd, not a thread; overload sheds with \
         429 + Retry-After instead of queueing unboundedly (§4)",
    );

    let requested = env_num("FIG12_CLIENTS", 10_000);
    // The parent needs one fd per client plus slack for the harness.
    let clients = requested.min(fd_limit().saturating_sub(512));
    if clients < requested {
        println!("  (fd limit clamps clients: {requested} requested → {clients})");
    }
    let rounds = env_num("FIG12_ROUNDS", 2);

    let mut table = TableWriter::new(&[
        "phase", "clients", "requests", "p50", "p99", "max", "elapsed",
    ]);

    // Phase 1: capacity-sized server.
    let (child, addr) = spawn_server(&[
        ("FIG12_MAX_CONNS", format!("{}", clients + 64)),
        ("FIG12_QUEUE_DEPTH", format!("{}", clients + 64)),
        // Sweeping a 10k-connection lot takes a while on one core; a
        // coarser cadence keeps the poller from monopolizing it.
        ("FIG12_POLL_MS", "25".to_string()),
    ]);
    phase_capacity(addr, clients, rounds, &mut table);
    stop_server(child);

    // Phase 2: deliberately tiny server.
    let capacity = 64;
    let (child, addr) = spawn_server(&[
        ("FIG12_MAX_CONNS", capacity.to_string()),
        ("FIG12_QUEUE_DEPTH", "16".to_string()),
        ("FIG12_WORKERS", "4".to_string()),
    ]);
    phase_overload(addr, capacity, &mut table);
    stop_server(child);

    println!();
    table.print();
    println!();
    println!(
        "fig12: {clients} keep-alive clients held concurrently, p99 bounded, \
         overload shed with 429 + Retry-After"
    );
}
