//! SEC4 — the §4 related-work comparison, quantified.
//!
//! "Mediation frameworks such as MIX provide for defining such virtual
//! views and then simply querying the Top Employees (virtual) view. In
//! NETMARK we will end up asking three different queries … Note however
//! that the approach in MIX/Nimble absolutely requires us to formally
//! define schemas (source views) for the three information sources, define
//! a virtual 'Top Employees' view and specify the relationships."
//!
//! Measured: artifacts to set up, queries per question, latency per
//! question, and the same-answer check, on growing personnel data.

use netmark::{NetMark, XdbQuery};
use netmark_bench::{banner, fmt_dur, median_of, time, TableWriter, TempDir};
use netmark_corpus::personnel_csv;
use netmark_gav::{
    CmpOp, GValue, GlobalView, Mapping, Mediator, Predicate, RelationSchema, Source, ViewQuery,
};

const CENTERS: [&str; 3] = ["ames", "johnson", "kennedy"];

fn build_gav(csvs: &[netmark_corpus::RawDoc]) -> Mediator {
    let mut med = Mediator::new();
    med.register_source(
        Source::new("ames").with_relation(RelationSchema::new("personnel", &["name", "rating"])),
    )
    .expect("source");
    med.register_source(
        Source::new("johnson").with_relation(RelationSchema::new("staff", &["employee", "score"])),
    )
    .expect("source");
    med.register_source(
        Source::new("kennedy").with_relation(RelationSchema::new("people", &["who", "grade"])),
    )
    .expect("source");
    for (center, csv) in CENTERS.iter().zip(csvs) {
        let rows: Vec<Vec<GValue>> = csv
            .content
            .lines()
            .skip(1)
            .map(|l| {
                let (name, rating) = l.split_once(',').expect("two columns");
                let rating = rating
                    .parse::<f64>()
                    .map(GValue::Num)
                    .unwrap_or_else(|_| GValue::Text(rating.to_string()));
                vec![GValue::Text(name.to_string()), rating]
            })
            .collect();
        let rel = match *center {
            "johnson" => "staff",
            "kennedy" => "people",
            _ => "personnel",
        };
        med.load_rows(center, rel, rows).expect("load");
    }
    med.define_view(GlobalView {
        name: "TopEmployees".into(),
        columns: vec!["name".into()],
        mappings: vec![
            Mapping {
                source: "ames".into(),
                relation: "personnel".into(),
                selections: vec![Predicate::new("rating", CmpOp::Eq, "excellent")],
                projection: vec![Some("name".into())],
            },
            Mapping {
                source: "johnson".into(),
                relation: "staff".into(),
                selections: vec![Predicate::new("score", CmpOp::Le, 2.0)],
                projection: vec![Some("employee".into())],
            },
            Mapping {
                source: "kennedy".into(),
                relation: "people".into(),
                selections: vec![Predicate::new("grade", CmpOp::Eq, "very good")],
                projection: vec![Some("who".into())],
            },
        ],
    })
    .expect("view");
    med
}

type RowFilter = fn(&str) -> bool;

fn netmark_top(nm: &NetMark) -> Vec<String> {
    let mut names = Vec::new();
    let specs: Vec<(XdbQuery, RowFilter)> = vec![
        (
            XdbQuery::context_content("ames-personnel", "excellent"),
            |row| row.contains("excellent"),
        ),
        (XdbQuery::context("johnson-personnel"), |row| {
            matches!(row.rsplit(' ').next(), Some("1" | "2"))
        }),
        (
            XdbQuery::context_content("kennedy-personnel", "very good"),
            |row| row.contains("very good"),
        ),
    ];
    for (q, keep) in &specs {
        for hit in &nm.query(q).expect("query").hits {
            for row in hit.content.find_all("row") {
                let text = row.text_content();
                if keep(&text) {
                    names.push(text.split_whitespace().next().unwrap_or("").to_string());
                }
            }
        }
    }
    names
}

fn main() {
    banner(
        "SEC4",
        "§4 — 'Top Employees of NASA': GAV mediation vs NETMARK",
        "GAV: 1 virtual-view query but schemas+view+mappings must exist; \
         NETMARK: zero mapping artifacts but 3 queries (one per center); \
         both give the same answer",
    );
    let mut t = TableWriter::new(&[
        "employees/center",
        "approach",
        "setup artifacts",
        "setup time",
        "queries/question",
        "question latency",
        "answers",
    ]);
    for &n in &[30usize, 300, 3000] {
        let csvs: Vec<_> = CENTERS.iter().map(|c| personnel_csv(c, n, 99)).collect();

        // GAV side.
        let (med, setup_gav) = time(|| build_gav(&csvs));
        let (rows, gav_lat) = median_of(5, || {
            med.query(&ViewQuery {
                view: "TopEmployees".into(),
                predicates: vec![],
                projection: vec![],
            })
            .expect("query")
            .1
        });
        t.row(&[
            n.to_string(),
            "GAV mediator".to_string(),
            format!("{} (3 schemas+3 mappings+1 view)", med.cost().total()),
            fmt_dur(setup_gav),
            "1".to_string(),
            fmt_dur(gav_lat),
            rows.len().to_string(),
        ]);

        // NETMARK side.
        let scratch = TempDir::new("sec4");
        let (nm, setup_nm) = time(|| {
            let nm = NetMark::open(scratch.path()).expect("open");
            for csv in &csvs {
                nm.insert_file(&csv.name, &csv.content).expect("ingest");
            }
            nm
        });
        let (mut nm_names, nm_lat) = median_of(5, || netmark_top(&nm));
        let mut gav_names: Vec<String> = rows.iter().map(|r| r[0].to_string()).collect();
        gav_names.sort();
        nm_names.sort();
        assert_eq!(gav_names, nm_names, "both approaches agree");
        t.row(&[
            n.to_string(),
            "NETMARK".to_string(),
            "0 (documents dropped in as-is)".to_string(),
            fmt_dur(setup_nm),
            "3".to_string(),
            fmt_dur(nm_lat),
            nm_names.len().to_string(),
        ]);
    }
    t.print();
    println!(
        "\nreading: the paper's stated trade-off reproduces exactly — GAV \
         answers with one query over its virtual view but carries 7 \
         schema/mapping artifacts that must exist (and be maintained) \
         beforehand; NETMARK carries zero artifacts and pays three queries \
         per question. Answers agree at every scale."
    );
}
