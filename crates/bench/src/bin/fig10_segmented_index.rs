//! FIG10 — the segmented snapshot text index: lock-free reads under
//! ingest, background compaction, incremental persistence.
//!
//! Not a figure from the paper: this measures the reproduction's own
//! index substrate. Four phases:
//!
//! 1. **Read latency under ingest** — reader threads execute a query mix
//!    while a writer ingests batches continuously. Baseline: the legacy
//!    single-map [`InvertedIndex`] behind a `std::sync::RwLock` (readers
//!    wait out every batch's write lock). Segmented: readers take a
//!    lock-free snapshot; commits publish new snapshots; a background
//!    compactor churns concurrently. Acceptance: segmented query p99 is
//!    ≥ 5x below the write-locked baseline.
//! 2. **Byte-identical results** — the same corpus through both shapes
//!    (with compaction churn on the segmented side) must answer every
//!    query shape identically.
//! 3. **Incremental persistence** — `save()` cost is proportional to
//!    newly sealed segments, not index size.
//! 4. **Compaction reclaims** — after a mass removal, compaction
//!    physically purges tombstoned postings and `byte_size()` shrinks.
//!
//! `FIG10_DOCS` overrides the corpus size and `FIG10_SECS` the phase-1
//! measurement window (CI smoke runs use small values).

use netmark_bench::{banner, fmt_dur, percentile, TableWriter, TempDir};
use netmark_textindex::{InvertedIndex, SegmentedIndex, TextQuery};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

const VOCAB: &[&str] = &[
    "shuttle",
    "engine",
    "budget",
    "schedule",
    "anomaly",
    "telemetry",
    "gap",
    "million",
    "risk",
    "apollo",
    "saturn",
    "harness",
    "inspection",
    "lesson",
    "center",
    "flight",
    "readiness",
    "orbit",
    "payload",
    "thermal",
];

/// Deterministic doc text: ~10 words drawn by a seeded LCG.
fn doc_text(seed: u64) -> String {
    let mut x = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let mut s = String::new();
    for i in 0..10 {
        if i > 0 {
            s.push(' ');
        }
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        s.push_str(VOCAB[(x >> 33) as usize % VOCAB.len()]);
    }
    s
}

fn query_mix() -> Vec<TextQuery> {
    let t = |w: &str| TextQuery::Term(w.to_string());
    vec![
        t("shuttle"),
        TextQuery::And(vec![t("engine"), t("budget")]),
        TextQuery::And(vec![t("shuttle"), t("engine"), t("telemetry")]),
        TextQuery::Or(vec![t("anomaly"), t("lesson")]),
        TextQuery::Not(Box::new(TextQuery::All), Box::new(t("gap"))),
        TextQuery::Phrase(vec!["engine".to_string(), "budget".to_string()]),
        TextQuery::Prefix("sch".to_string()),
    ]
}

/// Every query shape, for the identical-results assertion.
fn full_battery() -> Vec<TextQuery> {
    let t = |w: &str| TextQuery::Term(w.to_string());
    let mut qs = vec![TextQuery::All];
    for w in VOCAB {
        qs.push(t(w));
    }
    qs.extend(query_mix());
    qs.push(TextQuery::And(vec![TextQuery::All, t("orbit")]));
    qs.push(TextQuery::Or(vec![TextQuery::All, t("risk")]));
    qs.push(TextQuery::Not(
        Box::new(t("payload")),
        Box::new(t("thermal")),
    ));
    qs.push(TextQuery::Prefix("zz".to_string()));
    qs
}

/// Readers hammer `exec` with the query mix while `writer` runs; returns
/// all observed query latencies.
fn hammer_reads<W, E>(readers: usize, writer: W, exec: E) -> Vec<Duration>
where
    W: FnOnce() + Send,
    E: Fn(&TextQuery) -> usize + Sync,
{
    let queries = query_mix();
    let done = AtomicBool::new(false);
    let all = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..readers)
            .map(|r| {
                let queries = &queries;
                let done = &done;
                let all = &all;
                let exec = &exec;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    let mut i = r;
                    while !done.load(Ordering::Relaxed) {
                        let q = &queries[i % queries.len()];
                        let t = Instant::now();
                        let n = exec(q);
                        local.push(t.elapsed());
                        std::hint::black_box(n);
                        i += 1;
                    }
                    all.lock().unwrap().extend(local);
                })
            })
            .collect();
        writer();
        done.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().expect("reader");
        }
    });
    all.into_inner().unwrap()
}

fn main() {
    banner(
        "FIG10",
        "segmented snapshot text index",
        "readers take one atomic snapshot load and never block on ingest; \
         background compaction merges runs and purges tombstones; save() \
         writes only newly sealed segments",
    );
    let n: usize = std::env::var("FIG10_DOCS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000);
    let secs: u64 = std::env::var("FIG10_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    // Phase 1 is wall-clock-bounded, so the batch keeps a floor: small
    // smoke corpora must still produce real write-lock convoys in the
    // baseline.
    let batch = (n / 20).max(1000);
    let readers = 4;
    let window = Duration::from_secs(secs);
    println!("corpus: {n} docs, batch {batch}, {readers} readers, {secs}s/side\n");

    // ---- Phase 1: read latency under continuous batch ingest -----------
    let baseline = Arc::new(RwLock::new(InvertedIndex::new()));
    let mut base_lat = {
        let ix = Arc::clone(&baseline);
        hammer_reads(
            readers,
            || {
                let deadline = Instant::now() + window;
                let mut id = 1u64;
                while Instant::now() < deadline {
                    let mut w = ix.write().unwrap();
                    for _ in 0..batch {
                        w.add(id, &doc_text(id));
                        id += 1;
                    }
                    drop(w);
                    std::thread::sleep(Duration::from_micros(200));
                }
            },
            |q| baseline.read().unwrap().execute(q).len(),
        )
    };

    let seg = Arc::new(SegmentedIndex::new());
    let compactor = seg.start_compactor();
    let mut seg_lat = {
        let ix = Arc::clone(&seg);
        hammer_reads(
            readers,
            || {
                let deadline = Instant::now() + window;
                let mut id = 1u64;
                while Instant::now() < deadline {
                    for _ in 0..batch {
                        ix.add(id, &doc_text(id));
                        id += 1;
                    }
                    ix.commit();
                    std::thread::sleep(Duration::from_micros(200));
                }
            },
            |q| seg.snapshot().execute(q).len(),
        )
    };
    drop(compactor);

    let (bp50, bp99) = (
        percentile(&mut base_lat, 0.50),
        percentile(&mut base_lat, 0.99),
    );
    let (sp50, sp99) = (
        percentile(&mut seg_lat, 0.50),
        percentile(&mut seg_lat, 0.99),
    );
    let mut t = TableWriter::new(&["index", "queries", "p50", "p99", "docs ingested"]);
    t.row(&[
        "RwLock<InvertedIndex>".into(),
        base_lat.len().to_string(),
        fmt_dur(bp50),
        fmt_dur(bp99),
        baseline.read().unwrap().len().to_string(),
    ]);
    let seg_stats = seg.stats();
    t.row(&[
        "SegmentedIndex".into(),
        seg_lat.len().to_string(),
        fmt_dur(sp50),
        fmt_dur(sp99),
        seg_stats.docs.to_string(),
    ]);
    t.print();
    let p99_ratio = bp99.as_secs_f64() / sp99.as_secs_f64().max(1e-9);
    println!(
        "p99 ratio: {p99_ratio:.1}x  (segments={} seals={} compactions={})\n",
        seg_stats.segments, seg_stats.seals, seg_stats.compactions
    );

    // ---- Phase 2: byte-identical results over the same corpus ----------
    let reference = {
        let mut ix = InvertedIndex::new();
        for id in 1..=n as u64 {
            ix.add(id, &doc_text(id));
        }
        ix
    };
    let segmented = SegmentedIndex::new();
    for id in 1..=n as u64 {
        segmented.add(id, &doc_text(id));
        if id % batch as u64 == 0 {
            segmented.commit();
            // Interleave compaction with ingest, as the background thread
            // would.
            segmented.compact();
        }
    }
    segmented.commit();
    let battery = full_battery();
    for q in &battery {
        assert_eq!(
            segmented.execute(q),
            reference.execute(q),
            "segmented and reference answers diverge for {q:?}"
        );
    }
    assert_eq!(
        segmented.search_ranked("shuttle engine"),
        reference.search_ranked("shuttle engine")
    );
    println!(
        "identical results: {} query shapes byte-identical across {} docs",
        battery.len(),
        n
    );

    // ---- Phase 3: incremental persistence -------------------------------
    let scratch = TempDir::new("fig10");
    let dir = scratch.join("seg.idx.d");
    let r1 = segmented.save(&dir).expect("initial save");
    let mut id = n as u64;
    for _ in 0..batch {
        id += 1;
        segmented.add(id, &doc_text(id));
    }
    segmented.commit();
    let r2 = segmented.save(&dir).expect("incremental save");
    let mut t = TableWriter::new(&["save", "segments written", "bytes written", "live segments"]);
    t.row(&[
        "full (first)".into(),
        r1.segments_written.to_string(),
        r1.bytes_written.to_string(),
        r1.total_segments.to_string(),
    ]);
    t.row(&[
        "after one batch".into(),
        r2.segments_written.to_string(),
        r2.bytes_written.to_string(),
        r2.total_segments.to_string(),
    ]);
    t.print();
    assert!(
        r2.segments_written == 1 && r2.bytes_written < r1.bytes_written,
        "acceptance: save cost must track newly sealed segments, not index \
         size (first={} segs/{} bytes, incremental={} segs/{} bytes)",
        r1.segments_written,
        r1.bytes_written,
        r2.segments_written,
        r2.bytes_written
    );
    let reloaded = SegmentedIndex::load(&dir).expect("reload");
    assert_eq!(reloaded.len(), segmented.len(), "reload round-trips");

    // ---- Phase 4: compaction reclaims tombstoned postings ---------------
    let bytes_before = segmented.byte_size();
    let mut removed = 0u64;
    for dead in (1..=id).step_by(2) {
        if segmented.remove(dead) {
            removed += 1;
        }
    }
    segmented.commit();
    let passes = segmented.compact();
    let bytes_after = segmented.byte_size();
    let st = segmented.stats();
    println!(
        "\ncompaction: removed {removed} docs; {passes} passes purged {} ids, \
         {} postings; byte_size {} -> {} ({}% reclaimed); tombstones left: {}",
        st.ids_purged,
        st.postings_purged,
        bytes_before,
        bytes_after,
        100 * (bytes_before.saturating_sub(bytes_after)) / bytes_before.max(1),
        st.tombstones
    );
    assert!(
        bytes_after < bytes_before,
        "acceptance: compaction must reclaim tombstoned postings \
         ({bytes_before} -> {bytes_after})"
    );
    assert_eq!(st.tombstones, 0, "all tombstones physically purged");

    println!(
        "\nreading: the segmented index keeps query latency flat under \
         ingest because readers never take a lock — a commit seals the \
         memtable into an immutable segment and publishes a fresh snapshot \
         with one atomic store; the paper's \"documents are available for \
         querying the moment they are stored\" holds without a reader/writer \
         convoy."
    );
    assert!(
        p99_ratio >= 5.0,
        "acceptance: segmented p99 under ingest must be >= 5x below the \
         write-locked baseline (got {p99_ratio:.1}x)"
    );
}
