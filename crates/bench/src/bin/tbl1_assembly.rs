//! TBL1 — Table 1 "NASA integration applications".
//!
//! The paper reports human assembly times with NETMARK: Proposal Financial
//! Management — 1 hour; Risk Assessment — 1 day; Integrated Budget
//! Performance Document — 1 week; Anomaly Tracking — 1 day. We cannot
//! measure engineers; we *can* measure what the engineer must produce
//! (the declarative spec, in lines) and what the machine then does
//! (end-to-end assembly: ingest + configure + first integrated answer).
//! The paper's ordering — PFM cheapest, IBPD the most work — should
//! reproduce in both columns.

use netmark::{NetMark, XdbQuery};
use netmark_bench::{banner, fmt_dur, time, TableWriter, TempDir};
use netmark_corpus::{
    anomaly_reports, lessons_learned, proposals, risk_decks, task_plans, CorpusConfig,
};
use netmark_federation::{ContentOnlySource, NetmarkSource, Router};
use std::sync::Arc;
use std::time::Duration;

struct AppResult {
    name: &'static str,
    paper_time: &'static str,
    spec_lines: usize,
    docs: usize,
    answers: usize,
    assembly: Duration,
}

/// Proposal Financial Management: one corpus, two canned queries.
fn pfm(scratch: &TempDir) -> AppResult {
    let docs = proposals(&CorpusConfig::sized(40));
    // The "spec" is the two query URLs the application serves.
    let spec = ["Context=Budget", "Context=Cost+Details"];
    let ((), assembly) = time(|| {
        let nm = NetMark::open(&scratch.join("pfm")).expect("open");
        for d in &docs {
            nm.insert_file(&d.name, &d.content).expect("ingest");
        }
        for q in spec {
            nm.query_url(q).expect("query");
        }
    });
    let nm = NetMark::open(&scratch.join("pfm")).expect("reopen");
    let answers = nm.query(&XdbQuery::context("Budget")).expect("q").len();
    AppResult {
        name: "Proposal Financial Management",
        paper_time: "1 hour",
        spec_lines: spec.len(),
        docs: docs.len(),
        answers,
        assembly,
    }
}

/// Risk Assessment: slide decks + a composition stylesheet.
fn risk(scratch: &TempDir) -> AppResult {
    let docs = risk_decks(&CorpusConfig::sized(30));
    let stylesheet = r#"<xsl:stylesheet>
      <xsl:template match="/">
        <risk-rollup><xsl:for-each select="hit">
          <risks from="{@doc}"><xsl:value-of select="Content"/></risks>
        </xsl:for-each></risk-rollup>
      </xsl:template>
    </xsl:stylesheet>"#;
    let spec_lines = 2 + stylesheet.lines().count(); // query + databank + xslt
    let (answers, assembly) = time(|| {
        let nm = NetMark::open(&scratch.join("risk")).expect("open");
        for d in &docs {
            nm.insert_file(&d.name, &d.content).expect("ingest");
        }
        nm.register_stylesheet("rollup", stylesheet).expect("ss");
        let out = nm
            .query_url("Context=Risks&xslt=rollup")
            .expect("query")
            .composed()
            .expect("composed");
        out.find_all("risks").len()
    });
    AppResult {
        name: "Risk Assessment",
        paper_time: "1 day",
        spec_lines,
        docs: docs.len(),
        answers,
        assembly,
    }
}

/// IBPD: the big one — hundreds of task plans composed into one document.
fn ibpd(scratch: &TempDir) -> AppResult {
    let docs = task_plans(&CorpusConfig::sized(400));
    let stylesheet = r#"<xsl:stylesheet>
      <xsl:template match="/">
        <ibpd><xsl:for-each select="hit"><xsl:sort select="@doc"/>
          <entry plan="{@doc}"><xsl:value-of select="Content"/></entry>
        </xsl:for-each></ibpd>
      </xsl:template>
    </xsl:stylesheet>"#;
    let spec_lines = 1 + stylesheet.lines().count();
    let (answers, assembly) = time(|| {
        let nm = NetMark::open(&scratch.join("ibpd")).expect("open");
        for d in &docs {
            nm.insert_file(&d.name, &d.content).expect("ingest");
        }
        nm.register_stylesheet("ibpd", stylesheet).expect("ss");
        let out = nm
            .query_url("Context=Budget&xslt=ibpd")
            .expect("query")
            .composed()
            .expect("composed");
        out.find_all("entry").len()
    });
    AppResult {
        name: "Integrated Budget Performance Document",
        paper_time: "1 week",
        spec_lines,
        docs: docs.len(),
        answers,
        assembly,
    }
}

/// Anomaly Tracking: two federated sources, one of them content-only.
fn anomaly(scratch: &TempDir) -> AppResult {
    let a_docs = anomaly_reports(&CorpusConfig::sized(60));
    let b_docs = lessons_learned(&CorpusConfig::sized(40));
    let (answers, assembly) = time(|| {
        let nm = Arc::new(NetMark::open(&scratch.join("anomaly")).expect("open"));
        for d in &a_docs {
            nm.insert_file(&d.name, &d.content).expect("ingest");
        }
        let llis = ContentOnlySource::new(
            "llis",
            b_docs
                .iter()
                .map(|d| (d.name.clone(), d.content.clone()))
                .collect(),
        );
        let mut router = Router::new();
        router
            .register_source(Arc::new(NetmarkSource::new("anomaly-db", nm)))
            .expect("reg");
        router.register_source(Arc::new(llis)).expect("reg");
        router
            .define_databank("anomaly-tracking", &["anomaly-db", "llis"])
            .expect("bank");
        router
            .query(
                "anomaly-tracking",
                &XdbQuery::context_content("Recommendation", "engine"),
            )
            .expect("query")
            .results
            .len()
    });
    AppResult {
        name: "Anomaly Tracking",
        paper_time: "1 day",
        spec_lines: 3, // the databank spec (name + two sources)
        docs: a_docs.len() + b_docs.len(),
        answers,
        assembly,
    }
}

fn main() {
    banner(
        "TBL1",
        "Table 1 — NASA integration applications, assembly effort",
        "NETMARK assembles integration applications in hours-to-a-week \
         instead of the weeks manual assembly takes; effort ordering: \
         PFM < Risk ≈ Anomaly < IBPD",
    );
    let scratch = TempDir::new("tbl1");
    let apps = [
        pfm(&scratch),
        risk(&scratch),
        anomaly(&scratch),
        ibpd(&scratch),
    ];
    let mut t = TableWriter::new(&[
        "NASA Application",
        "paper assembly",
        "spec (lines)",
        "input docs",
        "integrated answers",
        "measured machine assembly",
    ]);
    for a in &apps {
        t.row(&[
            a.name.to_string(),
            a.paper_time.to_string(),
            a.spec_lines.to_string(),
            a.docs.to_string(),
            a.answers.to_string(),
            fmt_dur(a.assembly),
        ]);
    }
    t.print();
    println!(
        "\nreading: the declarative spec stays tiny for every application \
         (the paper's 'assembly time' is spec-writing time, not coding time); \
         machine assembly scales with corpus size, IBPD being the largest — \
         matching the paper's 1 hour / 1 day / 1 week ordering."
    );
}
