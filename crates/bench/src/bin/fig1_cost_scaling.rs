//! FIG1 — Fig 1 "Costs of data integration".
//!
//! The paper's figure sketches two curves over "# of consumers": the
//! current-middleware cost line growing linearly, and the "cost-scaling
//! vision" flattening out (economies of scale). This harness measures the
//! curves instead of sketching them: integration *artifacts* (the things
//! engineers must author and maintain) as sources and consuming
//! applications grow, for
//!
//! - **GAV mediation** (the `netmark-gav` baseline): per-source relation
//!   schemas + per-application global views + mappings + revision work
//!   when 10% of sources change schema per growth step;
//! - **NETMARK**: databank spec lines (one line per source per
//!   application) and nothing else — no schemas, no mappings, no
//!   revisions.

use netmark_bench::{banner, TableWriter};
use netmark_federation::{ContentOnlySource, Router};
use netmark_gav::{CmpOp, GlobalView, Mapping, Mediator, Predicate, RelationSchema, Source};
use std::sync::Arc;

/// Sources each application integrates (the paper: "anywhere from a
/// handful of information sources to literally hundreds").
const SOURCES_PER_APP: usize = 8;

fn gav_artifacts(n_sources: usize, n_apps: usize, churn: usize) -> (usize, usize) {
    let mut med = Mediator::new();
    // Every source exports a schema (2 relations each, realistically).
    for s in 0..n_sources {
        med.register_source(
            Source::new(&format!("src{s}"))
                .with_relation(RelationSchema::new("records", &["id", "title", "body"]))
                .with_relation(RelationSchema::new("meta", &["id", "owner"])),
        )
        .expect("fresh source");
    }
    // Every application defines a global view mapping its source subset.
    for a in 0..n_apps {
        let mappings: Vec<Mapping> = (0..SOURCES_PER_APP.min(n_sources))
            .map(|k| {
                let s = (a + k * 7) % n_sources; // spread apps across sources
                Mapping {
                    source: format!("src{s}"),
                    relation: "records".into(),
                    selections: vec![Predicate::new("title", CmpOp::Ne, "")],
                    projection: vec![Some("id".into()), Some("title".into())],
                }
            })
            .collect();
        med.define_view(GlobalView {
            name: format!("app{a}"),
            columns: vec!["id".into(), "title".into()],
            mappings,
        })
        .expect("fresh view");
    }
    // Schema churn: `churn` sources rename a column; every mapping touching
    // them must be revised.
    for s in 0..churn.min(n_sources) {
        med.source_schema_changed(
            &format!("src{s}"),
            "records",
            RelationSchema::new("records_v2", &["id", "headline", "body"]),
            &[("title", "headline")],
        )
        .expect("schema change");
    }
    (med.cost().total(), med.cost().revisions)
}

fn netmark_artifacts(n_sources: usize, n_apps: usize) -> usize {
    let mut router = Router::new();
    for s in 0..n_sources {
        router
            .register_source(Arc::new(ContentOnlySource::new(&format!("src{s}"), vec![])))
            .expect("fresh source");
    }
    for a in 0..n_apps {
        let names: Vec<String> = (0..SOURCES_PER_APP.min(n_sources))
            .map(|k| format!("src{}", (a + k * 7) % n_sources))
            .collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        router
            .define_databank(&format!("app{a}"), &refs)
            .expect("fresh databank");
    }
    router.total_spec_lines()
}

fn main() {
    banner(
        "FIG1",
        "Fig 1 — Costs of data integration vs number of consumers",
        "current middleware cost grows linearly with consumers; the lean \
         approach exhibits economies of scale (flattening cost per consumer)",
    );
    let mut t = TableWriter::new(&[
        "sources",
        "apps(consumers)",
        "GAV artifacts",
        "GAV revisions",
        "GAV/consumer",
        "NETMARK spec lines",
        "NETMARK/consumer",
    ]);
    for &n_sources in &[4usize, 8, 16, 32, 64, 128] {
        let n_apps = (n_sources / 4).max(1);
        let churn = n_sources / 10;
        let (gav_total, gav_rev) = gav_artifacts(n_sources, n_apps, churn);
        let nm_lines = netmark_artifacts(n_sources, n_apps);
        t.row(&[
            n_sources.to_string(),
            n_apps.to_string(),
            gav_total.to_string(),
            gav_rev.to_string(),
            format!("{:.1}", gav_total as f64 / n_apps as f64),
            nm_lines.to_string(),
            format!("{:.1}", nm_lines as f64 / n_apps as f64),
        ]);
    }
    t.print();
    println!(
        "\nreading: GAV cost-per-consumer stays high and grows with churn \
         (schema maintenance); NETMARK cost-per-consumer is a small constant \
         (the databank line count), reproducing the Fig 1 'cost scaling vision' curve."
    );
}
