//! FIG13 — shard-per-core store: scatter-gather scaling on one box.
//!
//! Not a figure from the paper: this measures the reproduction's own
//! `netmark-shard` subsystem, the paper's thin-router federation folded
//! into a single process. Three phases:
//!
//! 1. **Scaling table** — the same corpus is batch-ingested into sharded
//!    stores of 1, 2, 4, … shards; each row reports ingest throughput
//!    (batches scatter across shards, one WAL commit per shard per batch)
//!    and idle query latency over the standard workload. Near-linear
//!    ingest scaling is the figure; the table prints the speedup column.
//! 2. **Byte-identical results** — every query in the battery must render
//!    the same XML from the N-shard store and the 1-shard store: same
//!    hits, same order, same `candidates`, same `truncated` flag. The
//!    merge keys hits by the global ingest-sequence log, so this is a
//!    hard assert, not a statistical claim.
//! 3. **Query p99 under self-federated ingest** — readers hammer the
//!    N-shard store while a writer streams documents into it.
//!    Acceptance: the sharded p99 under ingest stays within 2x of the
//!    single-shard *idle* p99 — sharding must not give back what MVCC
//!    bought (FIG11). Hard-asserted only when the box has at least one
//!    core per shard; with fewer, the ratio measures the scheduler, not
//!    the subsystem, and is reported as advisory.
//!
//! `FIG13_DOCS` overrides the corpus size (the full figure uses 1M+;
//! CI smoke runs use small values), `FIG13_SHARDS` the maximum shard
//! count, and `FIG13_SECS` the phase-3 measurement window.

use netmark::{NetMarkOptions, QueryEngineOptions, XdbBackend};
use netmark_bench::{banner, fmt_dur, percentile, TableWriter, TempDir};
use netmark_corpus::{mixed, query_workload, CorpusConfig};
use netmark_docformats::upmark;
use netmark_model::Document;
use netmark_shard::{ShardOptions, ShardedStore};
use netmark_xdb::XdbQuery;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Documents per scatter batch — one WAL commit per shard per batch.
const BATCH: usize = 512;

/// Generates batch `chunk` of the corpus, upmarked and uniquely named.
///
/// The corpus is produced chunk-at-a-time (seed varies per chunk, names
/// prefixed by chunk index) so a 1M-document run never holds the whole
/// corpus in memory, and every store ingests the exact same sequence by
/// regenerating it deterministically.
fn corpus_batch(chunk: usize, size: usize, seed: u64) -> Vec<Document> {
    mixed(&CorpusConfig::sized(size).with_seed(seed.wrapping_add(chunk as u64)))
        .iter()
        .map(|d| upmark(&format!("c{chunk:05}-{}", d.name), &d.content))
        .collect()
}

/// The measured query mix: workload pairs as content, context, and
/// combined shapes. Limits keep the rendered XML bounded on large corpora
/// while exercising exactly the shard-aware pushdown + merge-truncation
/// paths the subsystem must get right.
fn query_mix() -> Vec<XdbQuery> {
    let mut qs = Vec::new();
    for (ctx, terms) in query_workload(13, 4) {
        qs.push(XdbQuery::content(&terms).with_limit(100));
        qs.push(XdbQuery::context(&ctx).with_limit(100));
        qs.push(XdbQuery::context_content(&ctx, &terms).with_limit(100));
    }
    qs.push(
        XdbQuery::content("shuttle engine")
            .with_phrase_match()
            .with_limit(50),
    );
    qs
}

/// Readers hammer `exec` with the query mix while `writer` runs; returns
/// all observed query latencies.
fn hammer<W, E>(readers: usize, writer: W, exec: E) -> Vec<Duration>
where
    W: FnOnce() + Send,
    E: Fn(&XdbQuery) -> usize + Sync,
{
    let queries = query_mix();
    let done = AtomicBool::new(false);
    let all = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..readers)
            .map(|r| {
                let queries = &queries;
                let done = &done;
                let all = &all;
                let exec = &exec;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    let mut i = r;
                    while !done.load(Ordering::Relaxed) {
                        let q = &queries[i % queries.len()];
                        let t = Instant::now();
                        let n = exec(q);
                        local.push(t.elapsed());
                        std::hint::black_box(n);
                        i += 1;
                    }
                    all.lock().unwrap().extend(local);
                })
            })
            .collect();
        writer();
        done.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().expect("reader");
        }
    });
    all.into_inner().unwrap()
}

/// Ingests the full corpus into a fresh `shards`-way store; returns the
/// store and the ingest wall time.
fn load_sharded(
    dir: &std::path::Path,
    shards: usize,
    docs: usize,
    seed: u64,
) -> (ShardedStore, Duration) {
    // Cache and memo off, as in FIG11: both are generation-stamped, so an
    // idle store keeps them warm while a streaming store has them
    // invalidated by every commit — leaving them on would fold cache
    // warmth into a figure that is about scatter-gather. Cold execution
    // on every row and both sides of the streaming comparison.
    let st = ShardedStore::open_with(
        dir,
        ShardOptions {
            shards,
            netmark: NetMarkOptions {
                query: QueryEngineOptions {
                    cache_capacity: 0,
                    memo_capacity: 0,
                    ..QueryEngineOptions::default()
                },
                ..NetMarkOptions::default()
            },
        },
    )
    .expect("open sharded store");
    let chunks = docs.div_ceil(BATCH);
    let t0 = Instant::now();
    let mut remaining = docs;
    for c in 0..chunks {
        let batch = corpus_batch(c, remaining.min(BATCH), seed);
        remaining -= batch.len();
        st.ingest_batch(&batch).expect("batch ingest");
    }
    (st, t0.elapsed())
}

fn main() {
    banner(
        "FIG13",
        "shard-per-core store: scatter-gather queries, self-federated ingest",
        "documents partition by name hash across N in-process NETMARK \
         shards; batched ingest scatters with one WAL commit per shard, \
         queries scatter-gather with limit pushdown and a seq-log-ordered \
         merge that is byte-identical to a single shard",
    );
    let docs: usize = std::env::var("FIG13_DOCS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000);
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let max_shards: usize = std::env::var("FIG13_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| cores.min(8));
    let secs: u64 = std::env::var("FIG13_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let readers = (cores.saturating_sub(1)).clamp(1, 4);
    let seed = 4242u64;
    println!(
        "corpus: {docs} documents, shards 1..={max_shards} ({cores} cores), \
         {readers} readers, {secs}s streaming window\n"
    );

    // Shard counts: 1, 2, 4, … up to max_shards (max always included).
    let mut counts = vec![1usize];
    while counts.last().copied().unwrap() * 2 < max_shards {
        counts.push(counts.last().unwrap() * 2);
    }
    if max_shards > 1 {
        counts.push(max_shards);
    }

    // ---- Phase 1: ingest throughput + idle query latency per row --------
    let window = Duration::from_secs(secs);
    let mut table = TableWriter::new(&[
        "shards", "ingest", "docs/s", "speedup", "queries", "p50", "p99",
    ]);
    let mut base_rate = 0.0f64;
    let mut single_idle_p99 = Duration::ZERO;
    let mut keep: Vec<(usize, TempDir, ShardedStore)> = Vec::new();
    for &n in &counts {
        let scratch = TempDir::new(&format!("fig13-{n}"));
        let (st, ingest) = load_sharded(scratch.path(), n, docs, seed);
        let rate = docs as f64 / ingest.as_secs_f64().max(1e-9);
        if n == 1 {
            base_rate = rate;
        }
        let mut idle = hammer(
            readers,
            || std::thread::sleep(window),
            |q| st.query(q).expect("query").len(),
        );
        let (p50, p99) = (percentile(&mut idle, 0.50), percentile(&mut idle, 0.99));
        if n == 1 {
            single_idle_p99 = p99;
        }
        table.row(&[
            n.to_string(),
            fmt_dur(ingest),
            format!("{rate:.0}"),
            format!("{:.2}x", rate / base_rate.max(1e-9)),
            idle.len().to_string(),
            fmt_dur(p50),
            fmt_dur(p99),
        ]);
        if n == 1 || n == max_shards {
            keep.push((n, scratch, st));
        }
    }
    table.print();

    // ---- Phase 2: byte-identical to the single-shard store --------------
    let single = &keep.first().expect("single-shard row").2;
    let sharded = &keep.last().expect("max-shard row").2;
    for q in &query_mix() {
        let s = sharded.query(q).expect("sharded query").to_xml();
        let r = single.query(q).expect("single query").to_xml();
        assert_eq!(
            s,
            r,
            "acceptance: {}-shard results must be byte-identical to 1 shard for {q:?}",
            keep.last().unwrap().0
        );
    }
    println!(
        "\nidentical results: {} query shapes byte-identical across \
         {} vs 1 shards over {docs} documents",
        query_mix().len(),
        keep.last().unwrap().0
    );

    // ---- Phase 3: query p99 under self-federated streaming ingest -------
    let stream_total = Arc::new(Mutex::new(0usize));
    let mut streaming = {
        let deadline = Instant::now() + window;
        let total = Arc::clone(&stream_total);
        hammer(
            readers,
            move || {
                let mut i = 0usize;
                while Instant::now() < deadline {
                    let name = format!("stream-{i}.txt");
                    let content = format!("# Filler\nzephyr quartz marl gneiss batch {i}\n");
                    XdbBackend::insert_file(sharded, &name, &content).expect("stream ingest");
                    i += 1;
                    std::thread::sleep(Duration::from_millis(5));
                }
                *total.lock().unwrap() = i;
            },
            |q| sharded.query(q).expect("query").len(),
        )
    };
    let sp99 = percentile(&mut streaming, 0.99);
    let ratio = sp99.as_secs_f64() / single_idle_p99.as_secs_f64().max(1e-9);
    println!(
        "\nstreaming: {} documents ingested while {} queries ran; \
         sharded p99 under ingest {} = {ratio:.2}x the single-shard idle p99 {}",
        stream_total.lock().unwrap(),
        streaming.len(),
        fmt_dur(sp99),
        fmt_dur(single_idle_p99)
    );
    // The shard-per-core premise needs the cores: on a box with fewer
    // cores than shards, scatter-gather degrades to time-slicing one CPU
    // across every shard plus the writer, and the p99 comparison measures
    // the scheduler, not the subsystem. Hard-assert only when each shard
    // can actually have a core; otherwise the ratio above is advisory.
    if cores >= keep.last().unwrap().0 {
        assert!(
            ratio <= 2.0,
            "acceptance: sharded p99 under ingest ({}) must stay within 2x \
             of the single-shard idle p99 ({})",
            fmt_dur(sp99),
            fmt_dur(single_idle_p99)
        );
        println!("\nFIG13 acceptance criteria satisfied");
    } else {
        println!(
            "\nFIG13: byte-identity satisfied; p99 ratio advisory only \
             ({cores} cores < {} shards — shard-per-core premise not met \
             on this box)",
            keep.last().unwrap().0
        );
    }
}
