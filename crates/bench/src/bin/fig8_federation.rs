//! FIG8 — Fig 8: "Highly scalable and flexible integration".
//!
//! The figure shows applications fanning out through thin routers to many
//! data sources. Measured here:
//! - federated query latency as the source count grows (parallel fan-out);
//! - the augmentation overhead for capability-limited (content-only)
//!   sources vs full NETMARK peers;
//! - graceful degradation with 25% of sources down;
//! - real-socket federation: XDB-over-HTTP peers behind `RemoteSource`
//!   adapters, with per-source wire latency;
//! - keep-alive vs `Connection: close` transport overhead.

use netmark::{NetMark, XdbQuery};
use netmark_bench::{banner, fmt_dur, median_of, TableWriter, TempDir};
use netmark_corpus::{lessons_learned, task_plans, CorpusConfig};
use netmark_federation::{
    ContentOnlySource, FlakySource, NetmarkSource, RemoteConfig, RemoteSource, Router,
};
use std::sync::Arc;

const DOCS_PER_SOURCE: usize = 40;

fn build(
    scratch: &TempDir,
    n_sources: usize,
    content_only_fraction: f64,
    down_fraction: f64,
    lessons_everywhere: bool,
) -> Router {
    let mut router = Router::new();
    let n_content_only = (n_sources as f64 * content_only_fraction) as usize;
    let n_down = (n_sources as f64 * down_fraction) as usize;
    for s in 0..n_sources {
        let name = format!("src{s:02}");
        if s < n_content_only {
            let docs = lessons_learned(&CorpusConfig::sized(DOCS_PER_SOURCE).with_seed(s as u64));
            let adapter = ContentOnlySource::new(
                &name,
                docs.into_iter().map(|d| (d.name, d.content)).collect(),
            );
            if s < n_down {
                router
                    .register_source(Arc::new(FlakySource::down(adapter)))
                    .expect("register");
            } else {
                router.register_source(Arc::new(adapter)).expect("register");
            }
        } else {
            let nm =
                Arc::new(NetMark::open(&scratch.join(&format!("peer{s}"))).expect("open peer"));
            let docs = if lessons_everywhere {
                lessons_learned(&CorpusConfig::sized(DOCS_PER_SOURCE).with_seed(s as u64))
            } else {
                task_plans(&CorpusConfig::sized(DOCS_PER_SOURCE).with_seed(s as u64))
            };
            for d in docs {
                nm.insert_file(&d.name, &d.content).expect("ingest");
            }
            let adapter = NetmarkSource::new(&name, nm);
            if s < n_down {
                router
                    .register_source(Arc::new(FlakySource::down(adapter)))
                    .expect("register");
            } else {
                router.register_source(Arc::new(adapter)).expect("register");
            }
        }
    }
    let names: Vec<String> = (0..n_sources).map(|s| format!("src{s:02}")).collect();
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    router.define_databank("app", &refs).expect("bank");
    router
}

/// N live webdav servers fronted by `RemoteSource` adapters — federation
/// over real sockets rather than in-process trait objects.
fn remote_fleet(
    scratch: &TempDir,
    n: usize,
    keep_alive: bool,
) -> (
    Vec<netmark_webdav::ServerHandle>,
    Vec<Arc<RemoteSource>>,
    Router,
) {
    let mut servers = Vec::new();
    let mut sources = Vec::new();
    let mut router = Router::new();
    for s in 0..n {
        let nm = Arc::new(NetMark::open(&scratch.join(&format!("net{s}"))).expect("open peer"));
        for d in task_plans(&CorpusConfig::sized(DOCS_PER_SOURCE).with_seed(100 + s as u64)) {
            nm.insert_file(&d.name, &d.content).expect("ingest");
        }
        let server = netmark_webdav::serve(nm, "127.0.0.1:0").expect("serve");
        let mut cfg = RemoteConfig::default();
        cfg.client.keep_alive = keep_alive;
        let name = format!("net{s:02}");
        let src = Arc::new(
            RemoteSource::connect(&name, &server.addr().to_string(), cfg).expect("negotiate"),
        );
        router
            .register_source(Arc::clone(&src) as _)
            .expect("register");
        servers.push(server);
        sources.push(src);
    }
    let names: Vec<String> = (0..n).map(|s| format!("net{s:02}")).collect();
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    router.define_databank("net", &refs).expect("bank");
    (servers, sources, router)
}

fn main() {
    banner(
        "FIG8",
        "Fig 8 — highly scalable and flexible integration",
        "arbitrary numbers of sources compose into applications; queries \
         fan out simultaneously; weak sources are augmented; failures \
         degrade, not break",
    );

    // Sweep 1: all-full-capability sources, growing fan-out.
    let mut t = TableWriter::new(&["sources", "hits", "median latency", "latency/source"]);
    for &n in &[1usize, 4, 16, 32] {
        let scratch = TempDir::new("fig8");
        let router = build(&scratch, n, 0.0, 0.0, false);
        let q = XdbQuery::context("Budget");
        let (fr, lat) = median_of(5, || router.query("app", &q).expect("query"));
        t.row(&[
            n.to_string(),
            fr.results.len().to_string(),
            fmt_dur(lat),
            fmt_dur(lat / n as u32),
        ]);
    }
    println!("\n-- fan-out scaling (full-capability sources)");
    t.print();

    // Sweep 2: augmentation overhead — half the sources content-only.
    let mut t = TableWriter::new(&[
        "mix",
        "hits",
        "augmented sources",
        "docs fetched",
        "median latency",
    ]);
    for &(label, frac) in &[("0% content-only", 0.0), ("50% content-only", 0.5)] {
        let scratch = TempDir::new("fig8-aug");
        // Same corpus on every source, so the only variable is capability.
        let router = build(&scratch, 8, frac, 0.0, true);
        let q = XdbQuery::context_content("Summary", "engine");
        let (fr, lat) = median_of(5, || router.query("app", &q).expect("query"));
        let augmented = fr.outcomes.iter().filter(|o| o.augmented).count();
        let fetched: usize = fr.outcomes.iter().map(|o| o.documents_fetched).sum();
        t.row(&[
            label.to_string(),
            fr.results.len().to_string(),
            augmented.to_string(),
            fetched.to_string(),
            fmt_dur(lat),
        ]);
    }
    println!("\n-- capability augmentation (Context+Content over weak sources)");
    t.print();

    // Sweep 3: graceful degradation.
    let scratch = TempDir::new("fig8-down");
    let router = build(&scratch, 8, 0.0, 0.25, false);
    let q = XdbQuery::context("Budget");
    let (fr, lat) = median_of(5, || router.query("app", &q).expect("query"));
    let failed = fr.outcomes.iter().filter(|o| o.error.is_some()).count();
    println!(
        "\n-- failure injection: 8 sources, {failed} down → {} hits from the \
         remaining {} sources in {} (degraded={}, query still answers)",
        fr.results.len(),
        8 - failed,
        fmt_dur(lat),
        fr.degraded()
    );
    // Sweep 4: real sockets — capability-negotiated XDB-over-HTTP peers.
    let scratch = TempDir::new("fig8-net");
    let (servers, _sources, router) = remote_fleet(&scratch, 3, true);
    let q = XdbQuery::context("Budget");
    let (fr, lat) = median_of(9, || router.query("net", &q).expect("query"));
    println!(
        "\n-- real sockets: 3 XDB-over-HTTP peers → {} hits, median {}",
        fr.results.len(),
        fmt_dur(lat)
    );
    let mut t = TableWriter::new(&["source", "hits", "wire latency"]);
    for o in &fr.outcomes {
        t.row(&[o.source.clone(), o.hits.to_string(), fmt_dur(o.latency)]);
    }
    t.print();
    for s in servers {
        s.stop();
    }

    // Sweep 5: transport overhead — connection reuse vs reconnect-per-GET.
    let mut t = TableWriter::new(&["transport", "median latency", "TCP connects"]);
    for &(label, ka) in &[("keep-alive", true), ("Connection: close", false)] {
        let scratch = TempDir::new("fig8-ka");
        let (servers, sources, router) = remote_fleet(&scratch, 3, ka);
        let q = XdbQuery::context("Budget");
        let (_, lat) = median_of(21, || router.query("net", &q).expect("query"));
        let connects: u64 = sources.iter().map(|s| s.connects()).sum();
        t.row(&[label.to_string(), fmt_dur(lat), connects.to_string()]);
        for s in servers {
            s.stop();
        }
    }
    println!("\n-- transport: keep-alive vs Connection: close (21 federated queries)");
    t.print();

    println!(
        "\nreading: fan-out latency grows far slower than source count \
         (parallel dispatch — 'simultaneous querying'); augmentation buys \
         full query power over content-only sources for a bounded fetch \
         overhead; downed sources cost their answers, never the query; the \
         same holds over real sockets, where keep-alive amortizes one TCP \
         connect per source across every query."
    );
}
