//! FIG15 — sublinear ranked top-k: block-max pruning + bounded collection.
//!
//! Not a figure from the paper: this measures the reproduction's own
//! top-k executor (PR "rework the ranked read path"). The claim under
//! test: a ranked query with `limit=k` costs O(k) materialization — not
//! O(matches) — while returning *precisely* the hits the exhaustive
//! sort-everything path would return. Three phases:
//!
//! 1. **Byte identity** — every ranked query shape at k ∈ {10, 100, 1000}
//!    answers byte-identically with pruning on and off, across a plain
//!    store, an N-shard store (two-wave scatter with a refined score
//!    floor), and a 2-peer federated databank (`limit` + `min_score`
//!    pushdown). Unranked limited queries are also compared: the bounded
//!    path must not perturb the pre-ranking wire.
//! 2. **Latency vs k** — the heaviest workload query runs pruned vs
//!    exhaustive at each k over the plain store. Acceptance (at the
//!    default ≥100k-doc corpus): pruned `limit=10` is ≥2x faster than
//!    the exhaustive baseline.
//! 3. **Latency vs corpus size** — the same k=10 comparison at 1/10th
//!    scale shows the exhaustive path growing with the corpus while the
//!    pruned path tracks k.
//!
//! `FIG15_DOCS` overrides the corpus size (CI smoke uses small values —
//! the ≥2x assert only arms at ≥100k docs, where materialization
//! dominates constant costs), `FIG15_SHARDS` the shard count,
//! `FIG15_ROUNDS` the sample count per measurement.

use netmark::{NetMark, NetMarkOptions, QueryEngineOptions, RankMode};
use netmark_bench::{banner, fmt_dur, percentile, TableWriter, TempDir};
use netmark_corpus::{mixed, query_workload, CorpusConfig};
use netmark_docformats::upmark;
use netmark_federation::{NetmarkSource, Router};
use netmark_model::Document;
use netmark_shard::{ShardOptions, ShardedStore};
use netmark_xdb::XdbQuery;
use std::sync::Arc;
use std::time::Instant;

/// Marker term for planted needles (absent from the generated corpus).
const MARKER: &str = "zugzwang";

/// Needle term frequencies, strictly decreasing.
const NEEDLE_TF: &[usize] = &[32, 16, 8, 4, 2, 1];

/// Documents per ingest batch.
const BATCH: usize = 512;

/// The k sweep: the paper-of-record sizes for "first page", "deep page",
/// and "export" result shapes.
const KS: &[usize] = &[10, 100, 1000];

fn build_corpus(docs: usize, seed: u64) -> Vec<Document> {
    let mut out: Vec<Document> = mixed(&CorpusConfig::sized(docs).with_seed(seed))
        .iter()
        .filter(|d| !d.content.to_lowercase().contains(MARKER))
        .map(|d| upmark(&d.name, &d.content))
        .collect();
    for (i, &tf) in NEEDLE_TF.iter().enumerate() {
        let terms = vec![MARKER; tf].join(" ");
        out.push(upmark(
            &format!("needle-{i:02}.txt"),
            &format!("# Finding\n{terms} in test article {i}\n"),
        ));
    }
    out
}

/// Cache/memo off (as in FIG14): warmth would mask the collect path this
/// figure is about. `pruned` toggles the top-k executor — `false` is the
/// exhaustive score-sort-truncate baseline.
fn options(pruned: bool) -> NetMarkOptions {
    NetMarkOptions {
        query: QueryEngineOptions {
            cache_capacity: 0,
            memo_capacity: 0,
            topk_pruning: pruned,
            ..QueryEngineOptions::default()
        },
        ..NetMarkOptions::default()
    }
}

/// The ranked battery: workload pairs as content and context+content
/// shapes (limits applied per phase).
fn query_mix() -> Vec<XdbQuery> {
    let mut qs = Vec::new();
    for (ctx, terms) in query_workload(15, 4) {
        qs.push(XdbQuery::content(&terms));
        qs.push(XdbQuery::context_content(&ctx, &terms));
    }
    qs
}

/// A 2-peer federated databank over `corpus` split round-robin; both
/// peers are full NETMARK sources, so the router pushes `limit=` and
/// `min_score=` down instead of merging unbounded answers.
fn build_router(scratch: &TempDir, tag: &str, corpus: &[Document], pruned: bool) -> Router {
    let mut router = Router::new();
    for peer in 0..2usize {
        let nm = Arc::new(
            NetMark::open_with(&scratch.join(&format!("{tag}-peer{peer}")), options(pruned))
                .expect("open peer"),
        );
        let part: Vec<Document> = corpus
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 2 == peer)
            .map(|(_, d)| d.clone())
            .collect();
        for chunk in part.chunks(BATCH) {
            nm.ingest_batch(chunk).expect("peer ingest");
        }
        router
            .register_source(Arc::new(NetmarkSource::new(&format!("peer{peer}"), nm)))
            .expect("register");
    }
    router
        .define_databank("fed", &["peer0", "peer1"])
        .expect("bank");
    router
}

fn main() {
    banner(
        "FIG15",
        "sublinear ranked top-k (block-max pruning + bounded collection)",
        "a ranked limit=k query materializes O(k) hits behind a score \
         threshold that propagates through shard scatter and federation \
         pushdown — byte-identical to the exhaustive ranking at any k",
    );
    let docs: usize = std::env::var("FIG15_DOCS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000);
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let shards: usize = std::env::var("FIG15_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 1)
        .unwrap_or_else(|| cores.clamp(2, 4));
    let rounds: usize = std::env::var("FIG15_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(9);
    let seed = 1515u64;
    println!(
        "corpus: {docs} background documents + {} needles, {shards}-shard deployment, \
         2-peer federation\n",
        NEEDLE_TF.len()
    );

    let corpus = build_corpus(docs, seed);

    // Paired deployments: identical data, the only difference is the
    // topk_pruning engine switch.
    let scratch = TempDir::new("fig15");
    let plain_p = NetMark::open_with(&scratch.join("plain-p"), options(true)).expect("open");
    let plain_x = NetMark::open_with(&scratch.join("plain-x"), options(false)).expect("open");
    let shard_p = ShardedStore::open_with(
        &scratch.join("shard-p"),
        ShardOptions {
            shards,
            netmark: options(true),
        },
    )
    .expect("open sharded");
    let shard_x = ShardedStore::open_with(
        &scratch.join("shard-x"),
        ShardOptions {
            shards,
            netmark: options(false),
        },
    )
    .expect("open sharded");
    let t0 = Instant::now();
    for chunk in corpus.chunks(BATCH) {
        plain_p.ingest_batch(chunk).expect("ingest");
        plain_x.ingest_batch(chunk).expect("ingest");
        shard_p.ingest_batch(chunk).expect("ingest");
        shard_x.ingest_batch(chunk).expect("ingest");
    }
    let fed_p = build_router(&scratch, "fed-p", &corpus, true);
    let fed_x = build_router(&scratch, "fed-x", &corpus, false);
    println!(
        "ingested {} documents into 6 deployments in {}\n",
        corpus.len(),
        fmt_dur(t0.elapsed())
    );

    // ---- Phase 1: byte identity at every k -------------------------------
    let mix = query_mix();
    let mut compared = 0usize;
    for q in &mix {
        for &k in KS {
            let rq = q.clone().with_rank(RankMode::Bm25).with_limit(k);
            assert_eq!(
                plain_p.query(&rq).expect("plain pruned").to_xml(),
                plain_x.query(&rq).expect("plain exhaustive").to_xml(),
                "acceptance: plain pruned == exhaustive for {rq:?}"
            );
            assert_eq!(
                shard_p.query(&rq).expect("sharded pruned").to_xml(),
                shard_x.query(&rq).expect("sharded exhaustive").to_xml(),
                "acceptance: {shards}-shard pruned == exhaustive for {rq:?}"
            );
            let fp = fed_p.query("fed", &rq).expect("fed pruned");
            let fx = fed_x.query("fed", &rq).expect("fed exhaustive");
            assert!(!fp.degraded() && !fx.degraded());
            assert_eq!(
                fp.results.to_xml(),
                fx.results.to_xml(),
                "acceptance: federated pruned == exhaustive for {rq:?}"
            );
            compared += 3;

            // The bounded path must leave the pre-ranking wire alone:
            // unranked limited answers are byte-identical too (and carry
            // no scores).
            let uq = q.clone().with_limit(k);
            let up = plain_p.query(&uq).expect("plain unranked").to_xml();
            assert_eq!(
                up,
                plain_x.query(&uq).expect("plain unranked").to_xml(),
                "acceptance: unranked limit path unchanged for {uq:?}"
            );
            assert!(!up.contains("score"), "unranked answers carry no scores");
        }
    }
    // Needle sanity: pruning preserves planted relevance order.
    let needle_q = XdbQuery::content(MARKER)
        .with_rank(RankMode::Bm25)
        .with_limit(NEEDLE_TF.len());
    let rs = plain_p.query(&needle_q).expect("needles");
    let got: Vec<&str> = rs.hits.iter().map(|h| h.doc.as_str()).collect();
    let want: Vec<String> = (0..NEEDLE_TF.len())
        .map(|i| format!("needle-{i:02}.txt"))
        .collect();
    assert_eq!(
        got,
        want.iter().map(String::as_str).collect::<Vec<_>>(),
        "acceptance: pruned top-k returns needles in planted order"
    );
    println!(
        "identity: {compared} ranked query/deployment pairs byte-identical at k ∈ {KS:?} \
         (plain, {shards}-shard, federated); unranked limit path unchanged"
    );

    // ---- Phase 2: latency vs k -------------------------------------------
    // Measure on the heaviest battery query (most matches → the widest
    // pruned/exhaustive gap to close honestly).
    let heavy = mix
        .iter()
        .filter(|q| q.context.is_none())
        .max_by_key(|q| plain_p.query(q).map(|rs| rs.len()).unwrap_or(0))
        .expect("non-empty mix")
        .clone();
    let matches = plain_p.query(&heavy).expect("heavy").len();
    println!(
        "\nworkload query `{}` matches {matches} sections",
        heavy.to_query_string()
    );
    let mut table = TableWriter::new(&["k", "pruned p50", "exhaustive p50", "speedup"]);
    let mut speedup_at_10 = 0.0f64;
    for &k in KS {
        let rq = heavy.clone().with_rank(RankMode::Bm25).with_limit(k);
        let mut lat_p = Vec::with_capacity(rounds);
        let mut lat_x = Vec::with_capacity(rounds);
        for _ in 0..rounds {
            let t = Instant::now();
            std::hint::black_box(plain_p.query(&rq).expect("pruned").len());
            lat_p.push(t.elapsed());
            let t = Instant::now();
            std::hint::black_box(plain_x.query(&rq).expect("exhaustive").len());
            lat_x.push(t.elapsed());
        }
        let p50p = percentile(&mut lat_p, 0.50);
        let p50x = percentile(&mut lat_x, 0.50);
        let speedup = p50x.as_secs_f64() / p50p.as_secs_f64().max(1e-9);
        if k == 10 {
            speedup_at_10 = speedup;
        }
        table.row(&[
            k.to_string(),
            fmt_dur(p50p),
            fmt_dur(p50x),
            format!("{speedup:.2}x"),
        ]);
    }
    table.print();
    if docs >= 100_000 {
        assert!(
            speedup_at_10 >= 2.0,
            "acceptance: pruned limit=10 must be >= 2x faster than exhaustive \
             on a {docs}-doc corpus, got {speedup_at_10:.2}x"
        );
        println!("\nacceptance: k=10 speedup {speedup_at_10:.2}x >= 2x on {docs} documents");
    } else {
        println!(
            "\n(speedup assert armed only at >= 100000 docs; ran with {docs} — \
             identity checks above are the smoke acceptance)"
        );
    }
    let qs = plain_p.stats().expect("stats").query;
    println!(
        "pruned-engine counters: {} heap evictions, {} postings decoded of {} \
         ({} blocks skipped)",
        qs.topk.heap_evictions,
        qs.topk.postings_decoded,
        qs.topk.postings_total,
        qs.topk.blocks_skipped
    );

    // ---- Phase 3: latency vs corpus size ---------------------------------
    let small_docs = (docs / 10).max(200);
    let small_corpus = build_corpus(small_docs, seed);
    let small_p = NetMark::open_with(&scratch.join("small-p"), options(true)).expect("open");
    let small_x = NetMark::open_with(&scratch.join("small-x"), options(false)).expect("open");
    for chunk in small_corpus.chunks(BATCH) {
        small_p.ingest_batch(chunk).expect("ingest");
        small_x.ingest_batch(chunk).expect("ingest");
    }
    let mut table = TableWriter::new(&["docs", "pruned p50 (k=10)", "exhaustive p50", "speedup"]);
    for (size, p, x) in [(small_docs, &small_p, &small_x), (docs, &plain_p, &plain_x)] {
        let rq = heavy.clone().with_rank(RankMode::Bm25).with_limit(10);
        let mut lat_p = Vec::with_capacity(rounds);
        let mut lat_x = Vec::with_capacity(rounds);
        for _ in 0..rounds {
            let t = Instant::now();
            std::hint::black_box(p.query(&rq).expect("pruned").len());
            lat_p.push(t.elapsed());
            let t = Instant::now();
            std::hint::black_box(x.query(&rq).expect("exhaustive").len());
            lat_x.push(t.elapsed());
        }
        let p50p = percentile(&mut lat_p, 0.50);
        let p50x = percentile(&mut lat_x, 0.50);
        table.row(&[
            size.to_string(),
            fmt_dur(p50p),
            fmt_dur(p50x),
            format!("{:.2}x", p50x.as_secs_f64() / p50p.as_secs_f64().max(1e-9)),
        ]);
    }
    table.print();
    println!("\nFIG15 acceptance criteria satisfied");
}
