//! FIG14 — ranked BM25 search as a negotiated capability.
//!
//! Not a figure from the paper: this measures the reproduction's own
//! wire-v2 ranking subsystem (`rank=bm25`). Three phases:
//!
//! 1. **Seeded relevance** — a background corpus is salted with "needle"
//!    documents containing a marker term at strictly decreasing term
//!    frequencies. A ranked content query must return the needles first,
//!    in planted order, with non-increasing scores. This is a hard assert
//!    on the BM25 collect path, not a statistical claim.
//! 2. **Deployment equivalence** — the same corpus is ingested into a
//!    plain store, a 1-shard store, and an N-shard store. `rank=none`
//!    answers must be byte-identical across all three (ranking must cost
//!    pre-v2 queries nothing, not even a byte); the 1-shard ranked answer
//!    must be byte-identical to the plain store's (same index, same
//!    statistics, same scores); and the N-shard ranked answer must agree
//!    with 1 shard on the match *set* (shard-local statistics reorder
//!    within the set, never change it) and on the needle top-k.
//! 3. **Ranking overhead** — the workload battery runs as `rank=none` and
//!    `rank=bm25` over the plain store; the table reports p50s and the
//!    overhead ratio of scoring at collect time.
//!
//! `FIG14_DOCS` overrides the corpus size (CI smoke runs use small
//! values), `FIG14_SHARDS` the shard count of the sharded deployment.

use netmark::{NetMark, NetMarkOptions, QueryEngineOptions, RankMode};
use netmark_bench::{banner, fmt_dur, percentile, TableWriter, TempDir};
use netmark_corpus::{mixed, query_workload, CorpusConfig};
use netmark_docformats::upmark;
use netmark_model::Document;
use netmark_shard::{ShardOptions, ShardedStore};
use netmark_xdb::XdbQuery;
use std::time::Instant;

/// Marker term for the planted needles; absent from the generated corpus
/// vocabulary (asserted at build time below).
const MARKER: &str = "zugzwang";

/// Needle term frequencies, strictly decreasing: needle 0 must outrank
/// needle 1, and so on.
const NEEDLE_TF: &[usize] = &[32, 16, 8, 4, 2, 1];

/// Documents per ingest batch.
const BATCH: usize = 512;

/// The full upmarked corpus: background documents (filtered to never
/// contain the marker) plus the needles, deterministically ordered so
/// every deployment ingests the exact same sequence.
fn build_corpus(docs: usize, seed: u64) -> Vec<Document> {
    let mut out: Vec<Document> = mixed(&CorpusConfig::sized(docs).with_seed(seed))
        .iter()
        .filter(|d| !d.content.to_lowercase().contains(MARKER))
        .map(|d| upmark(&d.name, &d.content))
        .collect();
    for (i, &tf) in NEEDLE_TF.iter().enumerate() {
        let terms = vec![MARKER; tf].join(" ");
        out.push(upmark(
            &format!("needle-{i:02}.txt"),
            &format!("# Finding\n{terms} in test article {i}\n"),
        ));
    }
    out
}

/// Cache/memo off (as in FIG11/FIG13): generation-stamped caches would
/// fold warmth into figures about the scoring path itself.
fn cold_options() -> NetMarkOptions {
    NetMarkOptions {
        query: QueryEngineOptions {
            cache_capacity: 0,
            memo_capacity: 0,
            ..QueryEngineOptions::default()
        },
        ..NetMarkOptions::default()
    }
}

/// The measured query battery: workload pairs as content, context, and
/// combined shapes (no limit — phase 2 compares full match sets).
fn query_mix() -> Vec<XdbQuery> {
    let mut qs = Vec::new();
    for (ctx, terms) in query_workload(14, 4) {
        qs.push(XdbQuery::content(&terms));
        qs.push(XdbQuery::context(&ctx));
        qs.push(XdbQuery::context_content(&ctx, &terms));
    }
    qs
}

/// Wire-visible section identities of a result set, order-insensitive
/// (node ids are store-local and differ across deployments).
fn hit_set(rs: &netmark::ResultSet) -> std::collections::BTreeSet<(String, String, String)> {
    rs.hits
        .iter()
        .map(|h| (h.doc.clone(), h.context.clone(), h.content_text()))
        .collect()
}

fn main() {
    banner(
        "FIG14",
        "ranked BM25 search as a negotiated capability (wire v2)",
        "per-segment length statistics feed BM25 scoring at collect time; \
         rank=none stays byte-identical to the pre-ranking wire, ranked \
         answers merge score-aware across shards and federated sources",
    );
    let docs: usize = std::env::var("FIG14_DOCS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000);
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let shards: usize = std::env::var("FIG14_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 1)
        .unwrap_or_else(|| cores.clamp(2, 4));
    let seed = 1414u64;
    println!(
        "corpus: {docs} background documents + {} needles, {shards}-shard deployment\n",
        NEEDLE_TF.len()
    );

    let corpus = build_corpus(docs, seed);

    // Three deployments over the same document sequence.
    let plain_dir = TempDir::new("fig14-plain");
    let plain = NetMark::open_with(plain_dir.path(), cold_options()).expect("open plain store");
    let one_dir = TempDir::new("fig14-1shard");
    let one = ShardedStore::open_with(
        one_dir.path(),
        ShardOptions {
            shards: 1,
            netmark: cold_options(),
        },
    )
    .expect("open 1-shard store");
    let n_dir = TempDir::new(&format!("fig14-{shards}shard"));
    let sharded = ShardedStore::open_with(
        n_dir.path(),
        ShardOptions {
            shards,
            netmark: cold_options(),
        },
    )
    .expect("open sharded store");
    let t0 = Instant::now();
    for chunk in corpus.chunks(BATCH) {
        plain.ingest_batch(chunk).expect("plain ingest");
        one.ingest_batch(chunk).expect("1-shard ingest");
        sharded.ingest_batch(chunk).expect("sharded ingest");
    }
    println!(
        "ingested {} documents into 3 deployments in {}\n",
        corpus.len(),
        fmt_dur(t0.elapsed())
    );

    // ---- Phase 1: seeded relevance ---------------------------------------
    let needle_q = XdbQuery::content(MARKER)
        .with_rank(RankMode::Bm25)
        .with_limit(NEEDLE_TF.len());
    let rs = plain.query(&needle_q).expect("needle query");
    assert!(rs.ranked, "ranked queries mark the result set ranked");
    let got: Vec<&str> = rs.hits.iter().map(|h| h.doc.as_str()).collect();
    let want: Vec<String> = (0..NEEDLE_TF.len())
        .map(|i| format!("needle-{i:02}.txt"))
        .collect();
    assert_eq!(
        got,
        want.iter().map(String::as_str).collect::<Vec<_>>(),
        "acceptance: needles return in planted relevance order"
    );
    let scores: Vec<f64> = rs
        .hits
        .iter()
        .map(|h| h.score.expect("scored hit"))
        .collect();
    assert!(
        scores.windows(2).all(|w| w[0] > w[1]),
        "acceptance: strictly decreasing tf gives strictly decreasing scores, got {scores:?}"
    );
    println!(
        "relevance: {} needles (tf {NEEDLE_TF:?}) ranked in planted order, scores {:.3}..{:.3}",
        NEEDLE_TF.len(),
        scores.first().unwrap(),
        scores.last().unwrap()
    );

    // ---- Phase 2: deployment equivalence ---------------------------------
    let mix = query_mix();
    for q in &mix {
        // rank=none: byte-identical everywhere — the pre-v2 wire, exactly.
        let p = plain.query(q).expect("plain").to_xml();
        let o = one.query(q).expect("1-shard").to_xml();
        let s = sharded.query(q).expect("sharded").to_xml();
        assert_eq!(p, o, "acceptance: rank=none 1-shard == plain for {q:?}");
        assert_eq!(
            p, s,
            "acceptance: rank=none {shards}-shard == plain for {q:?}"
        );
        assert!(!p.contains("score"), "unranked answers carry no scores");

        // rank=bm25: 1 shard is byte-identical to plain (same statistics);
        // N shards agree on the match set (shard-local statistics may
        // reorder within it, never change it).
        let rq = q.clone().with_rank(RankMode::Bm25);
        let rp = plain.query(&rq).expect("plain ranked");
        let ro = one.query(&rq).expect("1-shard ranked");
        let rr = sharded.query(&rq).expect("sharded ranked");
        assert_eq!(
            rp.to_xml(),
            ro.to_xml(),
            "acceptance: ranked 1-shard == plain, scores included, for {q:?}"
        );
        assert_eq!(
            hit_set(&rp),
            hit_set(&rr),
            "acceptance: ranked {shards}-shard match set == plain for {q:?}"
        );
    }
    // The needle top-k agrees across shard counts: the planted score gap
    // dominates any shard-local statistics drift.
    let rs_sharded = sharded.query(&needle_q).expect("sharded needles");
    assert!(rs_sharded.ranked);
    let sharded_top: std::collections::BTreeSet<String> =
        rs_sharded.hits.iter().map(|h| h.doc.clone()).collect();
    assert_eq!(
        sharded_top,
        want.iter().cloned().collect(),
        "acceptance: {shards}-shard and 1-shard deployments agree on the needle top-k set"
    );
    println!(
        "equivalence: {} query shapes — rank=none byte-identical across 3 deployments, \
         ranked 1-shard byte-identical to plain, {shards}-shard match sets equal",
        mix.len()
    );

    // ---- Phase 3: ranking overhead ---------------------------------------
    let rounds: usize = std::env::var("FIG14_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(9);
    let mut table = TableWriter::new(&[
        "query",
        "hits",
        "rank=none p50",
        "rank=bm25 p50",
        "overhead",
    ]);
    for q in mix.iter().take(6) {
        let ranked_q = q.clone().with_rank(RankMode::Bm25);
        let mut plainlat = Vec::with_capacity(rounds);
        let mut ranklat = Vec::with_capacity(rounds);
        let mut hits = 0usize;
        for _ in 0..rounds {
            let t = Instant::now();
            hits = plain.query(q).expect("unranked").len();
            plainlat.push(t.elapsed());
            let t = Instant::now();
            std::hint::black_box(plain.query(&ranked_q).expect("ranked").len());
            ranklat.push(t.elapsed());
        }
        let p50n = percentile(&mut plainlat, 0.50);
        let p50r = percentile(&mut ranklat, 0.50);
        table.row(&[
            q.to_query_string(),
            hits.to_string(),
            fmt_dur(p50n),
            fmt_dur(p50r),
            format!("{:.2}x", p50r.as_secs_f64() / p50n.as_secs_f64().max(1e-9)),
        ]);
    }
    table.print();
    println!("\nFIG14 acceptance criteria satisfied");
}
