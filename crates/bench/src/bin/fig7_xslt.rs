//! FIG7 — Fig 7: the XDB Query search + XSLT transformation process.
//!
//! "In this URL we may also specify an XSLT stylesheet which specifies how
//! the results are to be formatted and composed into a new document …
//! XSLT transformation is done using the Xalan XSLT processor." This
//! harness measures the two stages of Fig 7 separately — query execution
//! and stylesheet application — as the result set grows, for two
//! stylesheets (flat report; sorted composition).

use netmark::XdbQuery;
use netmark_bench::{banner, fmt_dur, load_netmark, median_of, TableWriter, TempDir};
use netmark_corpus::{task_plans, CorpusConfig};

const FLAT: &str = r#"<xsl:stylesheet>
  <xsl:template match="/">
    <report><xsl:for-each select="hit">
      <section doc="{@doc}"><xsl:value-of select="Content"/></section>
    </xsl:for-each></report>
  </xsl:template>
</xsl:stylesheet>"#;

const SORTED: &str = r#"<xsl:stylesheet>
  <xsl:template match="/">
    <report><xsl:for-each select="hit">
      <xsl:sort select="@doc" order="descending"/>
      <section doc="{@doc}" heading="{Context}"><xsl:value-of select="Content"/></section>
    </xsl:for-each></report>
  </xsl:template>
</xsl:stylesheet>"#;

fn main() {
    banner(
        "FIG7",
        "Fig 7 — XDB Query search and transformation process",
        "query results compose into new documents via client-named XSLT; \
         composition cost is linear in the result size, not the corpus",
    );
    // One corpus large enough to produce the biggest result set.
    let docs = task_plans(&CorpusConfig::sized(1000));
    let scratch = TempDir::new("fig7");
    let nm = load_netmark(scratch.path(), &docs);
    nm.register_stylesheet("flat", FLAT).expect("flat");
    nm.register_stylesheet("sorted", SORTED).expect("sorted");

    let mut t = TableWriter::new(&[
        "result sections",
        "query latency",
        "xslt=flat latency",
        "xslt=sorted latency",
        "composed bytes",
    ]);
    for &limit in &[10usize, 100, 1000] {
        let q = XdbQuery::context("Budget").with_limit(limit);
        let (rs, q_lat) = median_of(5, || nm.query(&q).expect("query"));
        let (flat_node, flat_lat) = median_of(5, || nm.compose(&rs, "flat").expect("compose"));
        let (_, sorted_lat) = median_of(5, || nm.compose(&rs, "sorted").expect("compose"));
        t.row(&[
            rs.len().to_string(),
            fmt_dur(q_lat),
            fmt_dur(flat_lat),
            fmt_dur(sorted_lat),
            flat_node.to_xml().len().to_string(),
        ]);
    }
    t.print();
    println!(
        "\nreading: both Fig-7 stages scale with the result set; the sorted \
         stylesheet pays an extra (n log n) but remains milliseconds at \
         1000 sections — on-the-fly composition is cheap enough to live at \
         the client, as the lean-middleware thesis requires."
    );
}
