//! FIG5 — Fig 5: the NETMARK generated schema, vs shredding.
//!
//! "Approaches such as [Shanmugasundaram et al.] define different relations
//! for different XML element types. The NETMARK storage scheme however uses
//! the same relational tables to represent and store any XML document
//! type." This harness builds both storage schemes over the same relstore
//! substrate and grows the number of distinct document *types*:
//!
//! - **NETMARK**: the two fixed tables (plus counters) — forever.
//! - **shredded**: one relation per element type per document type,
//!   created on first sight (the schema-per-doctype coupling the paper
//!   eliminates).
//!
//! Reported: relational schemas created, ingest throughput, and the DDL
//! events (CREATE TABLE while loading data) each scheme incurs.

use netmark::NetMark;
use netmark_bench::{banner, fmt_dur, time, TableWriter, TempDir};
use netmark_relstore::{ColumnType, Database, Schema, Value};
use netmark_sgml::{parse_xml, NodeTypeConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generates `docs_per_type` XML documents for each of `types` distinct
/// document types; type `k` uses element names no other type uses.
fn typed_corpus(types: usize, docs_per_type: usize) -> Vec<(String, String)> {
    let mut rng = SmallRng::seed_from_u64(5);
    let mut out = Vec::new();
    for k in 0..types {
        for d in 0..docs_per_type {
            let mut xml = format!("<report_t{k}>");
            for s in 0..6 {
                let words = rng.gen_range(8..25);
                xml.push_str(&format!(
                    "<sec_t{k}_{s}><title_t{k}>Section {s}</title_t{k}><body_t{k}>{}</body_t{k}></sec_t{k}_{s}>",
                    netmark_corpus::body_text(&mut rng, words),
                ));
            }
            xml.push_str(&format!("</report_t{k}>"));
            out.push((format!("t{k}-doc{d}.xml"), xml));
        }
    }
    out
}

/// The shredded baseline: one table per element type (per document type,
/// since element names are type-specific), rows `(node_id, parent_id,
/// ordinal, text)`.
struct Shredded {
    db: Database,
    next_node: i64,
    ddl_events: usize,
}

impl Shredded {
    fn open(dir: &std::path::Path) -> Shredded {
        Shredded {
            db: Database::open(dir).expect("open"),
            next_node: 1,
            ddl_events: 0,
        }
    }

    fn table_for(&mut self, element: &str) -> netmark_relstore::Table {
        if !self.db.has_table(element) {
            self.db
                .create_table(
                    element,
                    Schema::new(&[
                        ("node_id", ColumnType::Int),
                        ("parent_id", ColumnType::Int),
                        ("ordinal", ColumnType::Int),
                        ("text", ColumnType::Text),
                    ]),
                )
                .expect("create element table");
            self.ddl_events += 1;
        }
        self.db.table(element).expect("table")
    }

    fn ingest(&mut self, xml: &str) {
        let cfg = NodeTypeConfig::empty();
        let root = parse_xml(xml, &cfg).expect("well-formed corpus");
        let mut stack = vec![(root, -1i64, 0i64)];
        while let Some((node, parent, ordinal)) = stack.pop() {
            let id = self.next_node;
            self.next_node += 1;
            let text: String = node
                .children
                .iter()
                .filter(|c| c.ntype == netmark::NodeType::Text)
                .map(|c| c.text.as_str())
                .collect();
            let table = self.table_for(&node.name);
            table
                .insert(&vec![
                    Value::Int(id),
                    Value::Int(parent),
                    Value::Int(ordinal),
                    Value::Text(text),
                ])
                .expect("insert");
            for (i, c) in node
                .children
                .iter()
                .filter(|c| c.ntype != netmark::NodeType::Text)
                .enumerate()
            {
                stack.push((c.clone(), id, i as i64));
            }
        }
    }

    fn table_count(&self) -> usize {
        self.db.table_names().len()
    }
}

fn main() {
    banner(
        "FIG5",
        "Fig 5 — the NETMARK generated schema (XML + DOC tables)",
        "one fixed relational schema stores any XML document type; \
         shredding needs new relations for every new document type",
    );
    let mut t = TableWriter::new(&[
        "doc types",
        "docs",
        "NETMARK tables",
        "NETMARK DDL",
        "NETMARK ingest",
        "shredded tables",
        "shredded DDL",
        "shredded ingest",
    ]);
    for &types in &[1usize, 4, 16, 64] {
        let corpus = typed_corpus(types, 8);
        // NETMARK side.
        let scratch = TempDir::new("fig5-nm");
        let ((nm_tables, nm_ddl), nm_wall) = time(|| {
            let nm = NetMark::open(scratch.path()).expect("open");
            for (name, xml) in &corpus {
                nm.insert_file(name, xml).expect("ingest");
            }
            // XML + DOC + META, all created once at open: 3 tables, 3 DDL.
            (3usize, 3usize)
        });
        // Shredded side.
        let scratch2 = TempDir::new("fig5-shred");
        let (sh, sh_wall) = time(|| {
            let mut sh = Shredded::open(scratch2.path());
            for (_, xml) in &corpus {
                sh.ingest(xml);
            }
            sh
        });
        t.row(&[
            types.to_string(),
            corpus.len().to_string(),
            nm_tables.to_string(),
            nm_ddl.to_string(),
            fmt_dur(nm_wall),
            sh.table_count().to_string(),
            sh.ddl_events.to_string(),
            fmt_dur(sh_wall),
        ]);
    }
    t.print();
    println!(
        "\nreading: the shredded scheme's relation count grows linearly with \
         document types (≈9 element tables per type) and DDL interleaves \
         with loading; NETMARK stays at its two data tables regardless — \
         'schema-less' as Fig 5 defines it."
    );
}
