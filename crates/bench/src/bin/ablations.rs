//! Design-choice ablations called out in DESIGN.md.
//!
//! 1. **ROWID traversal vs key-index traversal** — the paper: "we have
//!    exploited the feature of physical row-ids in Oracle for very fast
//!    traversal between nodes that are related." Reconstruct document
//!    subtrees by chasing `CHILDROWID`/`SIBLINGID` pointers vs resolving
//!    children through the `PARENTNODEID` B-tree index.
//! 2. **Node-granular text index vs document-granular + rescan** — the
//!    combined `Context=X & Content=Y` query needs to know *where* in the
//!    document a term occurred; a document-granular index must re-scan
//!    candidate documents.
//! 3. **Buffer pool size** — the no-steal CLOCK pool under a query
//!    workload with a cold cache.

use netmark::{NetMark, NetMarkOptions, XdbQuery};
use netmark_bench::{banner, fmt_dur, load_netmark, median_of, TableWriter, TempDir};
use netmark_corpus::{mixed, query_workload, CorpusConfig};
use netmark_federation::match_document;
use netmark_relstore::DbOptions;

fn rowid_vs_index() {
    println!("\n-- ablation 1: ROWID traversal vs key-index traversal");
    let mut t = TableWriter::new(&[
        "docs reconstructed",
        "via ROWID chase",
        "via B-tree index",
        "slowdown",
    ]);
    let docs = mixed(&CorpusConfig::sized(300));
    let scratch = TempDir::new("abl-rowid");
    let nm = load_netmark(scratch.path(), &docs);
    let infos = nm.list_documents().expect("list");
    for &k in &[50usize, 300] {
        let sample: Vec<_> = infos.iter().take(k).collect();
        let (_, rowid_t) = median_of(3, || {
            for info in &sample {
                let (rid, _) = nm
                    .store()
                    .node_by_id(info.root_node)
                    .expect("node")
                    .expect("exists");
                let node = nm.store().reconstruct(rid).expect("reconstruct");
                assert!(node.size() > 1);
            }
        });
        let (_, index_t) = median_of(3, || {
            for info in &sample {
                let node = nm
                    .store()
                    .reconstruct_via_index(info.root_node)
                    .expect("reconstruct");
                assert!(node.size() > 1);
            }
        });
        t.row(&[
            k.to_string(),
            fmt_dur(rowid_t),
            fmt_dur(index_t),
            format!("{:.1}x", index_t.as_secs_f64() / rowid_t.as_secs_f64()),
        ]);
    }
    t.print();
}

fn index_granularity() {
    println!("\n-- ablation 2: node-granular text index vs document-granular + rescan");
    let mut t = TableWriter::new(&[
        "corpus docs",
        "query",
        "node-granular",
        "doc-granular + rescan",
        "slowdown",
    ]);
    for &n in &[500usize, 2000] {
        let docs = mixed(&CorpusConfig::sized(n));
        let scratch = TempDir::new("abl-gran");
        let nm = load_netmark(scratch.path(), &docs);
        let q = XdbQuery::context_content("Budget", "engine");
        // Node-granular: the engine's native path.
        let (rs_node, node_t) = median_of(5, || nm.query(&q).expect("query"));
        // Document-granular: find documents whose text contains the terms
        // (content search at document granularity), then fetch and rescan
        // each candidate to locate the sections.
        let (rs_doc_hits, doc_t) = median_of(5, || {
            let content_hits = nm.query(&XdbQuery::content("engine")).expect("content");
            let mut doc_names: Vec<&str> = Vec::new();
            for h in &content_hits.hits {
                if !doc_names.contains(&h.doc.as_str()) {
                    doc_names.push(&h.doc);
                }
            }
            let mut hits = 0usize;
            for name in doc_names {
                let info = nm.document_by_name(name).expect("doc").expect("exists");
                let doc = nm.reconstruct_document(info.doc_id).expect("reconstruct");
                hits += match_document(&doc, &q).len();
            }
            hits
        });
        assert_eq!(rs_node.len(), rs_doc_hits, "both strategies agree");
        t.row(&[
            n.to_string(),
            "Context=Budget & Content=engine".to_string(),
            fmt_dur(node_t),
            fmt_dur(doc_t),
            format!("{:.1}x", doc_t.as_secs_f64() / node_t.as_secs_f64()),
        ]);
    }
    t.print();
}

fn bufpool_sweep() {
    println!("\n-- ablation 3: buffer pool size (cold-cache query workload)");
    let mut t = TableWriter::new(&[
        "pool pages",
        "pool MiB",
        "workload wall",
        "hits",
        "misses",
        "evictions",
    ]);
    let docs = mixed(&CorpusConfig::sized(1500));
    let base = TempDir::new("abl-pool");
    // Build once, checkpoint, then reopen per pool size (cold cache).
    {
        let nm = load_netmark(&base.join("store"), &docs);
        nm.flush().expect("flush");
    }
    let workload = query_workload(7, 50);
    for &pages in &[64usize, 256, 4096] {
        let opts = NetMarkOptions {
            db: DbOptions {
                pool_pages: pages,
                ..DbOptions::default()
            },
            ..NetMarkOptions::default()
        };
        let nm = NetMark::open_with(&base.join("store"), opts).expect("reopen");
        let ((), wall) = netmark_bench::time(|| {
            for (label, term) in &workload {
                nm.query(&XdbQuery::context_content(label, term))
                    .expect("query");
            }
        });
        let stats = nm.store().database().pool_stats();
        t.row(&[
            pages.to_string(),
            format!("{:.1}", pages as f64 * 8.0 / 1024.0),
            fmt_dur(wall),
            stats.hits.to_string(),
            stats.misses.to_string(),
            stats.evictions.to_string(),
        ]);
    }
    t.print();
}

fn durability_sweep() {
    println!("\n-- ablation 4: commit durability (fsync per commit vs checkpoint-only)");
    let mut t = TableWriter::new(&["sync_commits", "docs", "ingest wall", "docs/s"]);
    let docs = mixed(&CorpusConfig::sized(400));
    for &sync in &[true, false] {
        let scratch = TempDir::new("abl-sync");
        let opts = NetMarkOptions {
            db: DbOptions {
                sync_commits: sync,
                ..DbOptions::default()
            },
            ..NetMarkOptions::default()
        };
        let nm = NetMark::open_with(scratch.path(), opts).expect("open");
        let ((), wall) = netmark_bench::time(|| {
            for d in &docs {
                nm.insert_file(&d.name, &d.content).expect("ingest");
            }
        });
        t.row(&[
            sync.to_string(),
            docs.len().to_string(),
            fmt_dur(wall),
            format!("{:.0}", docs.len() as f64 / wall.as_secs_f64()),
        ]);
    }
    t.print();
}

fn main() {
    banner(
        "ABLATIONS",
        "design-choice ablations (DESIGN.md §4)",
        "physical ROWID pointers, node-granular indexing, and a modest \
         buffer pool are each load-bearing for the paper's 'fast' claims",
    );
    rowid_vs_index();
    index_granularity();
    bufpool_sweep();
    durability_sweep();
    println!(
        "\nreading: every chase through a B-tree instead of a ROWID multiplies \
         traversal cost; rescanning documents instead of indexing nodes \
         multiplies combined-query cost. Buffer-pool misses drop to ~zero \
         once the working set fits (32 MiB here); wall time barely moves \
         because the OS page cache sits behind the pool at this scale — \
         the pool's job is bounding memory, not hiding a cold disk."
    );
}
