//! FIG9 — the query read-path overhaul: result cache, parallel term
//! fan-out, and per-stage tracing.
//!
//! Not a figure from the paper: this measures the reproduction's own
//! QueryEngine against the serial single-shot read path it replaced.
//! Three configurations answer the same query mix over the same corpus:
//!
//! - **serial**  — workers=0, cache=0, memo=0: the old `Searcher`
//!   behaviour (every query re-executes everything, single-threaded);
//! - **cold**    — the engine with its worker pool and context memo but
//!   the result cache bypassed (`execute_uncached`);
//! - **cached**  — the full read path (`NetMark::query`), repeated
//!   queries served from the generation-stamped result cache.
//!
//! `FIG9_DOCS` overrides the corpus size (CI smoke runs use a small one).

use netmark::{NetMark, NetMarkOptions, QueryEngineOptions, XdbQuery};
use netmark_bench::{banner, fmt_dur, median_of, TableWriter, TempDir};
use netmark_corpus::{mixed, CorpusConfig, RawDoc};

fn load_with(dir: &std::path::Path, docs: &[RawDoc], query: QueryEngineOptions) -> NetMark {
    let nm = NetMark::open_with(
        dir,
        NetMarkOptions {
            query,
            ..NetMarkOptions::default()
        },
    )
    .expect("open netmark");
    for d in docs {
        nm.insert_file(&d.name, &d.content).expect("ingest");
    }
    nm
}

fn main() {
    banner(
        "FIG9",
        "query read-path: cache, parallel fan-out, per-stage tracing",
        "a long-lived QueryEngine answers repeated queries from a \
         generation-stamped cache and fans multi-term content queries \
         across a worker pool; per-stage timings are exported via \
         GET /xdb/stats",
    );
    let n: usize = std::env::var("FIG9_DOCS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1500);
    let docs = mixed(&CorpusConfig::sized(n));
    println!("corpus: {n} documents\n");

    let serial_opts = QueryEngineOptions {
        workers: 0,
        cache_capacity: 0,
        memo_capacity: 0,
        ..QueryEngineOptions::default()
    };
    let scratch_a = TempDir::new("fig9-serial");
    let nm_serial = load_with(scratch_a.path(), &docs, serial_opts);
    let scratch_b = TempDir::new("fig9-engine");
    let nm = load_with(scratch_b.path(), &docs, QueryEngineOptions::default());

    let queries: Vec<(&str, XdbQuery)> = vec![
        ("Content=shuttle", XdbQuery::content("shuttle")),
        ("Content=budget cost", XdbQuery::content("budget cost")),
        (
            "Content=shuttle engine telemetry",
            XdbQuery::content("shuttle engine telemetry"),
        ),
        (
            "Context=Budget & Content=funding",
            XdbQuery::context_content("Budget", "funding"),
        ),
    ];

    let mut t = TableWriter::new(&[
        "query",
        "hits",
        "serial cold",
        "engine cold",
        "cold speedup",
        "cached",
        "hit speedup",
    ]);
    let mut ratio_multi_term = 0.0f64;
    for (label, q) in &queries {
        let (rs_serial, serial) =
            median_of(7, || nm_serial.engine().execute_uncached(q).expect("query"));
        let (rs_cold, cold) = median_of(7, || nm.engine().execute_uncached(q).expect("query"));
        assert_eq!(
            rs_serial.hits, rs_cold.hits,
            "parallel engine must agree with the serial baseline"
        );
        // Warm the cache once, then measure the hit path.
        nm.query(q).expect("warm");
        let (rs_hit, hit) = median_of(9, || nm.query(q).expect("query"));
        assert_eq!(rs_cold.hits, rs_hit.hits, "cache must be transparent");
        let cold_speedup = serial.as_secs_f64() / cold.as_secs_f64().max(1e-9);
        let hit_speedup = cold.as_secs_f64() / hit.as_secs_f64().max(1e-9);
        if label.contains("telemetry") {
            ratio_multi_term = hit_speedup;
        }
        t.row(&[
            label.to_string(),
            rs_cold.len().to_string(),
            fmt_dur(serial),
            fmt_dur(cold),
            format!("{cold_speedup:.1}x"),
            fmt_dur(hit),
            format!("{hit_speedup:.1}x"),
        ]);
    }
    t.print();

    // The same counters any client can scrape from GET /xdb/stats.
    let s = nm.query_stats();
    println!("\nper-stage totals (engine configuration, all queries above):");
    let mut st = TableWriter::new(&["stage", "cumulative", "share"]);
    let total = s.total_time.as_secs_f64().max(1e-9);
    for (stage, d) in [
        ("index lookup", s.index_time),
        ("context walk", s.walk_time),
        ("intersection", s.intersect_time),
        ("content collect", s.collect_time),
    ] {
        st.row(&[
            stage.to_string(),
            fmt_dur(d),
            format!("{:.0}%", 100.0 * d.as_secs_f64() / total),
        ]);
    }
    st.print();
    println!(
        "queries={} cache hits={} misses={} parallel={} memo hits={} misses={}",
        s.queries, s.cache_hits, s.cache_misses, s.parallel_queries, s.memo_hits, s.memo_misses
    );
    println!(
        "\nreading: repeated queries are answered from the result cache at \
         memory-lookup latency (invalidated by ingest via the store \
         generation + engine epoch stamps); cold multi-term content \
         queries fan per-term index probes across the worker pool."
    );
    assert!(
        ratio_multi_term >= 10.0,
        "acceptance: cache-hit latency must be >= 10x below cold execution \
         for the multi-term query (got {ratio_multi_term:.1}x)"
    );
}
