//! FIG11 — MVCC snapshot reads for relstore: single writer, lock-free
//! readers end-to-end.
//!
//! Not a figure from the paper: this measures the reproduction's own
//! storage substrate. Three phases:
//!
//! 1. **Query p99 under streaming ingest** — reader threads execute a
//!    query mix (cache bypassed, so every query walks the store) while a
//!    writer streams `insert_file` batches continuously. Three sides:
//!    *idle* (no writer, the floor), *MVCC* (each query pins a versioned
//!    read view and never takes a page lock), and *locked baseline* (each
//!    query first acquires the database write lock, the pre-MVCC
//!    discipline where readers wait out every commit). Acceptance: MVCC
//!    p99 under ingest stays within 2x of the idle p99.
//! 2. **Byte-identical results** — at quiesce, every query's serialized
//!    XML from the concurrent engine must equal a fresh serial engine
//!    (workers=0) over a store built by the same ingest sequence with no
//!    concurrent readers.
//! 3. **View hygiene** — after the storm, `live_views` is zero: every
//!    query released its pin.
//!
//! `FIG11_DOCS` overrides the corpus size and `FIG11_SECS` the phase-1
//! measurement window (CI smoke runs use small values).

use netmark::{NetMark, NetMarkOptions, QueryEngineOptions, XdbQuery};
use netmark_bench::{banner, fmt_dur, percentile, TableWriter, TempDir};
use netmark_corpus::{mixed, CorpusConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

fn query_mix() -> Vec<XdbQuery> {
    vec![
        XdbQuery::content("shuttle"),
        XdbQuery::content("budget cost"),
        XdbQuery::content("shuttle engine telemetry"),
        XdbQuery::context_content("Budget", "funding"),
    ]
}

/// Readers hammer `exec` with the query mix while `writer` runs; returns
/// all observed query latencies.
fn hammer<W, E>(readers: usize, writer: W, exec: E) -> Vec<Duration>
where
    W: FnOnce() + Send,
    E: Fn(&XdbQuery) -> usize + Sync,
{
    let queries = query_mix();
    let done = AtomicBool::new(false);
    let all = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..readers)
            .map(|r| {
                let queries = &queries;
                let done = &done;
                let all = &all;
                let exec = &exec;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    let mut i = r;
                    while !done.load(Ordering::Relaxed) {
                        let q = &queries[i % queries.len()];
                        let t = Instant::now();
                        let n = exec(q);
                        local.push(t.elapsed());
                        std::hint::black_box(n);
                        i += 1;
                    }
                    all.lock().unwrap().extend(local);
                })
            })
            .collect();
        writer();
        done.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().expect("reader");
        }
    });
    all.into_inner().unwrap()
}

/// Stream small filler documents until `deadline`, recording the exact
/// ingest order for the serial reference replay.
///
/// The filler vocabulary is disjoint from the query mix, so streaming
/// exercises the full commit machinery — WAL, copy-on-write overlays,
/// version publication, checkpoints — without growing the measured
/// queries' result sets: any p99 movement is concurrency, not data
/// volume. The short sleep keeps the writer's duty cycle low so the
/// figure isolates locking behaviour, not scheduler oversubscription.
fn stream_ingest(
    nm: &NetMark,
    tag: &str,
    deadline: Instant,
    ledger: &Mutex<Vec<(String, String)>>,
) {
    let mut i = 0usize;
    while Instant::now() < deadline {
        let name = format!("stream-{tag}-{i}.txt");
        let content = format!("# Filler\nzephyr quartz marl gneiss batch {i}\n");
        nm.insert_file(&name, &content).expect("stream ingest");
        ledger.lock().unwrap().push((name, content));
        i += 1;
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn main() {
    banner(
        "FIG11",
        "MVCC snapshot reads: single writer, lock-free readers",
        "every query pins one versioned read view (copy-on-write pages \
         published at commit) and never takes a page lock; checkpoints \
         wait out laggard views up to max_view_lag, then evict them",
    );
    let n: usize = std::env::var("FIG11_DOCS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(800);
    let secs: u64 = std::env::var("FIG11_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    // Lock-free reads buy wall-clock only when readers have cores to run
    // on: with the writer pinned to one, give the readers the rest (at
    // least one — on a single-core box the figure degrades to measuring
    // writer interference, which is still the acceptance criterion).
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let readers = (cores.saturating_sub(1)).clamp(1, 4);
    let window = Duration::from_secs(secs);
    println!("corpus: {n} documents, {readers} readers ({cores} cores), {secs}s/side\n");

    let docs = mixed(&CorpusConfig::sized(n));
    let scratch = TempDir::new("fig11");
    // Cache and memo off: both are generation-stamped, so an idle engine
    // keeps them warm while a streaming engine has them invalidated by
    // every commit — leaving them on would fold cache warmth into a
    // figure that is about locking. Cold execution both sides.
    let nm = NetMark::open_with(
        scratch.path(),
        NetMarkOptions {
            query: QueryEngineOptions {
                cache_capacity: 0,
                memo_capacity: 0,
                ..QueryEngineOptions::default()
            },
            ..NetMarkOptions::default()
        },
    )
    .expect("open netmark");
    let ledger = Mutex::new(Vec::new());
    for d in &docs {
        nm.insert_file(&d.name, &d.content).expect("ingest");
        ledger
            .lock()
            .unwrap()
            .push((d.name.clone(), d.content.clone()));
    }
    // ---- Phase 1: query p99 idle vs under streaming ingest --------------
    let mut idle = hammer(
        readers,
        || std::thread::sleep(window),
        |q| nm.engine().execute_uncached(q).expect("query").len(),
    );

    let mut mvcc = {
        let deadline = Instant::now() + window;
        hammer(
            readers,
            || stream_ingest(&nm, "mvcc", deadline, &ledger),
            |q| nm.engine().execute_uncached(q).expect("query").len(),
        )
    };

    // Locked baseline: the pre-MVCC read discipline — a query first takes
    // the database write lock, so it waits out (and is waited out by)
    // every streaming commit, and concurrent queries convoy behind each
    // other.
    let db = nm.store().database();
    let mut locked = {
        let deadline = Instant::now() + window;
        hammer(
            readers,
            || stream_ingest(&nm, "locked", deadline, &ledger),
            |q| {
                let _lock = db.begin();
                nm.engine().execute_uncached(q).expect("query").len()
            },
        )
    };

    let (ip50, ip99) = (percentile(&mut idle, 0.50), percentile(&mut idle, 0.99));
    let (mp50, mp99) = (percentile(&mut mvcc, 0.50), percentile(&mut mvcc, 0.99));
    let (lp50, lp99) = (percentile(&mut locked, 0.50), percentile(&mut locked, 0.99));
    let mut t = TableWriter::new(&["read path", "writer", "queries", "p50", "p99"]);
    t.row(&[
        "MVCC views".into(),
        "idle".into(),
        idle.len().to_string(),
        fmt_dur(ip50),
        fmt_dur(ip99),
    ]);
    t.row(&[
        "MVCC views".into(),
        "streaming".into(),
        mvcc.len().to_string(),
        fmt_dur(mp50),
        fmt_dur(mp99),
    ]);
    t.row(&[
        "write-locked".into(),
        "streaming".into(),
        locked.len().to_string(),
        fmt_dur(lp50),
        fmt_dur(lp99),
    ]);
    t.print();
    let ingest_ratio = mp99.as_secs_f64() / ip99.as_secs_f64().max(1e-9);
    let locked_ratio = lp99.as_secs_f64() / mp99.as_secs_f64().max(1e-9);
    println!(
        "p99 under ingest: {ingest_ratio:.2}x idle; locked baseline p99: \
         {locked_ratio:.1}x the MVCC path\n"
    );

    // ---- Phase 2: byte-identical to a serial reference ------------------
    // Replay the exact ingest order (initial corpus + both streams) into a
    // fresh store and answer with the serial engine: no worker pool, no
    // cache, no concurrent anything.
    let serial_scratch = TempDir::new("fig11-serial");
    let nm_serial = NetMark::open_with(
        serial_scratch.path(),
        NetMarkOptions {
            query: QueryEngineOptions {
                workers: 0,
                cache_capacity: 0,
                memo_capacity: 0,
                ..QueryEngineOptions::default()
            },
            ..NetMarkOptions::default()
        },
    )
    .expect("open serial reference");
    let replay = ledger.into_inner().unwrap();
    for (name, content) in &replay {
        nm_serial.insert_file(name, content).expect("replay ingest");
    }
    for q in &query_mix() {
        let concurrent = nm.engine().execute_uncached(q).expect("query").to_xml();
        let serial = nm_serial
            .engine()
            .execute_uncached(q)
            .expect("query")
            .to_xml();
        assert_eq!(
            concurrent, serial,
            "acceptance: results must be byte-identical to serial execution"
        );
    }
    println!(
        "identical results: {} query shapes byte-identical to the serial \
         reference across {} documents",
        query_mix().len(),
        replay.len()
    );

    // ---- Phase 3: view hygiene ------------------------------------------
    let m = db.mvcc_stats();
    println!(
        "\nmvcc: version={} publishes={} views opened={} evicted={} live={} \
         overlay={} pages / {} bytes",
        m.version,
        m.publishes,
        m.views_opened,
        m.views_evicted,
        m.live_views,
        m.overlay_pages,
        m.overlay_bytes
    );
    assert_eq!(m.live_views, 0, "every query released its view pin");

    println!(
        "\nreading: the relstore write path publishes copy-on-write page \
         overlays at commit through a left-right snapshot cell, so a query \
         pins one committed version and reads it without page locks; the \
         streaming writer neither blocks readers nor is blocked by them, \
         while the locked baseline convoys every query behind every commit."
    );
    assert!(
        ingest_ratio <= 2.0,
        "acceptance: MVCC query p99 under streaming ingest must stay \
         within 2x of the idle p99 (got {ingest_ratio:.2}x)"
    );
}
