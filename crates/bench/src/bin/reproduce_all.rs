//! Runs every table/figure harness in sequence — the one-command
//! reproduction of the paper's evaluation section.
//!
//! ```sh
//! cargo run --release -p netmark-bench --bin reproduce_all
//! ```

use std::process::Command;

const TARGETS: &[&str] = &[
    "fig1_cost_scaling",
    "tbl1_assembly",
    "fig3_pipeline",
    "fig5_schema_less",
    "fig6_context_search",
    "fig7_xslt",
    "fig8_federation",
    "fig9_query_engine",
    "fig10_segmented_index",
    "fig11_mvcc_reads",
    "fig12_c10k",
    "fig13_shard_scaling",
    "fig14_ranked_search",
    "fig15_topk_pruning",
    "sec4_top_employees",
    "ablations",
];

fn main() {
    let exe = std::env::current_exe().expect("own path");
    let bin_dir = exe.parent().expect("bin dir");
    let mut failures = Vec::new();
    for target in TARGETS {
        let path = bin_dir.join(target);
        let status = if path.exists() {
            Command::new(&path).status()
        } else {
            // Fall back to cargo when siblings aren't built yet.
            Command::new("cargo")
                .args([
                    "run",
                    "--release",
                    "-q",
                    "-p",
                    "netmark-bench",
                    "--bin",
                    target,
                ])
                .status()
        };
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => failures.push(format!("{target}: exit {s}")),
            Err(e) => failures.push(format!("{target}: {e}")),
        }
    }
    println!("\n==================================================================");
    if failures.is_empty() {
        println!("reproduce_all: all {} harnesses completed", TARGETS.len());
    } else {
        println!("reproduce_all: {} failures:", failures.len());
        for f in &failures {
            println!("  {f}");
        }
        std::process::exit(1);
    }
}
