//! FIG6 — Fig 6: context search (and the paper's three query shapes).
//!
//! "A context search query, such as Context=Introduction will return the
//! content portion in the 'Introduction' sections … Content=Shuttle will
//! return all documents that contain the term 'Shuttle' … one can also
//! combine context and content searches." Measured here: latency and hit
//! counts of the three shapes as the corpus grows.

use netmark::XdbQuery;
use netmark_bench::{banner, fmt_dur, load_netmark, median_of, TableWriter, TempDir};
use netmark_corpus::{mixed, CorpusConfig};

fn main() {
    banner(
        "FIG6",
        "Fig 6 — context search across the document collection",
        "context/content queries return section-level results across all \
         documents; index-backed, so latency grows with hits, not corpus",
    );
    let queries: Vec<(&str, XdbQuery)> = vec![
        ("Context=Budget", XdbQuery::context("Budget")),
        ("Content=shuttle", XdbQuery::content("shuttle")),
        (
            "Context=Technology Gap & Content=shrinking",
            XdbQuery::context_content("Technology Gap", "shrinking"),
        ),
        (
            "Context=Corrective Action & Content=harness",
            XdbQuery::context_content("Corrective Action", "harness"),
        ),
    ];
    let mut t = TableWriter::new(&["corpus docs", "query", "hits", "median latency"]);
    for &n in &[250usize, 1000, 4000] {
        let docs = mixed(&CorpusConfig::sized(n));
        let scratch = TempDir::new("fig6");
        let nm = load_netmark(scratch.path(), &docs);
        for (label, q) in &queries {
            let (rs, lat) = median_of(7, || nm.query(q).expect("query"));
            t.row(&[
                n.to_string(),
                label.to_string(),
                rs.len().to_string(),
                fmt_dur(lat),
            ]);
        }
    }
    t.print();
    println!(
        "\nreading: pure context search stays fast as the corpus grows \
         (CTXKEY index lookup + per-hit sibling walk); content queries \
         scale with the posting-list sizes of their terms — the paper's \
         index-first query processing (§2.1.4)."
    );
}
