//! `netmark-bench`: the table/figure reproduction harness.
//!
//! One binary per evaluation artifact of the paper (see DESIGN.md §4):
//!
//! | binary | paper artifact |
//! |---|---|
//! | `fig1_cost_scaling` | Fig 1 — integration cost vs consumers |
//! | `tbl1_assembly` | Table 1 — application assembly effort |
//! | `fig3_pipeline` | Fig 3 — ingestion pipeline throughput |
//! | `fig5_schema_less` | Fig 5 — schema-less vs shredded storage |
//! | `fig6_context_search` | Fig 6 — context/content search |
//! | `fig7_xslt` | Fig 7 — XDB query + XSLT composition |
//! | `fig8_federation` | Fig 8 — scalable federation |
//! | `fig9_query_engine` | query read-path: cache, parallel fan-out, stage tracing |
//! | `fig10_segmented_index` | segmented index: lock-free reads under ingest, compaction, incremental saves |
//! | `sec4_top_employees` | §4 — NETMARK vs GAV head-to-head |
//! | `ablations` | design-choice ablations (ROWID, index granularity, buffer pool) |
//! | `reproduce_all` | runs everything above in sequence |
//!
//! Criterion micro-benchmarks live in `benches/micro.rs` (`cargo bench`).

#![warn(missing_docs)]

use netmark::NetMark;
use netmark_corpus::RawDoc;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// A scratch directory removed on drop.
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates a fresh scratch directory under the system temp dir.
    pub fn new(tag: &str) -> TempDir {
        let path = std::env::temp_dir().join(format!(
            "netmark-bench-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("create scratch dir");
        TempDir { path }
    }

    /// The directory path.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }

    /// A sub-path inside the scratch directory.
    pub fn join(&self, sub: &str) -> PathBuf {
        self.path.join(sub)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Times one execution.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let t = Instant::now();
    let r = f();
    (r, t.elapsed())
}

/// Median wall time of `k` executions (the result of the last run is
/// returned for sanity checks).
pub fn median_of<R>(k: usize, mut f: impl FnMut() -> R) -> (R, Duration) {
    assert!(k >= 1);
    let mut times = Vec::with_capacity(k);
    let mut last = None;
    for _ in 0..k {
        let (r, d) = time(&mut f);
        times.push(d);
        last = Some(r);
    }
    times.sort();
    (last.expect("k >= 1"), times[times.len() / 2])
}

/// Opens a NETMARK instance in `dir` and ingests `docs`.
pub fn load_netmark(dir: &std::path::Path, docs: &[RawDoc]) -> NetMark {
    let nm = NetMark::open(dir).expect("open netmark");
    for d in docs {
        nm.insert_file(&d.name, &d.content).expect("ingest");
    }
    nm
}

/// Fixed-width table printer so every harness emits the same shape of
/// output the paper's tables/figures use.
pub struct TableWriter {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TableWriter {
    /// Starts a table with column headers.
    pub fn new(headers: &[&str]) -> TableWriter {
        TableWriter {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds one row (stringified cells).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity");
        self.rows.push(cells.to_vec());
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(c);
                for _ in c.len()..widths[i] {
                    out.push(' ');
                }
            }
            out.push('\n');
        };
        line(&self.headers, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &widths, &mut out);
        }
        out
    }

    /// Prints the rendered table.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// The `p`-th percentile (0.0–1.0) of a latency sample, by
/// nearest-rank on the sorted slice. Sorts `samples` in place.
pub fn percentile(samples: &mut [Duration], p: f64) -> Duration {
    assert!(!samples.is_empty(), "percentile of an empty sample");
    assert!((0.0..=1.0).contains(&p), "p out of range");
    samples.sort_unstable();
    let rank = ((p * samples.len() as f64).ceil() as usize).max(1) - 1;
    samples[rank.min(samples.len() - 1)]
}

/// Formats a duration in adaptive units.
pub fn fmt_dur(d: Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us}us")
    } else if us < 1_000_000 {
        format!("{:.2}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

/// Prints a standard experiment banner.
pub fn banner(id: &str, paper_artifact: &str, claim: &str) {
    println!("\n==================================================================");
    println!("{id} — {paper_artifact}");
    println!("paper claim: {claim}");
    println!("==================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_writer_aligns() {
        let mut t = TableWriter::new(&["a", "bbbb"]);
        t.row(&["xxxxx".into(), "y".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("a    "));
        assert!(lines[2].starts_with("xxxxx"));
    }

    #[test]
    fn median_is_stable() {
        let (_, d) = median_of(5, || std::thread::sleep(Duration::from_micros(100)));
        assert!(d >= Duration::from_micros(50));
    }

    #[test]
    fn tempdir_cleans_up() {
        let p;
        {
            let t = TempDir::new("x");
            p = t.path().to_path_buf();
            assert!(p.exists());
        }
        assert!(!p.exists());
    }

    #[test]
    fn percentile_nearest_rank() {
        let mut v: Vec<Duration> = (1..=100).map(Duration::from_micros).collect();
        assert_eq!(percentile(&mut v, 0.50), Duration::from_micros(50));
        assert_eq!(percentile(&mut v, 0.99), Duration::from_micros(99));
        assert_eq!(percentile(&mut v, 1.0), Duration::from_micros(100));
        assert_eq!(percentile(&mut v, 0.0), Duration::from_micros(1));
        let mut one = vec![Duration::from_micros(7)];
        assert_eq!(percentile(&mut one, 0.99), Duration::from_micros(7));
    }

    #[test]
    fn fmt_dur_units() {
        assert_eq!(fmt_dur(Duration::from_micros(5)), "5us");
        assert_eq!(fmt_dur(Duration::from_millis(5)), "5.00ms");
        assert_eq!(fmt_dur(Duration::from_secs(5)), "5.00s");
    }
}
