//! Criterion micro-benchmarks over the substrate layers.
//!
//! These are not paper figures; they pin the costs the figure-level
//! harnesses (`src/bin/*`) are built from: page ops, B-tree ops, tuple
//! codec, tokenizer, upmarkers, XPath, and the end-to-end single-document
//! paths (ingest, the three query shapes).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use netmark::{NetMark, XdbQuery};
use netmark_corpus::{mixed, proposals, CorpusConfig};
use netmark_relstore::page::{PageType, SlottedPage, PAGE_SIZE};
use netmark_relstore::tuple::{decode_row, encode_row, Value};
use netmark_relstore::RowId;
use netmark_sgml::{parse_html, parse_xml, NodeTypeConfig};
use netmark_textindex::{tokenize_text, InvertedIndex, TextQuery};
use netmark_xslt::select;
use std::path::PathBuf;

fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("netmark-micro-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn bench_page(c: &mut Criterion) {
    c.bench_function("page/insert_100_cells", |b| {
        let cell = vec![7u8; 64];
        b.iter_batched(
            || vec![0u8; PAGE_SIZE],
            |mut buf| {
                let mut p = SlottedPage::init(&mut buf, PageType::Heap);
                for _ in 0..100 {
                    p.insert(&cell).unwrap();
                }
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("page/get", |b| {
        let mut buf = vec![0u8; PAGE_SIZE];
        let mut p = SlottedPage::init(&mut buf, PageType::Heap);
        for _ in 0..100 {
            p.insert(&[9u8; 64]).unwrap();
        }
        b.iter(|| {
            for s in 0..100u16 {
                std::hint::black_box(p.get(s));
            }
        })
    });
}

fn bench_tuple(c: &mut Criterion) {
    let row = vec![
        Value::Int(42),
        Value::Int(7),
        Value::Int(3),
        Value::Text("Context".into()),
        Value::Text("Technology Gap".into()),
        Value::Text("technology gap".into()),
        Value::Rowid(RowId { page: 3, slot: 9 }),
        Value::Int(41),
        Value::Rowid(RowId { page: 3, slot: 10 }),
        Value::Rowid(RowId { page: 4, slot: 0 }),
        Value::Text(String::new()),
    ];
    c.bench_function("tuple/encode_xml_row", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(96);
            encode_row(&row, &mut buf);
            std::hint::black_box(buf)
        })
    });
    let mut buf = Vec::new();
    encode_row(&row, &mut buf);
    c.bench_function("tuple/decode_xml_row", |b| {
        b.iter(|| std::hint::black_box(decode_row(&buf).unwrap()))
    });
}

fn bench_btree(c: &mut Criterion) {
    use netmark_relstore::btree::BTree;
    use netmark_relstore::buffer::BufferPool;
    use netmark_relstore::disk::FileManager;
    use std::sync::Arc;
    let dir = scratch("btree");
    let fm = Arc::new(FileManager::open(&dir).unwrap());
    let pool = Arc::new(BufferPool::new(Arc::clone(&fm), 512));
    let f = fm.open_file("bench.idx").unwrap();
    let tree = BTree::open(pool, f).unwrap();
    for i in 0..10_000u32 {
        tree.insert(format!("key{i:06}").as_bytes(), &i.to_le_bytes())
            .unwrap();
    }
    c.bench_function("btree/get_hot_10k", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 37) % 10_000;
            std::hint::black_box(tree.get(format!("key{i:06}").as_bytes()).unwrap())
        })
    });
    c.bench_function("btree/insert_sequential", |b| {
        let mut i = 10_000u32;
        b.iter(|| {
            i += 1;
            tree.insert(format!("key{i:06}").as_bytes(), &i.to_le_bytes())
                .unwrap()
        })
    });
}

fn bench_text(c: &mut Criterion) {
    let text = "The space shuttle engine controller faulted during ascent and \
                the technology gap is shrinking across the aeronautics program";
    c.bench_function("textindex/tokenize_20_words", |b| {
        b.iter(|| std::hint::black_box(tokenize_text(text)))
    });
    let mut ix = InvertedIndex::new();
    for i in 0..20_000u64 {
        ix.add(i + 1, text);
        // Vary a term so queries have selectivity.
        if i % 10 == 0 {
            // ids ascend; nothing else needed
        }
    }
    c.bench_function("textindex/term_query_dense", |b| {
        b.iter(|| std::hint::black_box(ix.execute(&TextQuery::Term("shuttle".into()))))
    });
    c.bench_function("textindex/phrase_query", |b| {
        b.iter(|| std::hint::black_box(ix.execute(&TextQuery::phrase("technology gap"))))
    });
}

fn bench_parsers(c: &mut Criterion) {
    let xml_cfg = NodeTypeConfig::xml_default();
    let html_cfg = NodeTypeConfig::html_default();
    let xml =
        "<doc><Context>Budget</Context><Content><p>two <b>million</b> dollars</p></Content></doc>";
    let html = "<html><body><h1>Budget</h1><p>two <b>million</b> dollars<p>next</body></html>";
    c.bench_function("sgml/parse_xml_small", |b| {
        b.iter(|| std::hint::black_box(parse_xml(xml, &xml_cfg).unwrap()))
    });
    c.bench_function("sgml/parse_html_small", |b| {
        b.iter(|| std::hint::black_box(parse_html(html, &html_cfg)))
    });
    let wdoc = &proposals(&CorpusConfig::sized(1))[0];
    c.bench_function("docformats/upmark_proposal", |b| {
        b.iter(|| std::hint::black_box(netmark_docformats::upmark(&wdoc.name, &wdoc.content)))
    });
}

fn bench_xpath(c: &mut Criterion) {
    let cfg = NodeTypeConfig::xml_default();
    let doc = parse_xml(
        "<results><hit doc='a'><Context>Budget</Context><Content>x</Content></hit>\
         <hit doc='b'><Context>Risks</Context><Content>y</Content></hit></results>",
        &cfg,
    )
    .unwrap();
    c.bench_function("xslt/xpath_descendant", |b| {
        b.iter(|| std::hint::black_box(select("//Content", &doc).unwrap()))
    });
    c.bench_function("xslt/xpath_predicate", |b| {
        b.iter(|| std::hint::black_box(select("hit[@doc='b']/Context", &doc).unwrap()))
    });
}

fn bench_engine(c: &mut Criterion) {
    let dir = scratch("engine");
    let nm = NetMark::open(&dir).unwrap();
    for d in mixed(&CorpusConfig::sized(400)) {
        nm.insert_file(&d.name, &d.content).unwrap();
    }
    c.bench_function("netmark/context_query_400docs", |b| {
        let q = XdbQuery::context("Budget");
        b.iter(|| std::hint::black_box(nm.query(&q).unwrap()))
    });
    c.bench_function("netmark/content_query_400docs", |b| {
        let q = XdbQuery::content("shuttle");
        b.iter(|| std::hint::black_box(nm.query(&q).unwrap()))
    });
    c.bench_function("netmark/combined_query_400docs", |b| {
        let q = XdbQuery::context_content("Budget", "telemetry");
        b.iter(|| std::hint::black_box(nm.query(&q).unwrap()))
    });
    let doc = &proposals(&CorpusConfig::sized(1))[0];
    let mut i = 0usize;
    c.bench_function("netmark/ingest_proposal", |b| {
        b.iter(|| {
            i += 1;
            nm.insert_file(&format!("p{i}.wdoc"), &doc.content).unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_page, bench_tuple, bench_btree, bench_text, bench_parsers, bench_xpath, bench_engine
}
criterion_main!(benches);
