//! `netmark-corpus`: the synthetic stand-ins for the paper's NASA corpora.
//!
//! The paper's applications run over proposals, task plans, anomaly
//! databases, lessons-learned pages, risk decks and spreadsheets — none of
//! which are available. Per DESIGN.md's substitution rule, this crate
//! generates seeded synthetic equivalents *in raw source formats* (wdoc,
//! pdoc, sdoc, html, csv) with section vocabularies matching the paper's
//! examples (Budget, Technology Gap, Title, Engine, Shuttle, …), so every
//! experiment exercises the full upmark-ingest-query pipeline on inputs of
//! the right shape. Everything is deterministic in the seed.

#![warn(missing_docs)]

pub mod generate;
pub mod words;

pub use generate::{
    anomaly_reports, lessons_learned, mixed, personnel_csv, proposals, query_workload, risk_decks,
    spreadsheets, task_plans, CorpusConfig, RawDoc,
};
pub use words::{body_text, title_text, BODY_WORDS, SECTION_NAMES};
