//! Vocabulary and text generation.
//!
//! Section names and terms mirror the paper's running examples (Budget,
//! Technology Gap, Introduction, Shuttle, Engine, …) so generated corpora
//! exercise exactly the queries the paper illustrates.

use rand::rngs::SmallRng;
use rand::Rng;

/// Section headings that appear across generated documents. The first few
/// are the paper's own examples.
pub const SECTION_NAMES: &[&str] = &[
    "Introduction",
    "Budget",
    "Technology Gap",
    "Abstract",
    "Summary",
    "Schedule",
    "Risks",
    "Approach",
    "Staffing",
    "Facilities",
    "Milestones",
    "Deliverables",
    "Corrective Action",
    "Recommendation",
    "Lessons Learned",
    "Cost Details",
    "Background",
    "Objectives",
    "Evaluation",
    "Conclusion",
];

/// Body vocabulary (NASA-flavoured).
pub const BODY_WORDS: &[&str] = &[
    "shuttle",
    "engine",
    "controller",
    "ascent",
    "orbit",
    "payload",
    "harness",
    "anomaly",
    "mission",
    "launch",
    "propulsion",
    "thermal",
    "avionics",
    "telemetry",
    "sensor",
    "valve",
    "test",
    "review",
    "analysis",
    "design",
    "budget",
    "cost",
    "schedule",
    "milestone",
    "proposal",
    "research",
    "flight",
    "crew",
    "safety",
    "system",
    "integration",
    "module",
    "spacecraft",
    "trajectory",
    "fuel",
    "oxidizer",
    "nozzle",
    "turbine",
    "inspection",
    "procedure",
    "requirement",
    "verification",
    "assembly",
    "component",
    "interface",
    "shrinking",
    "growing",
    "funding",
    "division",
    "aeronautics",
    "science",
    "technology",
    "gap",
    "program",
    "project",
    "task",
    "plan",
    "report",
    "document",
    "center",
    "ames",
    "johnson",
    "kennedy",
    "goddard",
    "langley",
    "marshall",
    "dryden",
    "glenn",
    "stennis",
];

/// Deterministically picks one item.
pub fn pick<'a>(rng: &mut SmallRng, items: &'a [&'a str]) -> &'a str {
    items[rng.gen_range(0..items.len())]
}

/// Generates `n` space-separated body words.
pub fn body_text(rng: &mut SmallRng, n: usize) -> String {
    let mut out = String::with_capacity(n * 8);
    for i in 0..n {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(pick(rng, BODY_WORDS));
    }
    if !out.is_empty() {
        out.push('.');
    }
    out
}

/// Generates a sentence-cased phrase of `n` words (for titles).
pub fn title_text(rng: &mut SmallRng, n: usize) -> String {
    let mut out = String::new();
    for i in 0..n {
        if i > 0 {
            out.push(' ');
        }
        let w = pick(rng, BODY_WORDS);
        if i == 0 {
            let mut cs = w.chars();
            if let Some(first) = cs.next() {
                out.extend(first.to_uppercase());
                out.push_str(cs.as_str());
            }
        } else {
            out.push_str(w);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        assert_eq!(body_text(&mut a, 20), body_text(&mut b, 20));
    }

    #[test]
    fn lengths_and_shapes() {
        let mut rng = SmallRng::seed_from_u64(1);
        let t = body_text(&mut rng, 5);
        assert_eq!(t.split_whitespace().count(), 5);
        assert!(t.ends_with('.'));
        assert_eq!(body_text(&mut rng, 0), "");
        let title = title_text(&mut rng, 3);
        assert!(title.chars().next().unwrap().is_uppercase());
    }
}
