//! Seeded document generators, one per NASA corpus the paper's
//! applications draw on.
//!
//! Each generator emits *raw format text* (`.wdoc`, `.pdoc`, `.sdoc`,
//! `.html`, `.txt`, `.csv`) — the same bytes a user would drop in the
//! NETMARK folder — so ingestion benches exercise the full upmark pipeline.
//! Everything is deterministic in the seed.

use crate::words::{body_text, pick, title_text, SECTION_NAMES};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A generated raw file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawDoc {
    /// File name (extension selects the upmarker).
    pub name: String,
    /// Raw file contents.
    pub content: String,
}

/// Knobs shared by the generators.
#[derive(Debug, Clone, Copy)]
pub struct CorpusConfig {
    /// RNG seed; same seed → same corpus.
    pub seed: u64,
    /// Number of documents.
    pub docs: usize,
    /// Sections per document (inclusive range).
    pub sections: (usize, usize),
    /// Paragraphs per section (inclusive range).
    pub paragraphs: (usize, usize),
    /// Words per paragraph (inclusive range).
    pub words: (usize, usize),
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            seed: 42,
            docs: 100,
            sections: (3, 8),
            paragraphs: (1, 4),
            words: (15, 60),
        }
    }
}

impl CorpusConfig {
    /// Convenience: `docs` documents with everything else default.
    pub fn sized(docs: usize) -> CorpusConfig {
        CorpusConfig {
            docs,
            ..Default::default()
        }
    }

    /// Convenience: change the seed.
    pub fn with_seed(mut self, seed: u64) -> CorpusConfig {
        self.seed = seed;
        self
    }

    fn range(&self, rng: &mut SmallRng, r: (usize, usize)) -> usize {
        if r.0 >= r.1 {
            r.0
        } else {
            rng.gen_range(r.0..=r.1)
        }
    }
}

fn doc_rng(cfg: &CorpusConfig, kind: u64, i: usize) -> SmallRng {
    SmallRng::seed_from_u64(cfg.seed ^ (kind << 32) ^ i as u64)
}

fn sections_for<'a>(cfg: &CorpusConfig, rng: &mut SmallRng) -> Vec<&'a str> {
    let n = cfg.range(rng, cfg.sections).max(1);
    // Always lead with a paper-example heading so the canonical queries
    // (`Context=Budget`, `Context=Technology Gap`) have targets.
    let mut out = vec!["Budget"];
    while out.len() < n {
        let s = pick(rng, SECTION_NAMES);
        if !out.contains(&s) {
            out.push(s);
        }
    }
    out
}

/// NASA proposals as simulated Word files (`.wdoc`) — the input of the
/// Proposal Financial Management application.
pub fn proposals(cfg: &CorpusConfig) -> Vec<RawDoc> {
    (0..cfg.docs)
        .map(|i| {
            let mut rng = doc_rng(cfg, 1, i);
            let mut s = format!(
                "<<Title>> Proposal P-{:04}: {}\n",
                i,
                title_text(&mut rng, 4)
            );
            s.push_str(&format!(
                "<<Normal>> Submitted by the {} division requesting **${}K**.\n",
                pick(
                    &mut rng,
                    &["aeronautics", "space science", "exploration", "technology"]
                ),
                rng.gen_range(100..5000)
            ));
            for sec in sections_for(cfg, &mut rng) {
                s.push_str(&format!("<<Heading1>> {sec}\n"));
                for _ in 0..cfg.range(&mut rng, cfg.paragraphs) {
                    let words = cfg.range(&mut rng, cfg.words);
                    s.push_str(&format!("<<Normal>> {}\n", body_text(&mut rng, words)));
                }
            }
            s.push_str("<<Heading1>> Cost Details\n<<Table>> Year | Amount\n");
            for year in 2005..2008 {
                s.push_str(&format!(
                    "<<Table>> {year} | {}K\n",
                    rng.gen_range(100..2000)
                ));
            }
            RawDoc {
                name: format!("proposal-{i:04}.wdoc"),
                content: s,
            }
        })
        .collect()
}

/// NASA task plans (`.wdoc`) — the thousands of inputs the IBPD example
/// integrates ("extract and integrate information from thousands of NASA
/// task plans containing the required budget information").
pub fn task_plans(cfg: &CorpusConfig) -> Vec<RawDoc> {
    (0..cfg.docs)
        .map(|i| {
            let mut rng = doc_rng(cfg, 2, i);
            let center = pick(
                &mut rng,
                &["ames", "johnson", "kennedy", "goddard", "langley"],
            );
            let mut s = format!("<<Title>> Task Plan TP-{i:05} ({center})\n");
            s.push_str("<<Heading1>> Budget\n");
            s.push_str(&format!(
                "<<Normal>> FY05 request **${}K** for {}.\n",
                rng.gen_range(50..900),
                body_text(&mut rng, 6),
            ));
            s.push_str("<<Heading1>> Milestones\n");
            for q in 1..=rng.gen_range(2..=4) {
                s.push_str(&format!("<<Normal>> Q{q}: {}\n", body_text(&mut rng, 10)));
            }
            RawDoc {
                name: format!("taskplan-{i:05}.wdoc"),
                content: s,
            }
        })
        .collect()
}

/// Anomaly reports as simulated PDFs (`.pdoc`) — the Anomaly Tracking
/// application's two web-accessible anomaly databases.
pub fn anomaly_reports(cfg: &CorpusConfig) -> Vec<RawDoc> {
    (0..cfg.docs)
        .map(|i| {
            let mut rng = doc_rng(cfg, 3, i);
            let mut s = String::from("PAGE 1\n");
            s.push_str(&format!(
                "SPAN 72 720 18 bold | Anomaly Report AR-{:05}\n",
                i
            ));
            s.push_str(&format!(
                "SPAN 72 690 11 regular | During {} the {} {}.\n",
                pick(&mut rng, &["ascent", "descent", "orbit", "ground test"]),
                pick(
                    &mut rng,
                    &["engine", "valve", "sensor", "controller", "harness"]
                ),
                pick(&mut rng, &["faulted", "overheated", "stalled", "leaked"]),
            ));
            for sec in ["Corrective Action", "Disposition"] {
                s.push_str(&format!("SPAN 72 650 14 bold | {sec}\n"));
                let words = cfg.range(&mut rng, cfg.words).min(30);
                s.push_str(&format!(
                    "SPAN 72 620 11 regular | {}\n",
                    body_text(&mut rng, words)
                ));
            }
            RawDoc {
                name: format!("anomaly-{i:05}.pdoc"),
                content: s,
            }
        })
        .collect()
}

/// Lessons-learned pages (`.html`) — the paper's content-search-only NASA
/// Lessons Learned Information Server.
pub fn lessons_learned(cfg: &CorpusConfig) -> Vec<RawDoc> {
    (0..cfg.docs)
        .map(|i| {
            let mut rng = doc_rng(cfg, 4, i);
            let mut s = format!(
                "<html><head><title>Lesson {i:04}: {}</title></head><body>",
                title_text(&mut rng, 3)
            );
            for sec in ["Summary", "Recommendation"] {
                let words = cfg.range(&mut rng, cfg.words).min(40);
                s.push_str(&format!(
                    "<h1>{sec}</h1><p>{}</p>",
                    body_text(&mut rng, words)
                ));
            }
            s.push_str("</body></html>");
            RawDoc {
                name: format!("lesson-{i:04}.html"),
                content: s,
            }
        })
        .collect()
}

/// Risk-assessment slide decks (`.sdoc`) — the Risk Assessment application.
pub fn risk_decks(cfg: &CorpusConfig) -> Vec<RawDoc> {
    (0..cfg.docs)
        .map(|i| {
            let mut rng = doc_rng(cfg, 5, i);
            let mut s = format!("=== Slide: Risk Review RR-{i:04} ===\n");
            s.push_str(&format!("- program: {}\n", title_text(&mut rng, 2)));
            s.push_str("=== Slide: Risks ===\n");
            for _ in 0..rng.gen_range(2..=5) {
                s.push_str(&format!(
                    "- {} ({} likelihood)\n",
                    body_text(&mut rng, 6),
                    pick(&mut rng, &["low", "medium", "high"]),
                ));
            }
            s.push_str("=== Slide: Budget ===\n");
            s.push_str(&format!(
                "- mitigation reserve **${}K**\n",
                rng.gen_range(10..500)
            ));
            RawDoc {
                name: format!("risk-{i:04}.sdoc"),
                content: s,
            }
        })
        .collect()
}

/// Budget spreadsheets (`.csv`).
pub fn spreadsheets(cfg: &CorpusConfig) -> Vec<RawDoc> {
    (0..cfg.docs)
        .map(|i| {
            let mut rng = doc_rng(cfg, 6, i);
            let mut s = String::from("Task,Center,FY05 Amount,Status\n");
            for t in 0..rng.gen_range(3..=10) {
                s.push_str(&format!(
                    "T-{i:03}-{t},{},{}000,{}\n",
                    pick(&mut rng, &["ames", "johnson", "kennedy"]),
                    rng.gen_range(10..900),
                    pick(&mut rng, &["open", "closed", "at risk"]),
                ));
            }
            RawDoc {
                name: format!("budget-{i:04}.csv"),
                content: s,
            }
        })
        .collect()
}

/// Personnel ratings for one NASA center, as CSV — the §4 Top-Employees
/// scenario. Each center uses its own rating vocabulary, which is exactly
/// what makes the GAV mappings necessary.
pub fn personnel_csv(center: &str, n: usize, seed: u64) -> RawDoc {
    let mut rng = SmallRng::seed_from_u64(seed ^ hash_name(center));
    let mut s = match center {
        "johnson" => String::from("employee,score\n"),
        "kennedy" => String::from("who,grade\n"),
        _ => String::from("name,rating\n"),
    };
    for i in 0..n {
        let name = format!(
            "{}-{}",
            pick(
                &mut rng,
                &["ada", "bob", "carol", "dan", "eve", "frank", "grace", "heidi"]
            ),
            i
        );
        match center {
            "johnson" => s.push_str(&format!("{name},{}\n", rng.gen_range(1..=5))),
            "kennedy" => s.push_str(&format!(
                "{name},{}\n",
                pick(&mut rng, &["excellent", "very good", "good", "fair"]),
            )),
            _ => s.push_str(&format!(
                "{name},{}\n",
                pick(&mut rng, &["excellent", "good", "satisfactory"]),
            )),
        }
    }
    RawDoc {
        name: format!("{center}-personnel.csv"),
        content: s,
    }
}

fn hash_name(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A mixed corpus interleaving all formats — the general ingestion
/// workload. `cfg.docs` is the *total* count.
pub fn mixed(cfg: &CorpusConfig) -> Vec<RawDoc> {
    let per = (cfg.docs / 6).max(1);
    let sub = CorpusConfig { docs: per, ..*cfg };
    let mut all = Vec::with_capacity(cfg.docs);
    let sets = [
        proposals(&sub),
        task_plans(&sub),
        anomaly_reports(&sub),
        lessons_learned(&sub),
        risk_decks(&sub),
        spreadsheets(&sub),
    ];
    // Interleave round-robin, truncate to the requested total.
    for i in 0..per {
        for set in &sets {
            if let Some(d) = set.get(i) {
                all.push(d.clone());
            }
        }
    }
    all.truncate(cfg.docs.max(sets.len().min(all.len())));
    all
}

/// Query workload: `(context label, content terms)` pairs drawn from the
/// generation vocabulary, deterministic in the seed.
pub fn query_workload(seed: u64, n: usize) -> Vec<(String, String)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            (
                pick(&mut rng, SECTION_NAMES).to_string(),
                crate::words::body_text(&mut rng, 1)
                    .trim_end_matches('.')
                    .to_string(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmark_docformats::upmark;

    #[test]
    fn deterministic_in_seed() {
        let cfg = CorpusConfig::sized(5);
        assert_eq!(proposals(&cfg), proposals(&cfg));
        assert_ne!(
            proposals(&cfg),
            proposals(&CorpusConfig::sized(5).with_seed(7))
        );
    }

    #[test]
    fn every_generator_upmarks_with_budget_targets() {
        let cfg = CorpusConfig::sized(3);
        for docs in [proposals(&cfg), task_plans(&cfg), risk_decks(&cfg)] {
            for d in docs {
                let doc = upmark(&d.name, &d.content);
                let labels: Vec<String> = doc
                    .context_content_pairs()
                    .into_iter()
                    .map(|(l, _)| l)
                    .collect();
                assert!(
                    labels.iter().any(|l| l == "Budget"),
                    "{} lacks Budget among {:?}",
                    d.name,
                    labels
                );
            }
        }
    }

    #[test]
    fn anomaly_and_lessons_have_expected_sections() {
        let cfg = CorpusConfig::sized(2);
        let d = upmark(
            &anomaly_reports(&cfg)[0].name,
            &anomaly_reports(&cfg)[0].content,
        );
        let labels: Vec<String> = d
            .context_content_pairs()
            .into_iter()
            .map(|(l, _)| l)
            .collect();
        assert!(labels.iter().any(|l| l.starts_with("Anomaly Report")));
        assert!(labels.contains(&"Corrective Action".to_string()));
        let d = upmark(
            &lessons_learned(&cfg)[0].name,
            &lessons_learned(&cfg)[0].content,
        );
        let labels: Vec<String> = d
            .context_content_pairs()
            .into_iter()
            .map(|(l, _)| l)
            .collect();
        assert!(labels.contains(&"Recommendation".to_string()));
    }

    #[test]
    fn spreadsheets_parse_as_tables() {
        let cfg = CorpusConfig::sized(1);
        let d = &spreadsheets(&cfg)[0];
        let doc = upmark(&d.name, &d.content);
        assert!(doc.root.find("table").is_some());
        assert!(!doc.root.find_all("row").is_empty());
    }

    #[test]
    fn personnel_vocabularies_differ_by_center() {
        let a = personnel_csv("ames", 10, 1);
        let j = personnel_csv("johnson", 10, 1);
        let k = personnel_csv("kennedy", 10, 1);
        assert!(a.content.starts_with("name,rating"));
        assert!(j.content.starts_with("employee,score"));
        assert!(k.content.starts_with("who,grade"));
    }

    #[test]
    fn mixed_covers_formats() {
        let all = mixed(&CorpusConfig::sized(24));
        let exts: std::collections::HashSet<&str> = all
            .iter()
            .filter_map(|d| d.name.rsplit('.').next())
            .collect();
        assert!(exts.len() >= 5, "formats present: {exts:?}");
        assert_eq!(all.len(), 24);
    }

    #[test]
    fn query_workload_deterministic() {
        assert_eq!(query_workload(3, 5), query_workload(3, 5));
        assert_eq!(query_workload(3, 5).len(), 5);
    }
}
