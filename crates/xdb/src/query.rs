//! The XDB Query model and its URL syntax.
//!
//! "The key features are that context and content search specifications are
//! appended to a URL that is sent to NETMARK. In this URL we may also
//! specify an XSLT stylesheet which specifies how the results are to be
//! formatted and composed into a new document." (paper §2.1.3)
//!
//! Query string grammar (case-insensitive keys, `&`-separated,
//! percent/plus decoding):
//!
//! ```text
//! Context=Technology%20Gap & Content=Shrinking & databank=apps
//!   & xslt=report & limit=20 & match=keywords|phrase & rank=bm25|none
//! ```

use std::fmt;

/// How a `Content=` value matches node text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatchMode {
    /// All terms must occur (any order) — the paper's keyword search.
    #[default]
    Keywords,
    /// Terms must occur consecutively.
    Phrase,
}

/// How hits are ordered (`rank=`). The default, [`RankMode::None`], is the
/// paper's behaviour: hits in store (ingest) order, byte-identical to every
/// pre-ranking release. [`RankMode::Bm25`] orders hits by BM25 relevance of
/// the `Content=` terms, ties broken by store order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RankMode {
    /// Unranked: store order (the pre-v2 behaviour and the wire default).
    #[default]
    None,
    /// BM25 relevance over the segmented index's length statistics.
    Bm25,
}

/// A parsed XDB query.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct XdbQuery {
    /// `Context=` — section-heading search ("returns the content portion in
    /// the 'Introduction' sections of all the documents").
    pub context: Option<String>,
    /// `Content=` — keyword search over node text.
    pub content: Option<String>,
    /// `databank=` — which declared databank (source set) to query.
    pub databank: Option<String>,
    /// `xslt=` — stylesheet name for result composition.
    pub xslt: Option<String>,
    /// `doc=` — restrict to one document by file name.
    pub doc: Option<String>,
    /// `limit=` — cap on returned hits.
    pub limit: Option<usize>,
    /// `match=` — content matching mode.
    pub match_mode: MatchMode,
    /// `rank=` — hit ordering (unranked store order, or BM25 relevance).
    pub rank: RankMode,
    /// `min_score=` — drop ranked hits scoring at or below this floor.
    /// A coordinator that already holds k candidates scoring above θ can
    /// push `limit=k&min_score=θ` to a capable peer: any hit at or below
    /// θ provably cannot enter the merged top-k, so the peer neither
    /// scores deeply nor ships it. Meaningless without `rank=bm25`
    /// (unranked hits carry no score) and never rendered when unset, so
    /// both unranked and plain ranked queries keep their exact prior wire
    /// bytes.
    pub min_score: Option<f64>,
    /// Shard-coordination hint, never on the wire: context labels already
    /// known (by the coordinator) to have an exact match *somewhere* in
    /// the federated/sharded whole. A store executing the query treats a
    /// listed label as exact-only — it must not fall back to phrase
    /// matching even when its local slice has no exact occurrence,
    /// because the fallback decision is global, not per-store. Empty for
    /// plain single-store queries; [`XdbQuery::from_url`] never sets it
    /// and [`XdbQuery::to_query_string`] never renders it.
    pub exact_contexts: Vec<String>,
}

/// Typed error for malformed query strings and invalid builder states.
///
/// Each variant names the offending key or fragment, so servers can answer
/// a precise 400 instead of guessing which parameter was dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// A `&`-separated pair had no `=` (e.g. `nonsense`).
    MissingEquals(String),
    /// A key outside the XDB grammar.
    UnknownKey(String),
    /// The same key appeared twice — previously the second value silently
    /// overwrote the first.
    DuplicateKey(String),
    /// A key with an empty value (e.g. `Context=`) — previously accepted
    /// and then matched nothing.
    EmptyValue(String),
    /// `limit=` was not a non-negative integer.
    BadLimit(String),
    /// `match=` named an unknown mode.
    BadMatchMode(String),
    /// `rank=` named an unknown ranking mode.
    BadRank(String),
    /// `min_score=` was not a finite non-negative number.
    BadMinScore(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::MissingEquals(pair) => write!(f, "missing '=' in '{pair}'"),
            ParseError::UnknownKey(key) => write!(f, "unknown query key '{key}'"),
            ParseError::DuplicateKey(key) => write!(f, "duplicate query key '{key}'"),
            ParseError::EmptyValue(key) => write!(f, "empty value for '{key}'"),
            ParseError::BadLimit(value) => write!(f, "limit must be a number, got '{value}'"),
            ParseError::BadMatchMode(value) => write!(f, "unknown match mode '{value}'"),
            ParseError::BadRank(value) => write!(f, "unknown rank mode '{value}'"),
            ParseError::BadMinScore(value) => {
                write!(
                    f,
                    "min_score must be a finite non-negative number, got '{value}'"
                )
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Percent-decodes a query component (`+` means space).
pub fn url_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' if i + 2 < bytes.len() + 1 && i + 2 <= bytes.len() => {
                match u8::from_str_radix(
                    std::str::from_utf8(&bytes[i + 1..(i + 3).min(bytes.len())]).unwrap_or(""),
                    16,
                ) {
                    Ok(b) if i + 2 < bytes.len() => {
                        out.push(b);
                        i += 3;
                    }
                    _ => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Percent-encodes a query component.
pub fn url_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            b' ' => out.push('+'),
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

impl XdbQuery {
    /// A pure context search.
    pub fn context(label: &str) -> XdbQuery {
        XdbQuery {
            context: Some(label.to_string()),
            ..Default::default()
        }
    }

    /// A pure content (keyword) search.
    pub fn content(terms: &str) -> XdbQuery {
        XdbQuery {
            content: Some(terms.to_string()),
            ..Default::default()
        }
    }

    /// Combined `Context=X & Content=Y`.
    pub fn context_content(label: &str, terms: &str) -> XdbQuery {
        XdbQuery {
            context: Some(label.to_string()),
            content: Some(terms.to_string()),
            ..Default::default()
        }
    }

    /// Builder: set the stylesheet.
    pub fn with_xslt(mut self, name: &str) -> XdbQuery {
        self.xslt = Some(name.to_string());
        self
    }

    /// Builder: set the databank.
    pub fn with_databank(mut self, name: &str) -> XdbQuery {
        self.databank = Some(name.to_string());
        self
    }

    /// Builder: set the hit limit.
    pub fn with_limit(mut self, n: usize) -> XdbQuery {
        self.limit = Some(n);
        self
    }

    /// Builder: set phrase matching.
    pub fn with_phrase_match(mut self) -> XdbQuery {
        self.match_mode = MatchMode::Phrase;
        self
    }

    /// Builder: set the ranking mode.
    pub fn with_rank(mut self, rank: RankMode) -> XdbQuery {
        self.rank = rank;
        self
    }

    /// Builder: set the ranked score floor (`min_score=`).
    pub fn with_min_score(mut self, floor: f64) -> XdbQuery {
        self.min_score = Some(floor);
        self
    }

    /// True when the query asks for relevance-ranked hits.
    pub fn ranked(&self) -> bool {
        self.rank == RankMode::Bm25
    }

    /// True when the query selects everything (no context, no content).
    pub fn is_unconstrained(&self) -> bool {
        self.context.is_none() && self.content.is_none() && self.doc.is_none()
    }

    /// A fallible builder for assembling a query from untrusted input.
    pub fn builder() -> XdbQueryBuilder {
        XdbQueryBuilder::default()
    }

    /// Parses the query-string portion of an XDB URL. Accepts a full URL
    /// (`http://host/xdb?Context=...`), a leading `?`, or the bare query
    /// string. Unknown keys, duplicate keys, empty values, and malformed
    /// `limit=`/`match=` values are typed errors — nothing is silently
    /// dropped.
    pub fn from_url(input: &str) -> Result<XdbQuery, ParseError> {
        let qs = match input.split_once('?') {
            Some((_, q)) => q,
            None => input,
        };
        let mut b = XdbQuery::builder();
        for pair in qs.split('&') {
            let pair = pair.trim();
            if pair.is_empty() {
                continue;
            }
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| ParseError::MissingEquals(pair.to_string()))?;
            b = b.set_param(key.trim(), &url_decode(value.trim()))?;
        }
        b.build()
    }

    /// Renders the canonical query string (inverse of
    /// [`XdbQuery::from_url`]).
    pub fn to_query_string(&self) -> String {
        let mut parts = Vec::new();
        if let Some(c) = &self.context {
            parts.push(format!("Context={}", url_encode(c)));
        }
        if let Some(c) = &self.content {
            parts.push(format!("Content={}", url_encode(c)));
        }
        if let Some(d) = &self.databank {
            parts.push(format!("databank={}", url_encode(d)));
        }
        if let Some(d) = &self.doc {
            parts.push(format!("doc={}", url_encode(d)));
        }
        if let Some(x) = &self.xslt {
            parts.push(format!("xslt={}", url_encode(x)));
        }
        if let Some(l) = self.limit {
            parts.push(format!("limit={l}"));
        }
        if self.match_mode == MatchMode::Phrase {
            parts.push("match=phrase".to_string());
        }
        // `rank=none` is the default and is never rendered, so unranked
        // queries keep their exact pre-v2 wire bytes (and cache keys).
        if self.rank == RankMode::Bm25 {
            parts.push("rank=bm25".to_string());
        }
        // Rust's f64 Display is the shortest round-tripping decimal, so
        // the floor survives a render → parse cycle exactly.
        if let Some(floor) = self.min_score {
            parts.push(format!("min_score={floor}"));
        }
        parts.join("&")
    }
}

impl fmt::Display for XdbQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_query_string())
    }
}

/// Fallible builder for [`XdbQuery`].
///
/// Unlike the infallible `with_*` combinators (meant for trusted,
/// programmatic construction), the builder validates on
/// [`XdbQueryBuilder::build`]: empty values and duplicate keys are
/// [`ParseError`]s, not silent acceptance. [`XdbQuery::from_url`] is a
/// thin loop over [`XdbQueryBuilder::set_param`].
#[derive(Debug, Clone, Default)]
pub struct XdbQueryBuilder {
    query: XdbQuery,
    match_set: bool,
    limit_set: bool,
    rank_set: bool,
    min_score_set: bool,
}

impl XdbQueryBuilder {
    /// Sets `Context=` (section-heading search).
    pub fn context(mut self, label: &str) -> Self {
        self.query.context = Some(label.to_string());
        self
    }

    /// Sets `Content=` (keyword search).
    pub fn content(mut self, terms: &str) -> Self {
        self.query.content = Some(terms.to_string());
        self
    }

    /// Sets `databank=`.
    pub fn databank(mut self, name: &str) -> Self {
        self.query.databank = Some(name.to_string());
        self
    }

    /// Sets `xslt=`.
    pub fn xslt(mut self, name: &str) -> Self {
        self.query.xslt = Some(name.to_string());
        self
    }

    /// Sets `doc=` (restrict to one document).
    pub fn doc(mut self, name: &str) -> Self {
        self.query.doc = Some(name.to_string());
        self
    }

    /// Sets `limit=`.
    pub fn limit(mut self, n: usize) -> Self {
        self.query.limit = Some(n);
        self.limit_set = true;
        self
    }

    /// Sets `match=`.
    pub fn match_mode(mut self, mode: MatchMode) -> Self {
        self.query.match_mode = mode;
        self.match_set = true;
        self
    }

    /// Sets `rank=`.
    pub fn rank(mut self, rank: RankMode) -> Self {
        self.query.rank = rank;
        self.rank_set = true;
        self
    }

    /// Sets `min_score=`.
    pub fn min_score(mut self, floor: f64) -> Self {
        self.query.min_score = Some(floor);
        self.min_score_set = true;
        self
    }

    /// Applies one already-decoded `key=value` pair from a query string.
    /// Keys are case-insensitive; a repeated key is a
    /// [`ParseError::DuplicateKey`].
    pub fn set_param(mut self, key: &str, value: &str) -> Result<Self, ParseError> {
        let lkey = key.to_ascii_lowercase();
        let dup = |was_set: bool| -> Result<(), ParseError> {
            if was_set {
                Err(ParseError::DuplicateKey(lkey.clone()))
            } else {
                Ok(())
            }
        };
        match lkey.as_str() {
            "context" => {
                dup(self.query.context.is_some())?;
                self = self.context(value);
            }
            "content" => {
                dup(self.query.content.is_some())?;
                self = self.content(value);
            }
            "databank" => {
                dup(self.query.databank.is_some())?;
                self = self.databank(value);
            }
            "xslt" => {
                dup(self.query.xslt.is_some())?;
                self = self.xslt(value);
            }
            "doc" => {
                dup(self.query.doc.is_some())?;
                self = self.doc(value);
            }
            "limit" => {
                dup(self.limit_set)?;
                let n = value
                    .parse()
                    .map_err(|_| ParseError::BadLimit(value.to_string()))?;
                self = self.limit(n);
            }
            "match" => {
                dup(self.match_set)?;
                let mode = match value.to_ascii_lowercase().as_str() {
                    "keywords" | "keyword" => MatchMode::Keywords,
                    "phrase" => MatchMode::Phrase,
                    other => return Err(ParseError::BadMatchMode(other.to_string())),
                };
                self = self.match_mode(mode);
            }
            "rank" => {
                dup(self.rank_set)?;
                let rank = match value.to_ascii_lowercase().as_str() {
                    "none" => RankMode::None,
                    "bm25" => RankMode::Bm25,
                    other => return Err(ParseError::BadRank(other.to_string())),
                };
                self = self.rank(rank);
            }
            "min_score" => {
                dup(self.min_score_set)?;
                let floor: f64 = value
                    .parse()
                    .ok()
                    .filter(|v: &f64| v.is_finite() && *v >= 0.0)
                    .ok_or_else(|| ParseError::BadMinScore(value.to_string()))?;
                self = self.min_score(floor);
            }
            _ => return Err(ParseError::UnknownKey(lkey)),
        }
        Ok(self)
    }

    /// Validates and produces the query. Every set string field must be
    /// non-empty — `Context=` with nothing after it used to parse and then
    /// match nothing; now it is a typed error at the API boundary.
    pub fn build(self) -> Result<XdbQuery, ParseError> {
        for (key, value) in [
            ("context", &self.query.context),
            ("content", &self.query.content),
            ("databank", &self.query.databank),
            ("xslt", &self.query.xslt),
            ("doc", &self.query.doc),
        ] {
            if value.as_deref().is_some_and(|v| v.trim().is_empty()) {
                return Err(ParseError::EmptyValue(key.to_string()));
            }
        }
        Ok(self.query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_paper_examples() {
        let q = XdbQuery::from_url("Context=Introduction").unwrap();
        assert_eq!(q.context.as_deref(), Some("Introduction"));
        assert!(q.content.is_none());

        let q = XdbQuery::from_url("Content=Shuttle").unwrap();
        assert_eq!(q.content.as_deref(), Some("Shuttle"));

        let q = XdbQuery::from_url("Context=Technology+Gap&Content=Shrinking").unwrap();
        assert_eq!(q.context.as_deref(), Some("Technology Gap"));
        assert_eq!(q.content.as_deref(), Some("Shrinking"));
    }

    #[test]
    fn parse_full_url_and_percent() {
        let q =
            XdbQuery::from_url("http://netmark/xdb?Context=Technology%20Gap&xslt=report&limit=5")
                .unwrap();
        assert_eq!(q.context.as_deref(), Some("Technology Gap"));
        assert_eq!(q.xslt.as_deref(), Some("report"));
        assert_eq!(q.limit, Some(5));
    }

    #[test]
    fn keys_case_insensitive() {
        let q = XdbQuery::from_url("CONTEXT=A&content=b&DataBank=apps").unwrap();
        assert_eq!(q.context.as_deref(), Some("A"));
        assert_eq!(q.databank.as_deref(), Some("apps"));
    }

    #[test]
    fn typed_errors() {
        assert_eq!(
            XdbQuery::from_url("nonsense"),
            Err(ParseError::MissingEquals("nonsense".to_string()))
        );
        assert_eq!(
            XdbQuery::from_url("limit=abc"),
            Err(ParseError::BadLimit("abc".to_string()))
        );
        assert_eq!(
            XdbQuery::from_url("match=fuzzy"),
            Err(ParseError::BadMatchMode("fuzzy".to_string()))
        );
        assert_eq!(
            XdbQuery::from_url("rank=tfidf"),
            Err(ParseError::BadRank("tfidf".to_string()))
        );
        assert_eq!(
            XdbQuery::from_url("unknown=1"),
            Err(ParseError::UnknownKey("unknown".to_string()))
        );
    }

    #[test]
    fn duplicate_keys_rejected() {
        assert_eq!(
            XdbQuery::from_url("Context=A&Context=B"),
            Err(ParseError::DuplicateKey("context".to_string()))
        );
        assert_eq!(
            XdbQuery::from_url("limit=1&LIMIT=2"),
            Err(ParseError::DuplicateKey("limit".to_string()))
        );
        assert_eq!(
            XdbQuery::from_url("match=phrase&match=phrase"),
            Err(ParseError::DuplicateKey("match".to_string()))
        );
        assert_eq!(
            XdbQuery::from_url("rank=bm25&rank=none"),
            Err(ParseError::DuplicateKey("rank".to_string()))
        );
    }

    #[test]
    fn empty_values_rejected() {
        assert_eq!(
            XdbQuery::from_url("Context="),
            Err(ParseError::EmptyValue("context".to_string()))
        );
        assert_eq!(
            XdbQuery::from_url("Context=Budget&xslt="),
            Err(ParseError::EmptyValue("xslt".to_string()))
        );
        // Errors render something actionable.
        assert!(ParseError::EmptyValue("xslt".to_string())
            .to_string()
            .contains("xslt"));
    }

    #[test]
    fn builder_assembles_and_validates() {
        let q = XdbQuery::builder()
            .context("Budget")
            .content("million")
            .limit(3)
            .match_mode(MatchMode::Phrase)
            .build()
            .unwrap();
        assert_eq!(q.context.as_deref(), Some("Budget"));
        assert_eq!(q.limit, Some(3));
        assert_eq!(q.match_mode, MatchMode::Phrase);
        assert_eq!(
            XdbQuery::builder().doc("  ").build(),
            Err(ParseError::EmptyValue("doc".to_string()))
        );
        // An entirely empty builder is the unconstrained query.
        assert!(XdbQuery::builder().build().unwrap().is_unconstrained());
    }

    #[test]
    fn round_trip() {
        let q = XdbQuery::context_content("Technology Gap", "Shrinking fast")
            .with_databank("apps")
            .with_xslt("report")
            .with_limit(7)
            .with_phrase_match()
            .with_rank(RankMode::Bm25);
        let s = q.to_query_string();
        let back = XdbQuery::from_url(&s).unwrap();
        assert_eq!(back, q);
    }

    #[test]
    fn rank_key_parses_and_defaults() {
        let q = XdbQuery::from_url("Content=engine&rank=bm25").unwrap();
        assert_eq!(q.rank, RankMode::Bm25);
        assert!(q.ranked());
        let q = XdbQuery::from_url("Content=engine&rank=none").unwrap();
        assert_eq!(q.rank, RankMode::None);
        let q = XdbQuery::from_url("Content=engine").unwrap();
        assert_eq!(q.rank, RankMode::None, "rank defaults to unranked");
        // rank=none is the default and never rendered: unranked queries
        // keep their exact pre-ranking wire bytes.
        assert_eq!(
            XdbQuery::content("engine").to_query_string(),
            "Content=engine"
        );
        assert_eq!(
            XdbQuery::content("engine")
                .with_rank(RankMode::Bm25)
                .to_query_string(),
            "Content=engine&rank=bm25"
        );
    }

    /// Property test for the satellite contract: `from_url` ∘
    /// `to_query_string` is the identity for *every* combination of query
    /// keys — the grammar cannot silently drop a field again. Values are
    /// chosen to need percent/plus encoding so the codec is in the loop.
    #[test]
    fn every_key_combination_round_trips() {
        let contexts = [None, Some("Technology Gap"), Some("Budget & Cost/2")];
        let contents = [None, Some("100% café engine")];
        let databanks = [None, Some("apps")];
        let docs = [None, Some("my plan.txt")];
        let xslts = [None, Some("report")];
        let limits = [None, Some(0usize), Some(42)];
        let modes = [MatchMode::Keywords, MatchMode::Phrase];
        let ranks = [RankMode::None, RankMode::Bm25];
        let floors = [None, Some(0.0f64), Some(2.625)];
        let mut cases = 0usize;
        for ctx in contexts {
            for con in &contents {
                for db in &databanks {
                    for doc in &docs {
                        for xslt in &xslts {
                            for limit in &limits {
                                for mode in modes {
                                    for rank in ranks {
                                        for floor in floors {
                                            let q = XdbQuery {
                                                context: ctx.map(String::from),
                                                content: con.map(String::from),
                                                databank: db.map(String::from),
                                                xslt: xslt.map(String::from),
                                                doc: doc.map(String::from),
                                                limit: *limit,
                                                match_mode: mode,
                                                rank,
                                                min_score: floor,
                                                exact_contexts: Vec::new(),
                                            };
                                            let s = q.to_query_string();
                                            let back = XdbQuery::from_url(&s).unwrap_or_else(|e| {
                                                panic!("'{s}' failed to re-parse: {e}")
                                            });
                                            assert_eq!(back, q, "round trip of '{s}'");
                                            cases += 1;
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        assert_eq!(cases, 3 * 2 * 2 * 2 * 2 * 3 * 2 * 2 * 3);
    }

    #[test]
    fn min_score_parses_validates_and_round_trips() {
        let q = XdbQuery::from_url("Content=engine&rank=bm25&min_score=1.25").unwrap();
        assert_eq!(q.min_score, Some(1.25));
        let q = XdbQuery::from_url("Content=engine").unwrap();
        assert_eq!(q.min_score, None, "min_score defaults to unset");
        // Unset floors are never rendered: plain ranked (and unranked)
        // queries keep their exact prior wire bytes.
        assert_eq!(
            XdbQuery::content("engine")
                .with_rank(RankMode::Bm25)
                .to_query_string(),
            "Content=engine&rank=bm25"
        );
        // An exact f64 survives the render → parse cycle bit-for-bit.
        let q = XdbQuery::content("engine")
            .with_rank(RankMode::Bm25)
            .with_min_score(3.0614318088503584);
        let back = XdbQuery::from_url(&q.to_query_string()).unwrap();
        assert_eq!(
            back.min_score.unwrap().to_bits(),
            3.0614318088503584f64.to_bits()
        );
        for bad in ["abc", "-1", "inf", "NaN"] {
            assert_eq!(
                XdbQuery::from_url(&format!("Content=a&min_score={bad}")),
                Err(ParseError::BadMinScore(bad.to_string())),
                "{bad}"
            );
        }
        assert_eq!(
            XdbQuery::from_url("Content=a&min_score=1&min_score=2"),
            Err(ParseError::DuplicateKey("min_score".to_string()))
        );
    }

    #[test]
    fn url_codec() {
        assert_eq!(url_decode("a+b%20c%2Fd"), "a b c/d");
        assert_eq!(url_encode("a b/c"), "a+b%2Fc");
        assert_eq!(
            url_decode(&url_encode("100% café & more")),
            "100% café & more"
        );
        // Malformed escapes degrade, never panic.
        assert_eq!(url_decode("%"), "%");
        assert_eq!(url_decode("%2"), "%2");
        assert_eq!(url_decode("%zz"), "%zz");
    }

    #[test]
    fn empty_query_is_unconstrained() {
        let q = XdbQuery::from_url("").unwrap();
        assert!(q.is_unconstrained());
        let q = XdbQuery::from_url("databank=apps").unwrap();
        assert!(q.is_unconstrained());
    }

    #[test]
    fn display_matches_query_string() {
        let q = XdbQuery::context("Budget");
        assert_eq!(format!("{q}"), q.to_query_string());
    }
}
