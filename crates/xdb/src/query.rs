//! The XDB Query model and its URL syntax.
//!
//! "The key features are that context and content search specifications are
//! appended to a URL that is sent to NETMARK. In this URL we may also
//! specify an XSLT stylesheet which specifies how the results are to be
//! formatted and composed into a new document." (paper §2.1.3)
//!
//! Query string grammar (case-insensitive keys, `&`-separated,
//! percent/plus decoding):
//!
//! ```text
//! Context=Technology%20Gap & Content=Shrinking & databank=apps
//!   & xslt=report & limit=20 & match=keywords|phrase
//! ```

use std::fmt;

/// How a `Content=` value matches node text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatchMode {
    /// All terms must occur (any order) — the paper's keyword search.
    #[default]
    Keywords,
    /// Terms must occur consecutively.
    Phrase,
}

/// A parsed XDB query.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct XdbQuery {
    /// `Context=` — section-heading search ("returns the content portion in
    /// the 'Introduction' sections of all the documents").
    pub context: Option<String>,
    /// `Content=` — keyword search over node text.
    pub content: Option<String>,
    /// `databank=` — which declared databank (source set) to query.
    pub databank: Option<String>,
    /// `xslt=` — stylesheet name for result composition.
    pub xslt: Option<String>,
    /// `doc=` — restrict to one document by file name.
    pub doc: Option<String>,
    /// `limit=` — cap on returned hits.
    pub limit: Option<usize>,
    /// `match=` — content matching mode.
    pub match_mode: MatchMode,
}

/// Error for malformed query strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryParseError(pub String);

impl fmt::Display for QueryParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad xdb query: {}", self.0)
    }
}

impl std::error::Error for QueryParseError {}

/// Percent-decodes a query component (`+` means space).
pub fn url_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' if i + 2 < bytes.len() + 1 && i + 2 <= bytes.len() => {
                match u8::from_str_radix(
                    std::str::from_utf8(&bytes[i + 1..(i + 3).min(bytes.len())]).unwrap_or(""),
                    16,
                ) {
                    Ok(b) if i + 2 < bytes.len() => {
                        out.push(b);
                        i += 3;
                    }
                    _ => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Percent-encodes a query component.
pub fn url_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            b' ' => out.push('+'),
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

impl XdbQuery {
    /// A pure context search.
    pub fn context(label: &str) -> XdbQuery {
        XdbQuery {
            context: Some(label.to_string()),
            ..Default::default()
        }
    }

    /// A pure content (keyword) search.
    pub fn content(terms: &str) -> XdbQuery {
        XdbQuery {
            content: Some(terms.to_string()),
            ..Default::default()
        }
    }

    /// Combined `Context=X & Content=Y`.
    pub fn context_content(label: &str, terms: &str) -> XdbQuery {
        XdbQuery {
            context: Some(label.to_string()),
            content: Some(terms.to_string()),
            ..Default::default()
        }
    }

    /// Builder: set the stylesheet.
    pub fn with_xslt(mut self, name: &str) -> XdbQuery {
        self.xslt = Some(name.to_string());
        self
    }

    /// Builder: set the databank.
    pub fn with_databank(mut self, name: &str) -> XdbQuery {
        self.databank = Some(name.to_string());
        self
    }

    /// Builder: set the hit limit.
    pub fn with_limit(mut self, n: usize) -> XdbQuery {
        self.limit = Some(n);
        self
    }

    /// Builder: set phrase matching.
    pub fn with_phrase_match(mut self) -> XdbQuery {
        self.match_mode = MatchMode::Phrase;
        self
    }

    /// True when the query selects everything (no context, no content).
    pub fn is_unconstrained(&self) -> bool {
        self.context.is_none() && self.content.is_none() && self.doc.is_none()
    }

    /// Parses the query-string portion of an XDB URL. Accepts a full URL
    /// (`http://host/xdb?Context=...`), a leading `?`, or the bare query
    /// string.
    pub fn parse(input: &str) -> Result<XdbQuery, QueryParseError> {
        let qs = match input.split_once('?') {
            Some((_, q)) => q,
            None => input,
        };
        let mut q = XdbQuery::default();
        for pair in qs.split('&') {
            let pair = pair.trim();
            if pair.is_empty() {
                continue;
            }
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| QueryParseError(format!("missing '=' in '{pair}'")))?;
            let key = key.trim().to_ascii_lowercase();
            let value = url_decode(value.trim());
            match key.as_str() {
                "context" => q.context = Some(value),
                "content" => q.content = Some(value),
                "databank" => q.databank = Some(value),
                "xslt" => q.xslt = Some(value),
                "doc" => q.doc = Some(value),
                "limit" => {
                    q.limit = Some(value.parse().map_err(|_| {
                        QueryParseError(format!("limit must be a number, got '{value}'"))
                    })?)
                }
                "match" => {
                    q.match_mode = match value.to_ascii_lowercase().as_str() {
                        "keywords" | "keyword" => MatchMode::Keywords,
                        "phrase" => MatchMode::Phrase,
                        other => {
                            return Err(QueryParseError(format!("unknown match mode '{other}'")))
                        }
                    }
                }
                other => {
                    return Err(QueryParseError(format!("unknown query key '{other}'")));
                }
            }
        }
        Ok(q)
    }

    /// Renders the canonical query string (inverse of [`XdbQuery::parse`]).
    pub fn to_query_string(&self) -> String {
        let mut parts = Vec::new();
        if let Some(c) = &self.context {
            parts.push(format!("Context={}", url_encode(c)));
        }
        if let Some(c) = &self.content {
            parts.push(format!("Content={}", url_encode(c)));
        }
        if let Some(d) = &self.databank {
            parts.push(format!("databank={}", url_encode(d)));
        }
        if let Some(d) = &self.doc {
            parts.push(format!("doc={}", url_encode(d)));
        }
        if let Some(x) = &self.xslt {
            parts.push(format!("xslt={}", url_encode(x)));
        }
        if let Some(l) = self.limit {
            parts.push(format!("limit={l}"));
        }
        if self.match_mode == MatchMode::Phrase {
            parts.push("match=phrase".to_string());
        }
        parts.join("&")
    }
}

impl fmt::Display for XdbQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_query_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_paper_examples() {
        let q = XdbQuery::parse("Context=Introduction").unwrap();
        assert_eq!(q.context.as_deref(), Some("Introduction"));
        assert!(q.content.is_none());

        let q = XdbQuery::parse("Content=Shuttle").unwrap();
        assert_eq!(q.content.as_deref(), Some("Shuttle"));

        let q = XdbQuery::parse("Context=Technology+Gap&Content=Shrinking").unwrap();
        assert_eq!(q.context.as_deref(), Some("Technology Gap"));
        assert_eq!(q.content.as_deref(), Some("Shrinking"));
    }

    #[test]
    fn parse_full_url_and_percent() {
        let q = XdbQuery::parse("http://netmark/xdb?Context=Technology%20Gap&xslt=report&limit=5")
            .unwrap();
        assert_eq!(q.context.as_deref(), Some("Technology Gap"));
        assert_eq!(q.xslt.as_deref(), Some("report"));
        assert_eq!(q.limit, Some(5));
    }

    #[test]
    fn keys_case_insensitive() {
        let q = XdbQuery::parse("CONTEXT=A&content=b&DataBank=apps").unwrap();
        assert_eq!(q.context.as_deref(), Some("A"));
        assert_eq!(q.databank.as_deref(), Some("apps"));
    }

    #[test]
    fn errors() {
        assert!(XdbQuery::parse("nonsense").is_err());
        assert!(XdbQuery::parse("limit=abc").is_err());
        assert!(XdbQuery::parse("match=fuzzy").is_err());
        assert!(XdbQuery::parse("unknown=1").is_err());
    }

    #[test]
    fn round_trip() {
        let q = XdbQuery::context_content("Technology Gap", "Shrinking fast")
            .with_databank("apps")
            .with_xslt("report")
            .with_limit(7)
            .with_phrase_match();
        let s = q.to_query_string();
        let back = XdbQuery::parse(&s).unwrap();
        assert_eq!(back, q);
    }

    #[test]
    fn url_codec() {
        assert_eq!(url_decode("a+b%20c%2Fd"), "a b c/d");
        assert_eq!(url_encode("a b/c"), "a+b%2Fc");
        assert_eq!(
            url_decode(&url_encode("100% café & more")),
            "100% café & more"
        );
        // Malformed escapes degrade, never panic.
        assert_eq!(url_decode("%"), "%");
        assert_eq!(url_decode("%2"), "%2");
        assert_eq!(url_decode("%zz"), "%zz");
    }

    #[test]
    fn empty_query_is_unconstrained() {
        let q = XdbQuery::parse("").unwrap();
        assert!(q.is_unconstrained());
        let q = XdbQuery::parse("databank=apps").unwrap();
        assert!(q.is_unconstrained());
    }

    #[test]
    fn display_matches_query_string() {
        let q = XdbQuery::context("Budget");
        assert_eq!(format!("{q}"), q.to_query_string());
    }
}
