//! `netmark-xdb`: the XDB Query language (paper §2.1.3).
//!
//! "The Netmark query language is a language called XDB Query … context and
//! content search specifications are appended to a URL that is sent to
//! NETMARK." This crate defines the query model ([`XdbQuery`]), its URL
//! syntax (parse/format with percent-decoding), and the result-set model
//! ([`ResultSet`]) that the engine fills, federation merges, and XSLT
//! composes. Execution lives in the `netmark` core crate (local store) and
//! `netmark-federation` (databanks).

#![warn(missing_docs)]

pub mod caps;
pub mod query;
pub mod result;

pub use caps::{Capabilities, WIRE_VERSION};
pub use query::{
    url_decode, url_encode, MatchMode, ParseError, RankMode, XdbQuery, XdbQueryBuilder,
};
pub use result::{Hit, ResultSet};
