//! Source capabilities and their wire format.
//!
//! "A source that is queried need not necessarily have XML or even
//! Context+Content searching capabilities" (paper §2.1.5). A
//! [`Capabilities`] value says which query fragments a source evaluates
//! natively; the federation router pushes down what is supported and
//! augments the rest.
//!
//! Capabilities live in this crate — the protocol crate — because they are
//! part of the XDB wire surface: a federated server advertises them at
//! `GET /xdb/capabilities` as a versioned XML document, and a remote
//! adapter negotiates them at registration instead of assuming a full
//! peer:
//!
//! ```xml
//! <capabilities version="2" context-search="true" content-search="true"
//!               structured-results="true" ranked="true"/>
//! ```
//!
//! Negotiation is forward-compatible by construction: a peer advertising a
//! *newer* wire version, or capability bits this build does not know, is
//! still usable — [`Capabilities::from_node`] reads only the bits it
//! understands, masking the unknown ones off, and the caller pushes down
//! only what both sides share. Versions and bits are additive, never
//! repurposed.

use netmark_model::Node;

/// Version of the XDB-over-HTTP wire format (capabilities document and
/// `<results>` answers). v2 added relevance ranking: the `ranked`
/// capability bit, a `ranked` attribute on `<results>`, and a per-hit
/// `score` attribute. The shape is strictly additive, so v1 documents
/// parse as v2 with ranking absent, and v1 clients ignore the new
/// attributes — a client never refuses a peer over the version number
/// alone.
pub const WIRE_VERSION: u32 = 2;

/// What a source can evaluate natively.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capabilities {
    /// Understands `Context=` (section-heading search).
    pub context_search: bool,
    /// Understands `Content=` (keyword search).
    pub content_search: bool,
    /// Returns structured (sectioned) results rather than whole documents.
    pub structured_results: bool,
    /// Understands `rank=bm25` and returns per-hit relevance scores
    /// (wire v2). A source without this bit still answers ranked queries:
    /// the caller strips `rank=` before pushdown and scores the returned
    /// hits locally.
    pub ranked: bool,
    /// Understands the `min_score=` floor on ranked queries (additive bit
    /// within wire v2). Lets a coordinator push `limit=` down together
    /// with a score threshold; a peer without the bit simply never sees
    /// the key — the coordinator keeps limiting and filtering locally.
    pub min_score: bool,
}

impl Capabilities {
    /// A full NETMARK peer.
    pub const FULL: Capabilities = Capabilities {
        context_search: true,
        content_search: true,
        structured_results: true,
        ranked: true,
        min_score: true,
    };

    /// A keyword-only server (the Lessons Learned case).
    pub const CONTENT_ONLY: Capabilities = Capabilities {
        context_search: false,
        content_search: true,
        structured_results: false,
        ranked: false,
        min_score: false,
    };

    /// Renders the capabilities advertisement served at
    /// `GET /xdb/capabilities`.
    pub fn to_node(&self) -> Node {
        Node::element("capabilities")
            .with_attr("version", &WIRE_VERSION.to_string())
            .with_attr("context-search", bool_str(self.context_search))
            .with_attr("content-search", bool_str(self.content_search))
            .with_attr("structured-results", bool_str(self.structured_results))
            .with_attr("ranked", bool_str(self.ranked))
            .with_attr("min-score", bool_str(self.min_score))
    }

    /// XML text of [`Capabilities::to_node`].
    pub fn to_xml(&self) -> String {
        self.to_node().to_xml()
    }

    /// Parses an advertisement; returns the capabilities and the server's
    /// wire version. `None` when the document is not a capabilities
    /// advertisement at all.
    ///
    /// Forward-compatible: bits this build does not know (a newer peer's
    /// `hologram-search="true"`) are masked off rather than rejected, and
    /// a missing bit (an older peer that predates it) reads as `false` —
    /// the negotiated set is always the intersection both sides understand.
    pub fn from_node(node: &Node) -> Option<(Capabilities, u32)> {
        if node.name != "capabilities" {
            return None;
        }
        let version = node.attr("version")?.parse().ok()?;
        let flag = |name: &str| node.attr(name).map(|v| v == "true").unwrap_or(false);
        Some((
            Capabilities {
                context_search: flag("context-search"),
                content_search: flag("content-search"),
                structured_results: flag("structured-results"),
                ranked: flag("ranked"),
                min_score: flag("min-score"),
            },
            version,
        ))
    }
}

fn bool_str(b: bool) -> &'static str {
    if b {
        "true"
    } else {
        "false"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advertisement_round_trip() {
        for caps in [Capabilities::FULL, Capabilities::CONTENT_ONLY] {
            let node = caps.to_node();
            let (back, version) = Capabilities::from_node(&node).unwrap();
            assert_eq!(back, caps);
            assert_eq!(version, WIRE_VERSION);
        }
    }

    #[test]
    fn malformed_advertisements_rejected() {
        assert!(Capabilities::from_node(&Node::element("results")).is_none());
        // Version is mandatory: a server that does not state one cannot be
        // negotiated with.
        assert!(Capabilities::from_node(&Node::element("capabilities")).is_none());
        let bad = Node::element("capabilities").with_attr("version", "one");
        assert!(Capabilities::from_node(&bad).is_none());
    }

    #[test]
    fn missing_flags_default_to_false() {
        // A v1 advertisement (predates the ranked bit) negotiates cleanly:
        // absent bits are absent capabilities, not errors.
        let n = Node::element("capabilities")
            .with_attr("version", "1")
            .with_attr("content-search", "true");
        let (caps, version) = Capabilities::from_node(&n).unwrap();
        assert_eq!(version, 1);
        assert!(caps.content_search);
        assert!(!caps.context_search);
        assert!(!caps.structured_results);
        assert!(!caps.ranked);
        assert!(!caps.min_score);
    }

    #[test]
    fn unknown_bits_masked_off_not_rejected() {
        // A newer peer advertising bits (and a version) this build does
        // not know: the known intersection survives, the rest is masked.
        let n = Node::element("capabilities")
            .with_attr("version", "7")
            .with_attr("context-search", "true")
            .with_attr("content-search", "true")
            .with_attr("structured-results", "true")
            .with_attr("ranked", "true")
            .with_attr("min-score", "true")
            .with_attr("hologram-search", "true")
            .with_attr("quantum-join", "false");
        let (caps, version) = Capabilities::from_node(&n).unwrap();
        assert_eq!(version, 7);
        assert_eq!(caps, Capabilities::FULL);
    }
}
