//! Query results: hits and result sets.
//!
//! A hit is one matched section: the document it came from, the context
//! (heading) label, and the content subtree. Result sets render to XML in
//! the Fig-4 shape, ready to feed the XSLT composition step (Fig 7) or to
//! ship between federated NETMARK instances (Fig 8).

use netmark_model::{Document, Node};

/// One matched section.
#[derive(Debug, Clone, PartialEq)]
pub struct Hit {
    /// Source identifier (empty for local queries; set by federation).
    pub source: String,
    /// File name of the owning document.
    pub doc: String,
    /// The context (heading) label this content sits under.
    pub context: String,
    /// The section content as a tree (children of the `<Content>`).
    pub content: Node,
    /// Store-internal id of the context node (0 when not applicable,
    /// e.g. hits reconstructed from a remote source's XML).
    pub context_node: u64,
}

impl Hit {
    /// Plain-text rendering of the content.
    pub fn content_text(&self) -> String {
        self.content.text_content()
    }
}

/// An ordered set of hits plus query diagnostics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResultSet {
    /// Matched sections, in store order (or merge order for federation).
    pub hits: Vec<Hit>,
    /// How many candidate nodes the text index produced (diagnostics).
    pub candidates: usize,
    /// Whether a `limit=` truncated the hits.
    pub truncated: bool,
}

impl ResultSet {
    /// Empty result set.
    pub fn new() -> ResultSet {
        ResultSet::default()
    }

    /// Number of hits.
    pub fn len(&self) -> usize {
        self.hits.len()
    }

    /// True when no hits matched.
    pub fn is_empty(&self) -> bool {
        self.hits.is_empty()
    }

    /// Renders the result set as a `<results>` tree:
    ///
    /// ```xml
    /// <results count="2">
    ///   <hit doc="plan.wdoc" source="" >
    ///     <Context>Budget</Context>
    ///     <Content>...</Content>
    ///   </hit>
    /// </results>
    /// ```
    pub fn to_node(&self) -> Node {
        let mut root = Node::element("results")
            .with_attr("count", &self.hits.len().to_string())
            .with_attr("version", &crate::caps::WIRE_VERSION.to_string())
            .with_attr("candidates", &self.candidates.to_string());
        if self.truncated {
            root = root.with_attr("truncated", "true");
        }
        for h in &self.hits {
            let mut hit = Node::element("hit").with_attr("doc", &h.doc);
            if !h.source.is_empty() {
                hit = hit.with_attr("source", &h.source);
            }
            hit.children.push(Node::context("Context", &h.context));
            hit.children.push(h.content.clone());
            root.children.push(hit);
        }
        root
    }

    /// Serializes to XML text.
    pub fn to_xml(&self) -> String {
        self.to_node().to_xml()
    }

    /// Parses a `<results>` tree back into a result set (the federation
    /// router uses this to merge remote answers). Unknown children are
    /// skipped; a malformed hit is dropped rather than failing the set.
    pub fn from_node(node: &Node, source: &str) -> ResultSet {
        let mut rs = ResultSet::new();
        rs.truncated = node.attr("truncated") == Some("true");
        for hit in node.children_named("hit") {
            let doc = hit.attr("doc").unwrap_or("").to_string();
            let context = hit
                .find("Context")
                .map(|c| c.text_content())
                .unwrap_or_default();
            let content = hit
                .children_named("Content")
                .first()
                .map(|c| (*c).clone())
                .unwrap_or_else(|| Node::element("Content"));
            rs.hits.push(Hit {
                source: if hit.attr("source").map(|s| !s.is_empty()).unwrap_or(false) {
                    hit.attr("source").unwrap_or("").to_string()
                } else {
                    source.to_string()
                },
                doc,
                context,
                content,
                context_node: 0,
            });
        }
        // Remote diagnostics survive the wire when advertised; otherwise
        // fall back to the local hit count.
        rs.candidates = node
            .attr("candidates")
            .and_then(|c| c.parse().ok())
            .unwrap_or(rs.hits.len());
        rs
    }

    /// Wraps the hits as a composed document (the default composition used
    /// when no stylesheet is named: the Fig-6 "integrated results in a new
    /// document" behaviour).
    pub fn compose_default(&self, title: &str) -> Document {
        let mut root = Node::element("document").with_attr("name", title);
        for h in &self.hits {
            root.children
                .push(Node::context("Context", &h.context).with_attr("doc", &h.doc));
            root.children.push(h.content.clone());
        }
        Document::new(title, "composed", root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ResultSet {
        ResultSet {
            hits: vec![
                Hit {
                    source: String::new(),
                    doc: "plan-a.wdoc".into(),
                    context: "Budget".into(),
                    content: Node::element("Content").with_text("two dollars"),
                    context_node: 11,
                },
                Hit {
                    source: "llis".into(),
                    doc: "ll-0424.html".into(),
                    context: "Recommendation".into(),
                    content: Node::element("Content").with_text("replace harness"),
                    context_node: 0,
                },
            ],
            candidates: 9,
            truncated: false,
        }
    }

    #[test]
    fn to_node_shape() {
        let n = sample().to_node();
        assert_eq!(n.name, "results");
        assert_eq!(n.attr("count"), Some("2"));
        let hits = n.children_named("hit");
        assert_eq!(hits[0].attr("doc"), Some("plan-a.wdoc"));
        assert_eq!(hits[1].attr("source"), Some("llis"));
        assert_eq!(hits[0].find("Context").unwrap().text_content(), "Budget");
    }

    #[test]
    fn xml_round_trip_via_from_node() {
        let rs = sample();
        let node = rs.to_node();
        let back = ResultSet::from_node(&node, "local");
        assert_eq!(back.len(), 2);
        assert_eq!(
            back.hits[0].source, "local",
            "unsourced hits adopt the caller's source"
        );
        assert_eq!(back.hits[1].source, "llis", "explicit source wins");
        assert_eq!(back.hits[0].context, "Budget");
        assert_eq!(back.hits[0].content_text(), "two dollars");
    }

    #[test]
    fn compose_default_alternates() {
        let d = sample().compose_default("integrated.xml");
        let pairs = d.context_content_pairs();
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0], ("Budget".to_string(), "two dollars".to_string()));
    }

    #[test]
    fn empty_set() {
        let rs = ResultSet::new();
        assert!(rs.is_empty());
        assert_eq!(rs.to_node().attr("count"), Some("0"));
        let back = ResultSet::from_node(&rs.to_node(), "s");
        assert!(back.is_empty());
    }

    #[test]
    fn malformed_hits_skipped() {
        let n = Node::element("results")
            .with_child(Node::element("hit")) // no doc/context/content
            .with_child(Node::element("junk"));
        let rs = ResultSet::from_node(&n, "s");
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.hits[0].doc, "");
        assert_eq!(rs.hits[0].context, "");
    }
}
