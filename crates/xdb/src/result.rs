//! Query results: hits and result sets.
//!
//! A hit is one matched section: the document it came from, the context
//! (heading) label, and the content subtree. Result sets render to XML in
//! the Fig-4 shape, ready to feed the XSLT composition step (Fig 7) or to
//! ship between federated NETMARK instances (Fig 8).

use netmark_model::{Document, Node};

/// One matched section.
#[derive(Debug, Clone, PartialEq)]
pub struct Hit {
    /// Source identifier (empty for local queries; set by federation).
    pub source: String,
    /// File name of the owning document.
    pub doc: String,
    /// The context (heading) label this content sits under.
    pub context: String,
    /// The section content as a tree (children of the `<Content>`).
    pub content: Node,
    /// Store-internal id of the context node (0 when not applicable,
    /// e.g. hits reconstructed from a remote source's XML).
    pub context_node: u64,
    /// Relevance score (wire v2). `None` for unranked queries and for hits
    /// parsed from a pre-v2 `<results>` document; rendered as the per-hit
    /// `score` attribute when present.
    pub score: Option<f64>,
}

impl Hit {
    /// Plain-text rendering of the content.
    pub fn content_text(&self) -> String {
        self.content.text_content()
    }
}

/// Renders a relevance score for the wire. Fixed precision keeps the
/// rendering deterministic and stable across a parse/re-render cycle
/// (`format → parse → format` is the identity at this precision), which is
/// what lets federated merges compare scores that crossed the wire.
pub fn format_score(score: f64) -> String {
    format!("{score:.6}")
}

/// An ordered set of hits plus query diagnostics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResultSet {
    /// Matched sections, in store order (or merge order for federation).
    pub hits: Vec<Hit>,
    /// How many candidate nodes the text index produced (diagnostics).
    pub candidates: usize,
    /// Whether a `limit=` truncated the hits.
    pub truncated: bool,
    /// Whether the hits are relevance-ordered (wire v2: the `ranked`
    /// attribute on `<results>`). `false` means store order — the exact
    /// pre-v2 rendering, byte for byte.
    pub ranked: bool,
}

impl ResultSet {
    /// Empty result set.
    pub fn new() -> ResultSet {
        ResultSet::default()
    }

    /// Number of hits.
    pub fn len(&self) -> usize {
        self.hits.len()
    }

    /// True when no hits matched.
    pub fn is_empty(&self) -> bool {
        self.hits.is_empty()
    }

    /// Renders the result set as a `<results>` tree:
    ///
    /// ```xml
    /// <results count="2">
    ///   <hit doc="plan.wdoc" source="" >
    ///     <Context>Budget</Context>
    ///     <Content>...</Content>
    ///   </hit>
    /// </results>
    /// ```
    pub fn to_node(&self) -> Node {
        // The stamped version is the lowest one that can represent this
        // document: unranked sets use no v2 feature, so they render as v1 —
        // byte-identical to every pre-ranking release — while ranked sets
        // carry `version="2" ranked="true"` and per-hit scores.
        let version = if self.ranked {
            crate::caps::WIRE_VERSION
        } else {
            1
        };
        let mut root = Node::element("results")
            .with_attr("count", &self.hits.len().to_string())
            .with_attr("version", &version.to_string())
            .with_attr("candidates", &self.candidates.to_string());
        if self.truncated {
            root = root.with_attr("truncated", "true");
        }
        if self.ranked {
            root = root.with_attr("ranked", "true");
        }
        for h in &self.hits {
            let mut hit = Node::element("hit").with_attr("doc", &h.doc);
            if !h.source.is_empty() {
                hit = hit.with_attr("source", &h.source);
            }
            if self.ranked {
                if let Some(score) = h.score {
                    hit = hit.with_attr("score", &format_score(score));
                }
            }
            hit.children.push(Node::context("Context", &h.context));
            hit.children.push(h.content.clone());
            root.children.push(hit);
        }
        root
    }

    /// Serializes to XML text.
    pub fn to_xml(&self) -> String {
        self.to_node().to_xml()
    }

    /// Parses a `<results>` tree back into a result set (the federation
    /// router uses this to merge remote answers). Unknown children are
    /// skipped; a malformed hit is dropped rather than failing the set.
    pub fn from_node(node: &Node, source: &str) -> ResultSet {
        let mut rs = ResultSet::new();
        rs.truncated = node.attr("truncated") == Some("true");
        // v2 attributes parse when present and read as absent otherwise, so
        // one parser covers both wire versions: a v1 document yields an
        // unranked set, and a v1-era parser pointed at this document simply
        // never looked for these attributes.
        rs.ranked = node.attr("ranked") == Some("true");
        for hit in node.children_named("hit") {
            let doc = hit.attr("doc").unwrap_or("").to_string();
            let context = hit
                .find("Context")
                .map(|c| c.text_content())
                .unwrap_or_default();
            let content = hit
                .children_named("Content")
                .first()
                .map(|c| (*c).clone())
                .unwrap_or_else(|| Node::element("Content"));
            rs.hits.push(Hit {
                source: if hit.attr("source").map(|s| !s.is_empty()).unwrap_or(false) {
                    hit.attr("source").unwrap_or("").to_string()
                } else {
                    source.to_string()
                },
                doc,
                context,
                content,
                context_node: 0,
                score: hit.attr("score").and_then(|s| s.parse().ok()),
            });
        }
        // Remote diagnostics survive the wire when advertised; otherwise
        // fall back to the local hit count.
        rs.candidates = node
            .attr("candidates")
            .and_then(|c| c.parse().ok())
            .unwrap_or(rs.hits.len());
        rs
    }

    /// Wraps the hits as a composed document (the default composition used
    /// when no stylesheet is named: the Fig-6 "integrated results in a new
    /// document" behaviour).
    pub fn compose_default(&self, title: &str) -> Document {
        let mut root = Node::element("document").with_attr("name", title);
        for h in &self.hits {
            root.children
                .push(Node::context("Context", &h.context).with_attr("doc", &h.doc));
            root.children.push(h.content.clone());
        }
        Document::new(title, "composed", root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ResultSet {
        ResultSet {
            hits: vec![
                Hit {
                    source: String::new(),
                    doc: "plan-a.wdoc".into(),
                    context: "Budget".into(),
                    content: Node::element("Content").with_text("two dollars"),
                    context_node: 11,
                    score: None,
                },
                Hit {
                    source: "llis".into(),
                    doc: "ll-0424.html".into(),
                    context: "Recommendation".into(),
                    content: Node::element("Content").with_text("replace harness"),
                    context_node: 0,
                    score: None,
                },
            ],
            candidates: 9,
            truncated: false,
            ranked: false,
        }
    }

    #[test]
    fn to_node_shape() {
        let n = sample().to_node();
        assert_eq!(n.name, "results");
        assert_eq!(n.attr("count"), Some("2"));
        let hits = n.children_named("hit");
        assert_eq!(hits[0].attr("doc"), Some("plan-a.wdoc"));
        assert_eq!(hits[1].attr("source"), Some("llis"));
        assert_eq!(hits[0].find("Context").unwrap().text_content(), "Budget");
    }

    #[test]
    fn xml_round_trip_via_from_node() {
        let rs = sample();
        let node = rs.to_node();
        let back = ResultSet::from_node(&node, "local");
        assert_eq!(back.len(), 2);
        assert_eq!(
            back.hits[0].source, "local",
            "unsourced hits adopt the caller's source"
        );
        assert_eq!(back.hits[1].source, "llis", "explicit source wins");
        assert_eq!(back.hits[0].context, "Budget");
        assert_eq!(back.hits[0].content_text(), "two dollars");
    }

    #[test]
    fn compose_default_alternates() {
        let d = sample().compose_default("integrated.xml");
        let pairs = d.context_content_pairs();
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0], ("Budget".to_string(), "two dollars".to_string()));
    }

    #[test]
    fn empty_set() {
        let rs = ResultSet::new();
        assert!(rs.is_empty());
        assert_eq!(rs.to_node().attr("count"), Some("0"));
        let back = ResultSet::from_node(&rs.to_node(), "s");
        assert!(back.is_empty());
    }

    #[test]
    fn ranked_sets_render_and_round_trip_scores() {
        let mut rs = sample();
        rs.ranked = true;
        rs.hits[0].score = Some(2.5);
        rs.hits[1].score = Some(0.125);
        let node = rs.to_node();
        assert_eq!(node.attr("ranked"), Some("true"));
        assert_eq!(node.attr("version"), Some("2"));
        let hits = node.children_named("hit");
        assert_eq!(hits[0].attr("score"), Some("2.500000"));
        assert_eq!(hits[1].attr("score"), Some("0.125000"));
        let back = ResultSet::from_node(&node, "local");
        assert!(back.ranked);
        assert_eq!(back.hits[0].score, Some(2.5));
        assert_eq!(back.hits[1].score, Some(0.125));
    }

    #[test]
    fn unranked_sets_render_as_wire_v1_bytes() {
        // The rank=none rendering is pinned to the exact pre-v2 bytes: a
        // version-1 stamp, no `ranked` attribute, no per-hit scores. This
        // is the back-compat half of the wire bump — old clients see a
        // document indistinguishable from what a v1 server sent.
        let xml = sample().to_xml();
        assert!(xml.contains("version=\"1\""), "{xml}");
        assert!(!xml.contains("ranked"), "{xml}");
        assert!(!xml.contains("score"), "{xml}");
    }

    #[test]
    fn canned_v1_results_bytes_still_parse() {
        // A v2 client (this build) pointed at canned bytes captured from a
        // v1 server: everything parses, ranking reads as absent.
        let v1_bytes = "<results count=\"2\" version=\"1\" candidates=\"5\">\
             <hit doc=\"plan-a.wdoc\"><Context>Budget</Context>\
             <Content>two dollars</Content></hit>\
             <hit doc=\"ll-0424.html\" source=\"llis\">\
             <Context>Recommendation</Context>\
             <Content>replace harness</Content></hit></results>";
        let node = netmark_sgml::parse_xml(v1_bytes, &netmark_sgml::NodeTypeConfig::empty())
            .expect("canned v1 bytes parse");
        let rs = ResultSet::from_node(&node, "remote");
        assert_eq!(rs.len(), 2);
        assert!(!rs.ranked);
        assert_eq!(rs.candidates, 5);
        assert!(rs.hits.iter().all(|h| h.score.is_none()));
        assert_eq!(rs.hits[0].source, "remote");
        assert_eq!(rs.hits[1].source, "llis");
        assert_eq!(rs.hits[0].content_text(), "two dollars");
    }

    #[test]
    fn v1_client_ignores_v2_score_attributes_gracefully() {
        // The other direction: canned bytes from a v2 server answering a
        // ranked query, read by a parser that predates ranking. We emulate
        // the v1 parser's exact field set (doc/source/Context/Content —
        // score and ranked were unknown attributes to it, and unknown
        // attributes were always skipped). Nothing breaks, hit order and
        // contents survive.
        let v2_bytes = "<results count=\"2\" version=\"2\" candidates=\"7\" ranked=\"true\">\
             <hit doc=\"b.txt\" score=\"3.250000\"><Context>Budget</Context>\
             <Content>engine engine engine</Content></hit>\
             <hit doc=\"a.txt\" score=\"1.000000\"><Context>Budget</Context>\
             <Content>engine</Content></hit></results>";
        let node = netmark_sgml::parse_xml(v2_bytes, &netmark_sgml::NodeTypeConfig::empty())
            .expect("canned v2 bytes parse");
        // The v1 field set, extracted exactly as the v1 parser did.
        let mut v1_hits = Vec::new();
        for hit in node.children_named("hit") {
            let doc = hit.attr("doc").unwrap_or("").to_string();
            let context = hit
                .find("Context")
                .map(|c| c.text_content())
                .unwrap_or_default();
            v1_hits.push((doc, context));
        }
        assert_eq!(
            v1_hits,
            vec![
                ("b.txt".to_string(), "Budget".to_string()),
                ("a.txt".to_string(), "Budget".to_string()),
            ],
            "v1 clients read v2 responses in score order with scores ignored"
        );
        // And this build reads the same bytes with full fidelity.
        let rs = ResultSet::from_node(&node, "remote");
        assert!(rs.ranked);
        assert_eq!(rs.hits[0].score, Some(3.25));
    }

    #[test]
    fn malformed_hits_skipped() {
        let n = Node::element("results")
            .with_child(Node::element("hit")) // no doc/context/content
            .with_child(Node::element("junk"));
        let rs = ResultSet::from_node(&n, "s");
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.hits[0].doc, "");
        assert_eq!(rs.hits[0].context, "");
    }
}
