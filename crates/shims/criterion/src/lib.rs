//! Offline stand-in for the `criterion` crate.
//!
//! The build must succeed with no crates.io access (DESIGN.md §6), so this
//! workspace-local crate implements the subset of criterion's API the
//! `micro` bench uses — `criterion_group!` / `criterion_main!`,
//! `Criterion::bench_function`, `Bencher::iter` / `iter_batched`, the
//! builder knobs — as a plain wall-clock harness: warm-up, then timed
//! samples, reporting median ns/iter to stdout. No statistics beyond
//! median/min/max, no HTML reports, no regression tracking.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// How batches are sized in [`Bencher::iter_batched`] (accepted for API
/// compatibility; this harness always runs one routine call per setup).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One routine call per batch.
    PerIteration,
}

/// The benchmark driver: configuration plus result printing.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Total time budget for the timed samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Time spent warming up (and calibrating iterations/sample).
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            warm_up: self.warm_up_time,
            measurement: self.measurement_time,
            sample_size: self.sample_size,
        };
        f(&mut b);
        b.report(name);
        self
    }
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    /// Collected per-iteration timings in nanoseconds.
    samples: Vec<f64>,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up doubles as calibration: how many iterations fit in one
        // sample slot.
        let warm_until = Instant::now() + self.warm_up;
        let mut warm_iters: u64 = 0;
        let warm_start = Instant::now();
        while Instant::now() < warm_until {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let slot = self.measurement.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((slot / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            self.samples.push(elapsed / iters_per_sample as f64);
        }
    }

    /// Times `routine` over fresh inputs built by `setup` (setup time is
    /// excluded from the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_until = Instant::now() + self.warm_up;
        while Instant::now() < warm_until {
            std::hint::black_box(routine(setup()));
        }
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(start.elapsed().as_nanos() as f64);
        }
    }

    fn report(&mut self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        self.samples.sort_by(|a, b| a.total_cmp(b));
        let median = self.samples[self.samples.len() / 2];
        let min = self.samples[0];
        let max = self.samples[self.samples.len() - 1];
        println!(
            "{name:<40} median {} (min {}, max {}, {} samples)",
            fmt_ns(median),
            fmt_ns(min),
            fmt_ns(max),
            self.samples.len()
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group: a function running each target against a
/// shared [`Criterion`] configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut count = 0u64;
        c.bench_function("smoke/iter", |b| b.iter(|| count += 1));
        assert!(count > 0);
        c.bench_function("smoke/batched", |b| {
            b.iter_batched(|| vec![1u8; 8], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
