//! Offline stand-in for the `proptest` crate.
//!
//! The build must succeed with no crates.io access (DESIGN.md §6), so this
//! workspace-local crate implements the subset of proptest's API the repo's
//! property tests use: the `proptest!` / `prop_oneof!` / `prop_assert*` /
//! `prop_assume!` macros, the [`Strategy`] trait with `prop_map` /
//! `prop_filter` / `prop_recursive`, `any::<T>()`, `Just`, ranges and
//! tuples as strategies, `collection::vec`, `option::of`, and `&str`
//! regex-lite string strategies (character classes, `.`, and `{m,n}`
//! quantifiers only).
//!
//! Differences from upstream: no shrinking (a failure reports the raw
//! generated input and the RNG seed instead of a minimal counterexample),
//! and seeds are taken from entropy unless `PROPTEST_SEED` is set.

pub mod strategy {
    use rand::prelude::*;
    use std::ops::Range;
    use std::sync::Arc;

    /// The RNG handed to every strategy (one per test, seeded by the
    /// runner).
    pub type TestRng = SmallRng;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Keeps only values passing `pred`; `whence` names the filter in
        /// the panic raised if it rejects nearly everything.
        fn prop_filter<F>(self, whence: impl Into<String>, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence: whence.into(),
                pred,
            }
        }

        /// Builds recursive values: level `k` draws either from level
        /// `k-1` or from `recurse(level k-1)`, bottoming out at `self`.
        /// `_desired_size` / `_expected_branch_size` are accepted for API
        /// compatibility; recursion depth alone bounds generated values.
        fn prop_recursive<F, S2>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
            S2: Strategy<Value = Self::Value> + 'static,
        {
            let mut level = self.boxed();
            for _ in 0..depth {
                level = Union::new(vec![level.clone(), recurse(level).boxed()]).boxed();
            }
            level
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        whence: String,
        pred: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..5_000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter {:?} rejected 5000 candidates in a row",
                self.whence
            );
        }
    }

    /// Uniform choice between type-erased alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    /// Produces uniform primitives via the [`super::arbitrary::Arbitrary`]
    /// impls (`any::<T>()`).
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    impl<T: super::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            super::regex_lite::sample(self, rng)
        }
    }
}

pub mod arbitrary {
    use super::strategy::TestRng;
    use rand::Rng;

    /// Types `any::<T>()` can produce.
    pub trait Arbitrary: Sized {
        /// Generates one uniformly random value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    // Full bit patterns on purpose: infinities, subnormals, and the
    // occasional NaN exercise codec edge cases.
    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            f64::from_bits(rng.next_u64())
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            f32::from_bits(rng.next_u64() as u32)
        }
    }
}

/// `any::<T>()`: a strategy for uniformly random `T`.
pub fn any<T: arbitrary::Arbitrary>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

pub mod collection {
    use super::strategy::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// A strategy for `Vec`s with length drawn from `size` and elements
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::strategy::{Strategy, TestRng};
    use rand::Rng;

    /// A strategy producing `None` or `Some(inner value)` with equal
    /// probability.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Strategy returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_bool(0.5) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod regex_lite {
    //! Generator for the tiny regex dialect the repo's string strategies
    //! use: literal chars, `.`, character classes with ranges, and `{n}` /
    //! `{m,n}` quantifiers. Anything else panics loudly rather than
    //! silently generating the wrong language.

    use super::strategy::TestRng;
    use rand::Rng;

    enum CharSet {
        /// `.` — any char except `\n`, weighted toward printable ASCII.
        Dot,
        /// `[...]` or a literal — inclusive char ranges.
        Ranges(Vec<(char, char)>),
    }

    struct Atom {
        set: CharSet,
        min: usize,
        max: usize,
    }

    /// Generates one string matching `pattern`.
    pub fn sample(pattern: &str, rng: &mut TestRng) -> String {
        let atoms = parse(pattern);
        let mut out = String::new();
        for atom in &atoms {
            let n = if atom.min == atom.max {
                atom.min
            } else {
                rng.gen_range(atom.min..=atom.max)
            };
            for _ in 0..n {
                out.push(sample_char(&atom.set, rng));
            }
        }
        out
    }

    fn sample_char(set: &CharSet, rng: &mut TestRng) -> char {
        match set {
            CharSet::Dot => {
                // Mostly printable ASCII, with occasional wider Unicode and
                // control chars (never '\n', matching regex `.`).
                match rng.gen_range(0usize..100) {
                    0..=84 => rng.gen_range(0x20u32..0x7f).try_into().unwrap(),
                    85..=94 => {
                        const EXOTIC: &[(u32, u32)] = &[
                            (0x00c0, 0x00ff),   // Latin-1 letters
                            (0x0391, 0x03c9),   // Greek
                            (0x4e00, 0x4e80),   // CJK slice
                            (0x1f600, 0x1f640), // emoji
                        ];
                        let (lo, hi) = EXOTIC[rng.gen_range(0..EXOTIC.len())];
                        char::from_u32(rng.gen_range(lo..=hi)).unwrap_or('\u{00e9}')
                    }
                    _ => {
                        // Control chars minus '\n'.
                        let c = rng.gen_range(0x00u32..0x1f);
                        char::from_u32(if c == 0x0a { 0x09 } else { c }).unwrap()
                    }
                }
            }
            CharSet::Ranges(ranges) => {
                let total: u32 = ranges.iter().map(|&(a, b)| b as u32 - a as u32 + 1).sum();
                let mut pick = rng.gen_range(0..total);
                for &(a, b) in ranges {
                    let span = b as u32 - a as u32 + 1;
                    if pick < span {
                        return char::from_u32(a as u32 + pick)
                            .expect("class ranges stay within one scalar block");
                    }
                    pick -= span;
                }
                unreachable!("pick < total by construction")
            }
        }
    }

    fn parse(pattern: &str) -> Vec<Atom> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let set = match chars[i] {
                '.' => {
                    i += 1;
                    CharSet::Dot
                }
                '[' => {
                    i += 1;
                    let mut ranges = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let c = chars[i];
                        if c == '^' && ranges.is_empty() {
                            panic!("regex-lite: negated classes unsupported in {pattern:?}");
                        }
                        // `a-z` is a range unless `-` is last in the class.
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            let hi = chars[i + 2];
                            assert!(c <= hi, "regex-lite: bad range {c}-{hi} in {pattern:?}");
                            ranges.push((c, hi));
                            i += 3;
                        } else {
                            ranges.push((c, c));
                            i += 1;
                        }
                    }
                    assert!(
                        i < chars.len(),
                        "regex-lite: unterminated class in {pattern:?}"
                    );
                    i += 1; // consume ']'
                    CharSet::Ranges(ranges)
                }
                '\\' => {
                    assert!(
                        i + 1 < chars.len(),
                        "regex-lite: trailing backslash in {pattern:?}"
                    );
                    let c = chars[i + 1];
                    i += 2;
                    CharSet::Ranges(vec![(c, c)])
                }
                '(' | ')' | '|' | '*' | '+' | '?' => {
                    panic!(
                        "regex-lite: unsupported regex syntax {:?} in {pattern:?}",
                        chars[i]
                    )
                }
                c => {
                    i += 1;
                    CharSet::Ranges(vec![(c, c)])
                }
            };
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                i += 1;
                let mut digits = String::new();
                while i < chars.len() && chars[i].is_ascii_digit() {
                    digits.push(chars[i]);
                    i += 1;
                }
                let lo: usize = digits.parse().expect("regex-lite: bad quantifier");
                let hi = if i < chars.len() && chars[i] == ',' {
                    i += 1;
                    let mut digits = String::new();
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        digits.push(chars[i]);
                        i += 1;
                    }
                    digits.parse().expect("regex-lite: bad quantifier")
                } else {
                    lo
                };
                assert!(
                    i < chars.len() && chars[i] == '}',
                    "regex-lite: unterminated quantifier in {pattern:?}"
                );
                i += 1;
                (lo, hi)
            } else {
                (1, 1)
            };
            atoms.push(Atom { set, min, max });
        }
        atoms
    }
}

pub mod test_runner {
    use super::strategy::TestRng;
    use rand::SeedableRng;

    /// Per-`proptest!` block configuration.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion failed — the whole test fails.
        Fail(String),
        /// `prop_assume!` rejected the input — the case is retried.
        Reject(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        /// A rejection (assumption not met) with the given message.
        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }

        /// Attaches the generated input's debug repr to a failure.
        pub fn with_input(self, input: &str) -> TestCaseError {
            match self {
                TestCaseError::Fail(msg) => TestCaseError::Fail(format!("{msg}\n  input: {input}")),
                reject => reject,
            }
        }
    }

    /// Drives one `proptest!` test: runs `case` until `config.cases`
    /// successes, retrying rejections (bounded) and panicking on failure
    /// with the seed needed to reproduce (`PROPTEST_SEED` env var).
    pub fn run_cases(
        config: ProptestConfig,
        mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    ) {
        let seed = match std::env::var("PROPTEST_SEED") {
            Ok(s) => s
                .parse::<u64>()
                .unwrap_or_else(|_| panic!("PROPTEST_SEED must be a u64, got {s:?}")),
            Err(_) => entropy(),
        };
        let mut rng = TestRng::seed_from_u64(seed);
        let mut passed = 0u32;
        let mut rejected = 0u32;
        let max_rejects = config.cases.saturating_mul(16).max(1024);
        while passed < config.cases {
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(why)) => {
                    rejected += 1;
                    if rejected > max_rejects {
                        panic!(
                            "proptest: {rejected} rejections ({why}) with only {passed}/{} \
                             passes; seed {seed}",
                            config.cases
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest: case {} failed (reproduce with PROPTEST_SEED={seed}): {msg}",
                        passed + 1
                    );
                }
            }
        }
    }

    fn entropy() -> u64 {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0)
            ^ (std::process::id() as u64).rotate_left(32)
    }
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run_cases($config, |__pt_rng| {
                    let __pt_vals = (
                        $( $crate::strategy::Strategy::generate(&{ $strat }, __pt_rng), )+
                    );
                    let __pt_repr = format!("{:?}", __pt_vals);
                    let __pt_outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(move || {
                            let ( $($arg,)+ ) = __pt_vals;
                            let __pt_run = move ||
                                -> ::std::result::Result<(), $crate::test_runner::TestCaseError>
                            {
                                $body
                                ::std::result::Result::Ok(())
                            };
                            __pt_run()
                        }),
                    );
                    match __pt_outcome {
                        ::std::result::Result::Ok(r) => {
                            r.map_err(|e| e.with_input(&__pt_repr))
                        }
                        ::std::result::Result::Err(payload) => {
                            eprintln!("proptest: panicked on input: {__pt_repr}");
                            ::std::panic::resume_unwind(payload)
                        }
                    }
                });
            }
        )*
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}

/// Like `assert!` inside `proptest!` bodies: fails the case, reporting the
/// generated input.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Like `assert_eq!` inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__pt_l, __pt_r) => {
                if !(*__pt_l == *__pt_r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: {} == {}\n  left: {:?}\n  right: {:?}",
                            stringify!($left),
                            stringify!($right),
                            __pt_l,
                            __pt_r,
                        ),
                    ));
                }
            }
        }
    };
}

/// Discards the current case (retried with fresh input) when `cond` is
/// false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Commonly imported names, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::TestRng;
    use rand::SeedableRng;

    #[test]
    fn regex_lite_matches_shapes() {
        let mut rng = TestRng::seed_from_u64(5);
        for _ in 0..200 {
            let s = crate::regex_lite::sample("[a-zA-Z][a-zA-Z0-9_-]{0,8}", &mut rng);
            assert!((1..=9).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_alphabetic());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-'));

            let t = crate::regex_lite::sample("[ -~&<>]{1,20}", &mut rng);
            assert!((1..=20).contains(&t.chars().count()));
            assert!(t.chars().all(|c| (' '..='~').contains(&c)));

            let dot = crate::regex_lite::sample(".{0,40}", &mut rng);
            assert!(dot.chars().count() <= 40);
            assert!(!dot.contains('\n'));

            let one = crate::regex_lite::sample("[a-z]{1}", &mut rng);
            assert_eq!(one.chars().count(), 1);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]
        /// The macro plumbing generates, asserts, and assumes.
        #[test]
        fn macro_round_trip(
            v in crate::collection::vec(any::<u8>(), 0..10),
            n in 3usize..17,
            s in "[a-z]{2,4}",
            o in crate::option::of(0u64..5),
        ) {
            prop_assume!(n != 4);
            prop_assert!(v.len() < 10);
            prop_assert!((3..17).contains(&n) && n != 4);
            prop_assert_eq!(s.len(), s.chars().count());
            prop_assert!((2..=4).contains(&s.len()));
            if let Some(x) = o {
                prop_assert!(x < 5);
            }
        }
    }

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf(u8),
        Node(Vec<Tree>),
    }

    fn depth(t: &Tree) -> usize {
        match t {
            Tree::Leaf(_) => 1,
            Tree::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]
        /// prop_oneof + prop_recursive produce bounded-depth trees.
        #[test]
        fn recursive_strategy_bounded(
            t in prop_oneof![
                any::<u8>().prop_map(Tree::Leaf),
                Just(Tree::Leaf(0)),
            ]
            .prop_recursive(3, 40, 5, |inner| {
                crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
            })
        ) {
            prop_assert!(depth(&t) <= 4);
        }
    }

    #[test]
    #[should_panic(expected = "assertion failed")]
    fn failing_case_panics() {
        crate::test_runner::run_cases(ProptestConfig::with_cases(5), |_rng| {
            let v = 1u8;
            let run = || -> Result<(), TestCaseError> {
                prop_assert!(v == 2);
                Ok(())
            };
            run()
        });
    }
}
