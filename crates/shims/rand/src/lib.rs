//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build must succeed with no crates.io access (DESIGN.md §6). This
//! crate supplies the pieces of `rand` 0.8 the repo uses: `SmallRng`,
//! `StdRng`, the `Rng` + `SeedableRng` traits with `gen`, `gen_range`,
//! `gen_bool`, and the free `random::<T>()` function. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic for a given
//! seed, which is all the corpus generators and tests rely on (stream
//! values differ from upstream `rand`, seeds are not portable).

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Seedable generator constructors (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator from OS-ish entropy (time + a counter).
    fn from_entropy() -> Self {
        Self::seed_from_u64(entropy_seed())
    }
}

fn entropy_seed() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let t = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    // Mix in the address of a stack local for per-thread variation.
    let local = 0u8;
    let addr = &local as *const u8 as u64;
    t ^ addr.rotate_left(32) ^ COUNTER.fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed)
}

/// Sampling interface (subset of `rand::Rng`).
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value of a supported primitive type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform value in `range` (half-open `a..b` or inclusive `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// True with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

/// Marker for types `Rng::gen` / [`random`] can produce.
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add(uniform_u64(rng, span) as $wide) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as $wide).wrapping_add(uniform_u64(rng, span + 1) as $wide) as $t
            }
        }
    )*};
}
impl_sample_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Unbiased uniform sample in `[0, span)` (`span == 0` means the full
/// 64-bit range) via rejection of the biased tail.
fn uniform_u64<R: Rng>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// xoshiro256++ core shared by [`rngs::SmallRng`] and [`rngs::StdRng`].
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_u64(seed: u64) -> Xoshiro256 {
        // SplitMix64 expansion, per the xoshiro reference implementation.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Xoshiro256 {
            s: [next(), next(), next(), next()],
        }
    }

    #[inline]
    fn next(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Concrete generators (subset of `rand::rngs`).
pub mod rngs {
    use super::*;

    /// A small fast generator (xoshiro256++ here).
    #[derive(Debug, Clone)]
    pub struct SmallRng(pub(crate) Xoshiro256);

    /// The "standard" generator — same engine as [`SmallRng`] in this shim.
    #[derive(Debug, Clone)]
    pub struct StdRng(pub(crate) Xoshiro256);

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng(Xoshiro256::from_u64(seed))
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(Xoshiro256::from_u64(seed))
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next()
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next()
        }
    }
}

/// A random value from ambient entropy (subset of `rand::random`).
pub fn random<T: Standard>() -> T {
    use rngs::SmallRng;
    let mut rng = SmallRng::seed_from_u64(entropy_seed());
    rng.gen()
}

/// Commonly imported names (subset of `rand::prelude`).
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::{random, Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen_range(0.0..10.0);
            assert!((0.0..10.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_hits_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..10_000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets reachable: {seen:?}");
    }

    #[test]
    fn random_compiles_for_used_types() {
        let _: u64 = random();
        let _: bool = random();
        let mut rng = SmallRng::seed_from_u64(9);
        let _: u32 = rng.gen();
        let _: f64 = rng.gen();
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }
}
