//! Offline stand-in for the `parking_lot` crate.
//!
//! The build must succeed with no crates.io access (DESIGN.md §6), so this
//! workspace-local crate provides the subset of the `parking_lot` API the
//! repo uses — `Mutex`, `RwLock`, `Condvar` and their guards — backed by
//! `std::sync`. Poisoning is absorbed: a panic while holding a lock does
//! not poison it for later users, matching `parking_lot` semantics closely
//! enough for this codebase (panics during a write transaction abort the
//! transaction via `Drop`, they never leave shared state torn).

#![warn(missing_docs)]

use std::fmt;
use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutual exclusion primitive (non-poisoning `lock()` API).
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking;
    /// requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A reader-writer lock (non-poisoning `read()`/`write()` API).
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

/// Exclusive-write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(RwLockReadGuard(g)),
            Err(sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard(p.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking;
    /// requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A condition variable usable with [`MutexGuard`] (parking_lot-style
/// `wait(&mut guard)` API).
#[derive(Default)]
pub struct Condvar(sync::Condvar);

/// Result of a timed wait: reports whether the wait timed out.
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar(sync::Condvar::new())
    }

    /// Blocks until notified, atomically releasing and reacquiring the
    /// guard's mutex.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        take_guard(&mut guard.0, |g| {
            self.0.wait(g).unwrap_or_else(PoisonError::into_inner)
        });
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        take_guard(&mut guard.0, |g| {
            let (g, res) = self
                .0
                .wait_timeout(g, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            timed_out = res.timed_out();
            g
        });
        WaitTimeoutResult(timed_out)
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Moves the std guard out of `slot`, runs `f` (which consumes and returns
/// a guard), and puts the result back. `std::sync::Condvar::wait` takes the
/// guard by value while our API mirrors parking_lot's `&mut guard`.
fn take_guard<'a, T>(
    slot: &mut sync::MutexGuard<'a, T>,
    f: impl FnOnce(sync::MutexGuard<'a, T>) -> sync::MutexGuard<'a, T>,
) {
    // SAFETY: `slot` is forgotten before being overwritten, so the old
    // guard is never dropped (the mutex stays locked through `f`'s return
    // value), and exactly one guard exists at every point.
    unsafe {
        let guard = std::ptr::read(slot);
        let new = f(guard);
        std::ptr::write(slot, new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
    }

    #[test]
    fn panic_does_not_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock usable after a panicking holder");
    }
}
