//! Error type shared by every layer of the storage engine.

use std::fmt;

/// Errors surfaced by the storage engine.
#[derive(Debug)]
pub enum StoreError {
    /// An operating-system level I/O failure.
    Io(std::io::Error),
    /// A tuple or key did not fit in a page even after compaction.
    TupleTooLarge {
        /// Offending size in bytes.
        size: usize,
        /// Maximum supported size.
        max: usize,
    },
    /// A [`crate::RowId`] did not resolve to a live tuple.
    RowNotFound(crate::RowId),
    /// A named table or index does not exist.
    NoSuchObject(String),
    /// A named table or index already exists.
    AlreadyExists(String),
    /// On-disk bytes failed to decode (corruption or version mismatch).
    Corrupt(String),
    /// An operation was attempted on a finished (committed/aborted) transaction.
    TxnFinished,
    /// A second write transaction was requested while one is active.
    TxnBusy,
    /// Catch-all for invalid arguments (e.g. mismatched key arity).
    Invalid(String),
    /// A read view outlived the configured `max_view_lag` and a checkpoint
    /// reclaimed disk images it depended on; the view can no longer serve
    /// pages it had not already materialized.
    ViewEvicted,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::TupleTooLarge { size, max } => {
                write!(f, "tuple of {size} bytes exceeds page capacity {max}")
            }
            StoreError::RowNotFound(rid) => write!(f, "row {rid} not found"),
            StoreError::NoSuchObject(name) => write!(f, "no such table or index: {name}"),
            StoreError::AlreadyExists(name) => write!(f, "table or index already exists: {name}"),
            StoreError::Corrupt(msg) => write!(f, "corrupt data: {msg}"),
            StoreError::TxnFinished => write!(f, "transaction already finished"),
            StoreError::TxnBusy => write!(f, "another write transaction is active"),
            StoreError::Invalid(msg) => write!(f, "invalid argument: {msg}"),
            StoreError::ViewEvicted => {
                write!(f, "read view evicted by checkpoint (exceeded max_view_lag)")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, StoreError>;
