//! Redo-only write-ahead log.
//!
//! The engine runs a **no-steal / no-force** policy: uncommitted changes
//! never reach data files (see [`crate::buffer`]), so the log only needs
//! *redo* information. Commit appends a `Commit` record and fsyncs the log;
//! data pages are written back lazily at checkpoints. Recovery replays the
//! operations of committed transactions, using per-page LSNs for
//! idempotence, then checkpoints and truncates the log.
//!
//! Records reference tables by their stable catalog [`ObjectId`] — not by
//! [`crate::disk::FileId`], which depends on open order.
//!
//! On-disk record framing: `len u32 | checksum u32 | body`, where body is
//! `lsn u64 | kind u8 | payload`. A truncated or checksum-failing tail
//! record marks the end of the usable log (torn write at crash).

use crate::error::{Result, StoreError};
use crate::tuple::{read_varint, write_varint};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Stable identifier of a catalogued table (survives restarts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub u32);

/// Transaction identifier.
pub type TxId = u64;

/// Log sequence number. Strictly increasing across the database lifetime.
pub type Lsn = u64;

/// One logical log record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Transaction start.
    Begin {
        /// Starting transaction.
        tx: TxId,
    },
    /// Transaction commit (durable once this record is synced).
    Commit {
        /// Committing transaction.
        tx: TxId,
    },
    /// Transaction abort (informational; no-steal means nothing to undo on
    /// disk).
    Abort {
        /// Aborting transaction.
        tx: TxId,
    },
    /// A cell was inserted at an exact `(page, slot)` of a heap table.
    Insert {
        /// Owning transaction.
        tx: TxId,
        /// Target table.
        obj: ObjectId,
        /// Heap page number.
        page: u32,
        /// Slot within the page.
        slot: u16,
        /// Raw cell bytes (including the heap record-kind prefix).
        data: Vec<u8>,
    },
    /// A cell was deleted.
    Delete {
        /// Owning transaction.
        tx: TxId,
        /// Target table.
        obj: ObjectId,
        /// Heap page number.
        page: u32,
        /// Slot within the page.
        slot: u16,
        /// Previous cell bytes (kept for in-memory abort; unused by redo).
        old: Vec<u8>,
    },
    /// A cell was rewritten in place.
    Update {
        /// Owning transaction.
        tx: TxId,
        /// Target table.
        obj: ObjectId,
        /// Heap page number.
        page: u32,
        /// Slot within the page.
        slot: u16,
        /// Previous cell bytes.
        old: Vec<u8>,
        /// New cell bytes.
        new: Vec<u8>,
    },
    /// All dirty pages were flushed; records before this point are obsolete.
    Checkpoint,
}

impl WalRecord {
    /// The owning transaction, if any.
    pub fn tx(&self) -> Option<TxId> {
        match self {
            WalRecord::Begin { tx }
            | WalRecord::Commit { tx }
            | WalRecord::Abort { tx }
            | WalRecord::Insert { tx, .. }
            | WalRecord::Delete { tx, .. }
            | WalRecord::Update { tx, .. } => Some(*tx),
            WalRecord::Checkpoint => None,
        }
    }
}

fn encode_body(lsn: Lsn, rec: &WalRecord, out: &mut Vec<u8>) {
    out.extend_from_slice(&lsn.to_le_bytes());
    match rec {
        WalRecord::Begin { tx } => {
            out.push(1);
            out.extend_from_slice(&tx.to_le_bytes());
        }
        WalRecord::Commit { tx } => {
            out.push(2);
            out.extend_from_slice(&tx.to_le_bytes());
        }
        WalRecord::Abort { tx } => {
            out.push(3);
            out.extend_from_slice(&tx.to_le_bytes());
        }
        WalRecord::Insert {
            tx,
            obj,
            page,
            slot,
            data,
        } => {
            out.push(4);
            out.extend_from_slice(&tx.to_le_bytes());
            out.extend_from_slice(&obj.0.to_le_bytes());
            out.extend_from_slice(&page.to_le_bytes());
            out.extend_from_slice(&slot.to_le_bytes());
            write_varint(out, data.len() as u64);
            out.extend_from_slice(data);
        }
        WalRecord::Delete {
            tx,
            obj,
            page,
            slot,
            old,
        } => {
            out.push(5);
            out.extend_from_slice(&tx.to_le_bytes());
            out.extend_from_slice(&obj.0.to_le_bytes());
            out.extend_from_slice(&page.to_le_bytes());
            out.extend_from_slice(&slot.to_le_bytes());
            write_varint(out, old.len() as u64);
            out.extend_from_slice(old);
        }
        WalRecord::Update {
            tx,
            obj,
            page,
            slot,
            old,
            new,
        } => {
            out.push(6);
            out.extend_from_slice(&tx.to_le_bytes());
            out.extend_from_slice(&obj.0.to_le_bytes());
            out.extend_from_slice(&page.to_le_bytes());
            out.extend_from_slice(&slot.to_le_bytes());
            write_varint(out, old.len() as u64);
            out.extend_from_slice(old);
            write_varint(out, new.len() as u64);
            out.extend_from_slice(new);
        }
        WalRecord::Checkpoint => out.push(7),
    }
}

fn take<const N: usize>(buf: &[u8], pos: &mut usize) -> Result<[u8; N]> {
    let end = *pos + N;
    let arr: [u8; N] = buf
        .get(*pos..end)
        .ok_or_else(|| StoreError::Corrupt("wal record truncated".into()))?
        .try_into()
        .unwrap();
    *pos = end;
    Ok(arr)
}

fn take_bytes(buf: &[u8], pos: &mut usize) -> Result<Vec<u8>> {
    let len = read_varint(buf, pos)? as usize;
    let end = pos
        .checked_add(len)
        .filter(|&e| e <= buf.len())
        .ok_or_else(|| StoreError::Corrupt("wal payload truncated".into()))?;
    let v = buf[*pos..end].to_vec();
    *pos = end;
    Ok(v)
}

fn decode_body(body: &[u8]) -> Result<(Lsn, WalRecord)> {
    let mut pos = 0usize;
    let lsn = u64::from_le_bytes(take::<8>(body, &mut pos)?);
    let kind = take::<1>(body, &mut pos)?[0];
    let rec = match kind {
        1 => WalRecord::Begin {
            tx: u64::from_le_bytes(take::<8>(body, &mut pos)?),
        },
        2 => WalRecord::Commit {
            tx: u64::from_le_bytes(take::<8>(body, &mut pos)?),
        },
        3 => WalRecord::Abort {
            tx: u64::from_le_bytes(take::<8>(body, &mut pos)?),
        },
        4..=6 => {
            let tx = u64::from_le_bytes(take::<8>(body, &mut pos)?);
            let obj = ObjectId(u32::from_le_bytes(take::<4>(body, &mut pos)?));
            let page = u32::from_le_bytes(take::<4>(body, &mut pos)?);
            let slot = u16::from_le_bytes(take::<2>(body, &mut pos)?);
            match kind {
                4 => WalRecord::Insert {
                    tx,
                    obj,
                    page,
                    slot,
                    data: take_bytes(body, &mut pos)?,
                },
                5 => WalRecord::Delete {
                    tx,
                    obj,
                    page,
                    slot,
                    old: take_bytes(body, &mut pos)?,
                },
                _ => WalRecord::Update {
                    tx,
                    obj,
                    page,
                    slot,
                    old: take_bytes(body, &mut pos)?,
                    new: take_bytes(body, &mut pos)?,
                },
            }
        }
        7 => WalRecord::Checkpoint,
        k => return Err(StoreError::Corrupt(format!("unknown wal kind {k}"))),
    };
    Ok((lsn, rec))
}

/// FNV-1a, adequate for torn-write detection.
fn checksum(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x01000193);
    }
    h
}

/// Commit/fsync counters for group-commit instrumentation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Commit records appended.
    pub commits: u64,
    /// Physical fsyncs issued.
    pub syncs: u64,
}

impl WalStats {
    /// Fsyncs avoided by group commit: with one fsync per commit this is
    /// zero; every commit that shared a sync with another adds one.
    pub fn fsyncs_saved(&self) -> u64 {
        self.commits.saturating_sub(self.syncs)
    }
}

/// The write-ahead log file.
///
/// Appends are buffered ([`BufWriter`]) — one `write` syscall per sync
/// instead of one per record. Anything buffered is flushed before every
/// fsync, so durability semantics are unchanged; a crash simply loses the
/// unflushed (and therefore unsynced) tail, which the framing already
/// tolerates.
pub struct Wal {
    path: PathBuf,
    file: BufWriter<File>,
    /// Bytes in the file plus the writer's buffer (avoids a metadata
    /// syscall per [`Wal::size`] call — commit checks it every time).
    len: u64,
    next_lsn: Lsn,
    /// Bytes appended since the last sync (for the group-commit stat).
    pending: usize,
    /// Commit records appended since the last sync: their durability is
    /// deferred until the group-commit window closes.
    unsynced_commits: u64,
    last_sync: Instant,
    stats: WalStats,
    /// Reusable encode buffer (no per-record allocation).
    scratch: Vec<u8>,
}

/// Write-side buffer size: large enough that a multi-thousand-op batch
/// transaction reaches the OS in a handful of `write` syscalls.
const WAL_BUF: usize = 256 << 10;

impl Wal {
    /// Opens (creating if needed) the log at `path` and replays its framing,
    /// returning the decoded records that survive checksum validation.
    /// `min_lsn` lower-bounds the next LSN to assign (pass the catalog's
    /// `last_lsn` so LSNs keep increasing after a checkpoint truncation).
    pub fn open(path: &Path, min_lsn: Lsn) -> Result<(Wal, Vec<(Lsn, WalRecord)>)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut raw = Vec::new();
        file.read_to_end(&mut raw)?;
        let mut records = Vec::new();
        let mut pos = 0usize;
        let mut valid_end = 0usize;
        let mut max_lsn = 0u64;
        while pos + 8 <= raw.len() {
            let len = u32::from_le_bytes(raw[pos..pos + 4].try_into().unwrap()) as usize;
            let ck = u32::from_le_bytes(raw[pos + 4..pos + 8].try_into().unwrap());
            let body_start = pos + 8;
            let body_end = match body_start.checked_add(len) {
                Some(e) if e <= raw.len() => e,
                _ => break,
            };
            let body = &raw[body_start..body_end];
            if checksum(body) != ck {
                break;
            }
            match decode_body(body) {
                Ok((lsn, rec)) => {
                    max_lsn = max_lsn.max(lsn);
                    records.push((lsn, rec));
                }
                Err(_) => break,
            }
            pos = body_end;
            valid_end = body_end;
        }
        // Drop any torn tail so future appends start at a clean boundary.
        if valid_end < raw.len() {
            file.set_len(valid_end as u64)?;
        }
        file.seek(SeekFrom::End(0))?;
        Ok((
            Wal {
                path: path.to_path_buf(),
                file: BufWriter::with_capacity(WAL_BUF, file),
                len: valid_end as u64,
                next_lsn: max_lsn.max(min_lsn) + 1,
                pending: 0,
                unsynced_commits: 0,
                last_sync: Instant::now(),
                stats: WalStats::default(),
                scratch: Vec::with_capacity(256),
            },
            records,
        ))
    }

    /// Appends a record, returning its LSN. Not yet durable — call
    /// [`Wal::sync`].
    pub fn append(&mut self, rec: &WalRecord) -> Result<Lsn> {
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        let mut body = std::mem::take(&mut self.scratch);
        body.clear();
        encode_body(lsn, rec, &mut body);
        let mut header = [0u8; 8];
        header[..4].copy_from_slice(&(body.len() as u32).to_le_bytes());
        header[4..].copy_from_slice(&checksum(&body).to_le_bytes());
        self.file.write_all(&header)?;
        self.file.write_all(&body)?;
        let frame_len = body.len() + 8;
        self.scratch = body;
        self.len += frame_len as u64;
        self.pending += frame_len;
        if matches!(rec, WalRecord::Commit { .. }) {
            self.stats.commits += 1;
            self.unsynced_commits += 1;
            // Hand the whole transaction to the OS in one write syscall
            // (instead of one per record). Durability still requires
            // [`Wal::sync`]; a crash before it loses the tail atomically.
            self.file.flush()?;
        }
        Ok(lsn)
    }

    /// Durably flushes all appended records. No-op (and not counted in
    /// [`WalStats`]) when nothing was appended since the last sync.
    pub fn sync(&mut self) -> Result<()> {
        if self.pending == 0 && self.unsynced_commits == 0 {
            self.last_sync = Instant::now();
            return Ok(());
        }
        self.file.flush()?;
        self.file.get_ref().sync_data()?;
        self.pending = 0;
        self.unsynced_commits = 0;
        self.last_sync = Instant::now();
        self.stats.syncs += 1;
        Ok(())
    }

    /// Group commit: syncs only if at least `window` has elapsed since the
    /// last sync (a zero window always syncs). Commits appended in between
    /// stay buffered and become durable with the next sync — at the window
    /// boundary, a checkpoint, or shutdown — so at most one window of
    /// committed work is exposed to a crash. Returns whether a physical
    /// sync happened.
    pub fn sync_within(&mut self, window: Duration) -> Result<bool> {
        if window.is_zero() || self.last_sync.elapsed() >= window {
            self.sync()?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Commit records whose durability is still deferred.
    pub fn unsynced_commits(&self) -> u64 {
        self.unsynced_commits
    }

    /// Commit/fsync counters since this handle was opened.
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    /// Truncates the log to empty (after a checkpoint has flushed all data
    /// pages). Returns the highest LSN ever assigned, which the caller must
    /// persist in the catalog.
    pub fn reset(&mut self) -> Result<Lsn> {
        // Discard anything still buffered — the checkpoint made it obsolete.
        self.file = BufWriter::with_capacity(WAL_BUF, self.file.get_ref().try_clone()?);
        self.file.get_ref().set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.get_ref().sync_data()?;
        self.len = 0;
        self.pending = 0;
        self.unsynced_commits = 0;
        self.last_sync = Instant::now();
        self.stats.syncs += 1;
        Ok(self.next_lsn - 1)
    }

    /// Current log size in bytes (including not-yet-flushed appends).
    pub fn size(&self) -> Result<u64> {
        Ok(self.len)
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("netmark-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d.join("wal.log")
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Begin { tx: 1 },
            WalRecord::Insert {
                tx: 1,
                obj: ObjectId(3),
                page: 0,
                slot: 2,
                data: vec![1, 2, 3],
            },
            WalRecord::Update {
                tx: 1,
                obj: ObjectId(3),
                page: 0,
                slot: 2,
                old: vec![1, 2, 3],
                new: vec![9, 9],
            },
            WalRecord::Delete {
                tx: 1,
                obj: ObjectId(3),
                page: 0,
                slot: 2,
                old: vec![9, 9],
            },
            WalRecord::Commit { tx: 1 },
            WalRecord::Checkpoint,
        ]
    }

    #[test]
    fn append_reopen_round_trip() {
        let path = tmp("rt");
        {
            let (mut wal, recs) = Wal::open(&path, 0).unwrap();
            assert!(recs.is_empty());
            for r in sample_records() {
                wal.append(&r).unwrap();
            }
            wal.sync().unwrap();
        }
        let (wal, recs) = Wal::open(&path, 0).unwrap();
        let got: Vec<WalRecord> = recs.iter().map(|(_, r)| r.clone()).collect();
        assert_eq!(got, sample_records());
        // LSNs strictly increase and next_lsn follows the max.
        for w in recs.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
        assert_eq!(wal.next_lsn, recs.last().unwrap().0 + 1);
    }

    #[test]
    fn torn_tail_is_dropped() {
        let path = tmp("torn");
        {
            let (mut wal, _) = Wal::open(&path, 0).unwrap();
            wal.append(&WalRecord::Begin { tx: 7 }).unwrap();
            wal.append(&WalRecord::Commit { tx: 7 }).unwrap();
            wal.sync().unwrap();
        }
        // Simulate a torn write: append garbage.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[200, 0, 0, 0, 1, 2, 3, 4, 5]).unwrap();
        }
        let (mut wal, recs) = Wal::open(&path, 0).unwrap();
        assert_eq!(recs.len(), 2);
        // The torn bytes were truncated; a fresh append reads back fine.
        wal.append(&WalRecord::Checkpoint).unwrap();
        wal.sync().unwrap();
        let (_, recs) = Wal::open(&path, 0).unwrap();
        assert_eq!(recs.len(), 3);
    }

    #[test]
    fn corrupted_record_stops_replay() {
        let path = tmp("corrupt");
        {
            let (mut wal, _) = Wal::open(&path, 0).unwrap();
            for r in sample_records() {
                wal.append(&r).unwrap();
            }
            wal.sync().unwrap();
        }
        // Flip a byte in the middle of the file.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let (_, recs) = Wal::open(&path, 0).unwrap();
        assert!(recs.len() < sample_records().len());
    }

    #[test]
    fn group_commit_stats_and_windowing() {
        let path = tmp("group");
        let (mut wal, _) = Wal::open(&path, 0).unwrap();
        // Zero window: every commit syncs.
        for tx in 0..3u64 {
            wal.append(&WalRecord::Commit { tx }).unwrap();
            assert!(wal.sync_within(Duration::ZERO).unwrap());
        }
        assert_eq!(
            wal.stats(),
            WalStats {
                commits: 3,
                syncs: 3
            }
        );
        assert_eq!(wal.stats().fsyncs_saved(), 0);
        // Wide window: commits right after a sync stay buffered.
        wal.sync().unwrap(); // pending empty: not counted, resets the clock
        for tx in 3..8u64 {
            wal.append(&WalRecord::Commit { tx }).unwrap();
            assert!(!wal.sync_within(Duration::from_secs(3600)).unwrap());
        }
        assert_eq!(wal.unsynced_commits(), 5);
        wal.sync().unwrap();
        assert_eq!(wal.unsynced_commits(), 0);
        assert_eq!(
            wal.stats(),
            WalStats {
                commits: 8,
                syncs: 4
            }
        );
        assert_eq!(wal.stats().fsyncs_saved(), 4);
        // Deferred commits are on disk after the shared sync.
        drop(wal);
        let (_, recs) = Wal::open(&path, 0).unwrap();
        assert_eq!(recs.len(), 8);
    }

    #[test]
    fn sync_without_appends_is_free() {
        let path = tmp("freesync");
        let (mut wal, _) = Wal::open(&path, 0).unwrap();
        wal.sync().unwrap();
        wal.sync().unwrap();
        assert_eq!(wal.stats().syncs, 0);
        wal.append(&WalRecord::Begin { tx: 1 }).unwrap();
        wal.sync().unwrap();
        assert_eq!(wal.stats().syncs, 1);
    }

    #[test]
    fn reset_continues_lsn_sequence() {
        let path = tmp("reset");
        let (mut wal, _) = Wal::open(&path, 0).unwrap();
        let l1 = wal.append(&WalRecord::Begin { tx: 1 }).unwrap();
        let last = wal.reset().unwrap();
        assert_eq!(last, l1);
        let l2 = wal.append(&WalRecord::Begin { tx: 2 }).unwrap();
        assert!(l2 > l1);
        // Reopening with min_lsn from the catalog keeps monotonicity even if
        // the log is empty.
        drop(wal);
        let (wal2, _) = Wal::open(&path, last).unwrap();
        assert!(wal2.next_lsn > last);
    }
}
