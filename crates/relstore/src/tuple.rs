//! Self-describing tuple encoding.
//!
//! NETMARK's store is "schema-less": every document type lands in the same
//! two tables, and the engine never validates shape beyond what the client
//! asks for. Tuples are therefore encoded self-describing — each value
//! carries its own type tag — and [`Schema`] exists only as catalog metadata
//! (column names for humans and for index key selection).

use crate::error::{Result, StoreError};
use crate::RowId;
use std::fmt;

/// A single column value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 text.
    Text(String),
    /// Raw bytes.
    Bytes(Vec<u8>),
    /// A physical row id — the paper's PARENTROWID / SIBLINGID columns.
    Rowid(RowId),
}

impl Value {
    /// Text content if this is a `Text` value.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Integer content if this is an `Int` value.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Row id content if this is a `Rowid` value.
    pub fn as_rowid(&self) -> Option<RowId> {
        match self {
            Value::Rowid(r) => Some(*r),
            _ => None,
        }
    }

    /// Float content, coercing ints.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// True for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => write!(f, "{s}"),
            Value::Bytes(b) => write!(f, "<{} bytes>", b.len()),
            Value::Rowid(r) => write!(f, "{r}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}
impl From<RowId> for Value {
    fn from(v: RowId) -> Self {
        Value::Rowid(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// A tuple: an ordered list of values.
pub type Row = Vec<Value>;

/// Writes `v` as an unsigned LEB128 varint.
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads an unsigned LEB128 varint, advancing `pos`.
pub fn read_varint(buf: &[u8], pos: &mut usize) -> Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *buf
            .get(*pos)
            .ok_or_else(|| StoreError::Corrupt("varint truncated".into()))?;
        *pos += 1;
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 64 {
            return Err(StoreError::Corrupt("varint overflow".into()));
        }
    }
}

const TAG_NULL: u8 = 0;
const TAG_BOOL_FALSE: u8 = 1;
const TAG_BOOL_TRUE: u8 = 2;
const TAG_INT: u8 = 3;
const TAG_FLOAT: u8 = 4;
const TAG_TEXT: u8 = 5;
const TAG_BYTES: u8 = 6;
const TAG_ROWID: u8 = 7;

/// Encodes a row into `out`.
pub fn encode_row(row: &[Value], out: &mut Vec<u8>) {
    write_varint(out, row.len() as u64);
    for v in row {
        match v {
            Value::Null => out.push(TAG_NULL),
            Value::Bool(false) => out.push(TAG_BOOL_FALSE),
            Value::Bool(true) => out.push(TAG_BOOL_TRUE),
            Value::Int(i) => {
                out.push(TAG_INT);
                // ZigZag so small negative ints stay small.
                write_varint(out, ((i << 1) ^ (i >> 63)) as u64);
            }
            Value::Float(f) => {
                out.push(TAG_FLOAT);
                out.extend_from_slice(&f.to_bits().to_le_bytes());
            }
            Value::Text(s) => {
                out.push(TAG_TEXT);
                write_varint(out, s.len() as u64);
                out.extend_from_slice(s.as_bytes());
            }
            Value::Bytes(b) => {
                out.push(TAG_BYTES);
                write_varint(out, b.len() as u64);
                out.extend_from_slice(b);
            }
            Value::Rowid(r) => {
                out.push(TAG_ROWID);
                out.extend_from_slice(&r.page.to_le_bytes());
                out.extend_from_slice(&r.slot.to_le_bytes());
            }
        }
    }
}

/// Decodes a row previously produced by [`encode_row`].
pub fn decode_row(buf: &[u8]) -> Result<Row> {
    let mut pos = 0usize;
    let n = read_varint(buf, &mut pos)? as usize;
    if n > buf.len() {
        return Err(StoreError::Corrupt("row arity exceeds buffer".into()));
    }
    let mut row = Vec::with_capacity(n);
    for _ in 0..n {
        let tag = *buf
            .get(pos)
            .ok_or_else(|| StoreError::Corrupt("row truncated".into()))?;
        pos += 1;
        let v = match tag {
            TAG_NULL => Value::Null,
            TAG_BOOL_FALSE => Value::Bool(false),
            TAG_BOOL_TRUE => Value::Bool(true),
            TAG_INT => {
                let z = read_varint(buf, &mut pos)?;
                Value::Int(((z >> 1) as i64) ^ -((z & 1) as i64))
            }
            TAG_FLOAT => {
                let end = pos + 8;
                let bytes: [u8; 8] = buf
                    .get(pos..end)
                    .ok_or_else(|| StoreError::Corrupt("float truncated".into()))?
                    .try_into()
                    .unwrap();
                pos = end;
                Value::Float(f64::from_bits(u64::from_le_bytes(bytes)))
            }
            TAG_TEXT => {
                let len = read_varint(buf, &mut pos)? as usize;
                let end = pos
                    .checked_add(len)
                    .filter(|&e| e <= buf.len())
                    .ok_or_else(|| StoreError::Corrupt("text truncated".into()))?;
                let s = std::str::from_utf8(&buf[pos..end])
                    .map_err(|_| StoreError::Corrupt("text not utf-8".into()))?;
                pos = end;
                Value::Text(s.to_string())
            }
            TAG_BYTES => {
                let len = read_varint(buf, &mut pos)? as usize;
                let end = pos
                    .checked_add(len)
                    .filter(|&e| e <= buf.len())
                    .ok_or_else(|| StoreError::Corrupt("bytes truncated".into()))?;
                let b = buf[pos..end].to_vec();
                pos = end;
                Value::Bytes(b)
            }
            TAG_ROWID => {
                let end = pos + 6;
                if end > buf.len() {
                    return Err(StoreError::Corrupt("rowid truncated".into()));
                }
                let page = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap());
                let slot = u16::from_le_bytes(buf[pos + 4..end].try_into().unwrap());
                pos = end;
                Value::Rowid(RowId { page, slot })
            }
            t => return Err(StoreError::Corrupt(format!("unknown value tag {t}"))),
        };
        row.push(v);
    }
    Ok(row)
}

/// Declared type of a column (metadata only; rows are self-describing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 text.
    Text,
    /// Raw bytes.
    Bytes,
    /// Boolean.
    Bool,
    /// Physical row id.
    Rowid,
}

/// One column of a table schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name.
    pub name: String,
    /// Declared type.
    pub ctype: ColumnType,
}

/// Catalog metadata for a table: names and declared types.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    /// Ordered columns.
    pub columns: Vec<Column>,
}

impl Schema {
    /// Builds a schema from `(name, type)` pairs.
    pub fn new(cols: &[(&str, ColumnType)]) -> Schema {
        Schema {
            columns: cols
                .iter()
                .map(|(n, t)| Column {
                    name: n.to_string(),
                    ctype: *t,
                })
                .collect(),
        }
    }

    /// Position of column `name`, if present.
    pub fn position(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(row: Row) {
        let mut buf = Vec::new();
        encode_row(&row, &mut buf);
        assert_eq!(decode_row(&buf).unwrap(), row);
    }

    #[test]
    fn encode_decode_all_types() {
        round_trip(vec![
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(0),
            Value::Int(-1),
            Value::Int(i64::MAX),
            Value::Int(i64::MIN),
            Value::Float(3.25),
            Value::Text("héllo, wörld".into()),
            Value::Bytes(vec![0, 1, 2, 255]),
            Value::Rowid(RowId { page: 77, slot: 3 }),
        ]);
    }

    #[test]
    fn empty_row() {
        round_trip(vec![]);
    }

    #[test]
    fn corrupt_inputs_error_not_panic() {
        assert!(decode_row(&[]).is_err());
        assert!(decode_row(&[5, TAG_TEXT, 200]).is_err());
        assert!(decode_row(&[1, 99]).is_err());
        assert!(decode_row(&[1, TAG_ROWID, 1, 2]).is_err());
        // Huge declared text length must not allocate/panic.
        assert!(decode_row(&[1, TAG_TEXT, 0xff, 0xff, 0xff, 0xff, 0x0f]).is_err());
    }

    #[test]
    fn varint_round_trip_edges() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn schema_lookup() {
        let s = Schema::new(&[("NODEID", ColumnType::Int), ("NODENAME", ColumnType::Text)]);
        assert_eq!(s.position("NODENAME"), Some(1));
        assert_eq!(s.position("nope"), None);
        assert_eq!(s.arity(), 2);
    }
}
