//! `netmark-relstore`: the relational storage substrate of the NETMARK
//! reproduction (the paper's "underlying Oracle ORDBMS").
//!
//! The paper stores every document, whatever its type, in the *same* two
//! relational tables (`XML` and `DOC`) and chases Oracle physical ROWIDs to
//! traverse node trees. This crate provides exactly those primitives, built
//! from scratch:
//!
//! - slotted 8 KiB [`page`]s with stable slot numbers,
//! - [`heap`] files addressed by physical [`RowId`]s that survive updates,
//! - a CLOCK [`buffer`] pool with a no-steal policy,
//! - a redo-only write-ahead log ([`wal`]) with crash [`db`] recovery,
//! - paged B+ tree secondary indexes ([`btree`]) over order-preserving
//!   [`keyenc`] keys,
//! - self-describing tuples in [`mod@tuple`] — the store itself is schema-less,
//!   as the paper requires; schemas exist only as catalog metadata.
//!
//! # Example
//!
//! ```
//! use netmark_relstore::{Database, Schema, ColumnType, Value};
//!
//! let dir = std::env::temp_dir().join(format!("relstore-doc-{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//! let db = Database::open(&dir).unwrap();
//! let t = db
//!     .create_table(
//!         "XML",
//!         Schema::new(&[("NODENAME", ColumnType::Text), ("NODEDATA", ColumnType::Text)]),
//!     )
//!     .unwrap();
//! let rid = t.insert(&vec![Value::from("Context"), Value::from("Introduction")]).unwrap();
//! assert_eq!(t.get(rid).unwrap()[1], Value::from("Introduction"));
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

#![warn(missing_docs)]

pub mod btree;
pub mod buffer;
pub mod catalog;
pub mod db;
pub mod disk;
pub mod error;
pub mod heap;
pub mod keyenc;
pub mod page;
pub mod snapshot;
pub mod tuple;
pub mod wal;

use std::fmt;

/// A physical row identifier: `(heap page number, slot)`.
///
/// The paper: *"we have exploited the feature of physical row-ids in Oracle
/// for very fast traversal between nodes that are related."* A `RowId` stays
/// valid for the lifetime of its tuple — across in-page compaction (slot
/// numbers are stable) and across grows (forwarding cells).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowId {
    /// Heap page number.
    pub page: u32,
    /// Slot within the page.
    pub slot: u16,
}

impl RowId {
    /// A placeholder RowId (used when computing candidate index keys before
    /// a row has a location).
    pub const ZERO: RowId = RowId { page: 0, slot: 0 };
}

impl fmt::Display for RowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}.S{}", self.page, self.slot)
    }
}

pub use db::{Database, DbOptions, ReadView, Table, Txn, ViewTable};
pub use error::{Result, StoreError};
pub use snapshot::MvccStats;
pub use tuple::{Column, ColumnType, Row, Schema, Value};
pub use wal::{ObjectId, WalStats};
