//! The catalog: durable metadata about tables and indexes.
//!
//! Stored as a line-oriented text file (`catalog.nmk`), rewritten atomically
//! (temp file + rename) on every DDL operation and at checkpoints. Keeping
//! it human-readable costs nothing at this scale and makes databases easy to
//! inspect — in the spirit of the paper's "the database is nothing more than
//! intelligent storage".

use crate::error::{Result, StoreError};
use crate::tuple::{Column, ColumnType, Schema};
use crate::wal::{Lsn, ObjectId};
use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Metadata for one table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableMeta {
    /// Stable id referenced by WAL records.
    pub id: ObjectId,
    /// Table name.
    pub name: String,
    /// Column metadata (informational; rows are self-describing).
    pub schema: Schema,
}

/// Metadata for one secondary index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexMeta {
    /// Stable id (shares the ObjectId space with tables).
    pub id: ObjectId,
    /// Index name (unique per database).
    pub name: String,
    /// Owning table.
    pub table: String,
    /// Indexed column names, in key order.
    pub key_columns: Vec<String>,
    /// Whether keys are unique (otherwise entries are disambiguated by a
    /// RowId suffix).
    pub unique: bool,
}

/// In-memory catalog image.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    /// Tables by name.
    pub tables: BTreeMap<String, TableMeta>,
    /// Indexes by name.
    pub indexes: BTreeMap<String, IndexMeta>,
    /// Highest WAL LSN made obsolete by the last checkpoint; WAL LSNs
    /// continue above this after a log reset.
    pub last_lsn: Lsn,
    /// Next ObjectId to assign.
    pub next_object: u32,
}

fn ctype_str(t: ColumnType) -> &'static str {
    match t {
        ColumnType::Int => "int",
        ColumnType::Float => "float",
        ColumnType::Text => "text",
        ColumnType::Bytes => "bytes",
        ColumnType::Bool => "bool",
        ColumnType::Rowid => "rowid",
    }
}

fn parse_ctype(s: &str) -> Result<ColumnType> {
    Ok(match s {
        "int" => ColumnType::Int,
        "float" => ColumnType::Float,
        "text" => ColumnType::Text,
        "bytes" => ColumnType::Bytes,
        "bool" => ColumnType::Bool,
        "rowid" => ColumnType::Rowid,
        _ => return Err(StoreError::Corrupt(format!("bad column type {s}"))),
    })
}

/// Percent-encodes spaces/newlines/percents so names survive the
/// line-oriented format.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            ' ' => out.push_str("%20"),
            '\n' => out.push_str("%0A"),
            '%' => out.push_str("%25"),
            ':' => out.push_str("%3A"),
            c => out.push(c),
        }
    }
    out
}

fn unesc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '%' {
            let h1 = chars.next();
            let h2 = chars.next();
            if let (Some(h1), Some(h2)) = (h1, h2) {
                if let Ok(b) = u8::from_str_radix(&format!("{h1}{h2}"), 16) {
                    out.push(b as char);
                    continue;
                }
            }
            out.push('%');
        } else {
            out.push(c);
        }
    }
    out
}

impl Catalog {
    /// Loads the catalog from `dir/catalog.nmk`; missing file = empty
    /// catalog (fresh database).
    pub fn load(dir: &Path) -> Result<Catalog> {
        let path = dir.join("catalog.nmk");
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Catalog::default()),
            Err(e) => return Err(e.into()),
        };
        let mut cat = Catalog::default();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let kind = parts.next().unwrap_or("");
            let bad =
                |what: &str| StoreError::Corrupt(format!("catalog line {}: {what}", lineno + 1));
            match kind {
                "lastlsn" => {
                    cat.last_lsn = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| bad("missing lsn"))?;
                }
                "nextobject" => {
                    cat.next_object = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| bad("missing next object id"))?;
                }
                "table" => {
                    let id = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .map(ObjectId)
                        .ok_or_else(|| bad("missing table id"))?;
                    let name = unesc(parts.next().ok_or_else(|| bad("missing table name"))?);
                    let mut columns = Vec::new();
                    for col in parts {
                        let (n, t) = col.rsplit_once(':').ok_or_else(|| bad("bad column spec"))?;
                        columns.push(Column {
                            name: unesc(n),
                            ctype: parse_ctype(t)?,
                        });
                    }
                    cat.tables.insert(
                        name.clone(),
                        TableMeta {
                            id,
                            name,
                            schema: Schema { columns },
                        },
                    );
                }
                "index" => {
                    let id = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .map(ObjectId)
                        .ok_or_else(|| bad("missing index id"))?;
                    let name = unesc(parts.next().ok_or_else(|| bad("missing index name"))?);
                    let table = unesc(parts.next().ok_or_else(|| bad("missing index table"))?);
                    let unique = match parts.next() {
                        Some("unique") => true,
                        Some("multi") => false,
                        _ => return Err(bad("missing uniqueness")),
                    };
                    let key_columns: Vec<String> = parts.map(unesc).collect();
                    if key_columns.is_empty() {
                        return Err(bad("index with no key columns"));
                    }
                    cat.indexes.insert(
                        name.clone(),
                        IndexMeta {
                            id,
                            name,
                            table,
                            key_columns,
                            unique,
                        },
                    );
                }
                _ => return Err(bad("unknown record kind")),
            }
        }
        Ok(cat)
    }

    /// Atomically persists the catalog to `dir/catalog.nmk`.
    pub fn save(&self, dir: &Path) -> Result<()> {
        let tmp: PathBuf = dir.join("catalog.nmk.tmp");
        let path = dir.join("catalog.nmk");
        {
            let mut f = std::fs::File::create(&tmp)?;
            writeln!(f, "# netmark relstore catalog v1")?;
            writeln!(f, "lastlsn {}", self.last_lsn)?;
            writeln!(f, "nextobject {}", self.next_object)?;
            for t in self.tables.values() {
                write!(f, "table {} {}", t.id.0, esc(&t.name))?;
                for c in &t.schema.columns {
                    write!(f, " {}:{}", esc(&c.name), ctype_str(c.ctype))?;
                }
                writeln!(f)?;
            }
            for i in self.indexes.values() {
                write!(
                    f,
                    "index {} {} {} {}",
                    i.id.0,
                    esc(&i.name),
                    esc(&i.table),
                    if i.unique { "unique" } else { "multi" }
                )?;
                for k in &i.key_columns {
                    write!(f, " {}", esc(k))?;
                }
                writeln!(f)?;
            }
            f.sync_data()?;
        }
        std::fs::rename(&tmp, &path)?;
        Ok(())
    }

    /// Allocates the next stable object id.
    pub fn allocate_object(&mut self) -> ObjectId {
        let id = ObjectId(self.next_object);
        self.next_object += 1;
        id
    }

    /// Table metadata by WAL object id.
    pub fn table_by_id(&self, id: ObjectId) -> Option<&TableMeta> {
        self.tables.values().find(|t| t.id == id)
    }

    /// Indexes declared over `table`.
    pub fn indexes_of(&self, table: &str) -> Vec<&IndexMeta> {
        self.indexes.values().filter(|i| i.table == table).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Catalog {
        let mut cat = Catalog {
            last_lsn: 99,
            next_object: 5,
            ..Catalog::default()
        };
        cat.tables.insert(
            "XML".into(),
            TableMeta {
                id: ObjectId(0),
                name: "XML".into(),
                schema: Schema::new(&[
                    ("NODEID", ColumnType::Int),
                    ("NODENAME", ColumnType::Text),
                    ("PARENTROWID", ColumnType::Rowid),
                ]),
            },
        );
        cat.tables.insert(
            "DOC table".into(),
            TableMeta {
                id: ObjectId(1),
                name: "DOC table".into(),
                schema: Schema::new(&[("FILE_NAME", ColumnType::Text)]),
            },
        );
        cat.indexes.insert(
            "xml_by_name".into(),
            IndexMeta {
                id: ObjectId(2),
                name: "xml_by_name".into(),
                table: "XML".into(),
                key_columns: vec!["NODENAME".into()],
                unique: false,
            },
        );
        cat
    }

    #[test]
    fn save_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("netmark-cat-rt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let cat = sample();
        cat.save(&dir).unwrap();
        let loaded = Catalog::load(&dir).unwrap();
        assert_eq!(loaded.last_lsn, 99);
        assert_eq!(loaded.next_object, 5);
        assert_eq!(loaded.tables, cat.tables);
        assert_eq!(loaded.indexes, cat.indexes);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_is_empty_catalog() {
        let dir = std::env::temp_dir().join(format!("netmark-cat-miss-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let cat = Catalog::load(&dir).unwrap();
        assert!(cat.tables.is_empty());
        assert_eq!(cat.next_object, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn names_with_spaces_and_colons_survive() {
        let dir = std::env::temp_dir().join(format!("netmark-cat-esc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut cat = Catalog::default();
        cat.tables.insert(
            "weird: name%".into(),
            TableMeta {
                id: ObjectId(0),
                name: "weird: name%".into(),
                schema: Schema::new(&[("a b", ColumnType::Text)]),
            },
        );
        cat.save(&dir).unwrap();
        let loaded = Catalog::load(&dir).unwrap();
        assert!(loaded.tables.contains_key("weird: name%"));
        assert_eq!(loaded.tables["weird: name%"].schema.columns[0].name, "a b");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn helpers() {
        let cat = sample();
        assert_eq!(cat.table_by_id(ObjectId(1)).unwrap().name, "DOC table");
        assert_eq!(cat.indexes_of("XML").len(), 1);
        assert!(cat.indexes_of("DOC table").is_empty());
        let mut cat = cat;
        assert_eq!(cat.allocate_object(), ObjectId(5));
        assert_eq!(cat.allocate_object(), ObjectId(6));
    }
}
