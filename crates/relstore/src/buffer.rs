//! Buffer pool with CLOCK eviction.
//!
//! Frames cache `(FileId, page_no)` pages. Eviction only ever selects
//! **clean, unpinned** frames: dirty pages are written back exclusively by
//! explicit flush calls (transaction commit and checkpoints). Together with
//! redo-only WAL this gives the engine a *no-steal* policy — an uncommitted
//! transaction's changes never reach disk — so crash recovery never needs
//! undo. If every frame is dirty or pinned, the pool grows past its nominal
//! capacity rather than blocking (transactions are expected to fit in
//! memory; the growth is bounded by the active transaction's write set).

use crate::disk::{FileId, FileManager};
use crate::error::Result;
use crate::page::PAGE_SIZE;
use parking_lot::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;

/// Cache key of one page.
pub type PageKey = (FileId, u32);

/// Pages dirtied since the last [`BufferPool::take_dirty_log`] drain. The
/// single writer drains this at every commit to know which page images the
/// MVCC publication overlay must carry.
type DirtyLog = Arc<Mutex<HashSet<PageKey>>>;

struct Frame {
    key: PageKey,
    data: RwLock<Box<[u8]>>,
    dirty: AtomicBool,
    pins: AtomicU32,
    referenced: AtomicBool,
    /// True while `key` sits in the shared dirty log. Reset by the drain, so
    /// a page re-modified after a publication re-enters the next interval's
    /// log even though `dirty` never transitioned (it may stay set across
    /// several commits until a checkpoint flushes it).
    in_log: AtomicBool,
    log: DirtyLog,
}

impl Frame {
    fn log_write(&self) {
        if !self.in_log.swap(true, Ordering::SeqCst) {
            self.log.lock().insert(self.key);
        }
    }
}

/// Counters exposed for the buffer-pool ablation benchmark.
#[derive(Debug, Default, Clone)]
pub struct PoolStats {
    /// Page requests served from the cache.
    pub hits: u64,
    /// Page requests that had to read from disk.
    pub misses: u64,
    /// Clean frames recycled by the CLOCK hand.
    pub evictions: u64,
}

/// A shared, thread-safe pool of page frames.
pub struct BufferPool {
    fm: Arc<FileManager>,
    capacity: usize,
    inner: Mutex<PoolInner>,
    dirty_log: DirtyLog,
}

struct PoolInner {
    frames: HashMap<PageKey, Arc<Frame>>,
    /// CLOCK order; entries may be stale (frame since removed).
    clock: Vec<PageKey>,
    hand: usize,
    stats: PoolStats,
    /// Set when a full sweep found every frame dirty or pinned. While set,
    /// misses skip the (futile) sweep and grow the pool directly; any flush
    /// clears it. Keeps no-steal saturation amortized O(1) per miss instead
    /// of O(pool) between checkpoints.
    saturated: bool,
}

/// A pinned page. The page stays in the pool while any guard exists.
/// Obtain read or write access via [`PageGuard::read`] / [`PageGuard::write`].
pub struct PageGuard {
    frame: Arc<Frame>,
}

impl Clone for PageGuard {
    fn clone(&self) -> Self {
        self.frame.pins.fetch_add(1, Ordering::Relaxed);
        PageGuard {
            frame: Arc::clone(&self.frame),
        }
    }
}

impl Drop for PageGuard {
    fn drop(&mut self) {
        self.frame.pins.fetch_sub(1, Ordering::Relaxed);
    }
}

impl PageGuard {
    /// Shared access to the page bytes.
    pub fn read(&self) -> RwLockReadGuard<'_, Box<[u8]>> {
        self.frame.data.read()
    }

    /// Exclusive access to the page bytes; marks the page dirty and records
    /// it in the pool's dirty log for the next MVCC publication.
    pub fn write(&self) -> RwLockWriteGuard<'_, Box<[u8]>> {
        self.frame.dirty.store(true, Ordering::Relaxed);
        self.frame.log_write();
        self.frame.data.write()
    }

    /// The `(file, page)` this guard pins.
    pub fn key(&self) -> PageKey {
        self.frame.key
    }
}

impl BufferPool {
    /// Creates a pool of `capacity` frames over `fm`.
    pub fn new(fm: Arc<FileManager>, capacity: usize) -> BufferPool {
        BufferPool {
            fm,
            capacity: capacity.max(4),
            inner: Mutex::new(PoolInner {
                frames: HashMap::new(),
                clock: Vec::new(),
                hand: 0,
                stats: PoolStats::default(),
                saturated: false,
            }),
            dirty_log: Arc::new(Mutex::new(HashSet::new())),
        }
    }

    /// The underlying file manager.
    pub fn file_manager(&self) -> &Arc<FileManager> {
        &self.fm
    }

    /// Snapshot of hit/miss/eviction counters.
    pub fn stats(&self) -> PoolStats {
        self.inner.lock().stats.clone()
    }

    /// Pins page `(file, page_no)`, reading it from disk on a miss.
    pub fn fetch(&self, file: FileId, page_no: u32) -> Result<PageGuard> {
        let mut inner = self.inner.lock();
        if let Some(frame) = inner.frames.get(&(file, page_no)).cloned() {
            inner.stats.hits += 1;
            frame.referenced.store(true, Ordering::Relaxed);
            frame.pins.fetch_add(1, Ordering::Relaxed);
            return Ok(PageGuard { frame });
        }
        inner.stats.misses += 1;
        self.make_room(&mut inner);
        // Read outside would be nicer, but a single mutex keeps the pool
        // simple and the engine is single-writer by design.
        let mut buf = vec![0u8; PAGE_SIZE].into_boxed_slice();
        self.fm.read_page(file, page_no, &mut buf)?;
        Ok(self.install(&mut inner, (file, page_no), buf))
    }

    /// Allocates a brand-new page in `file` and pins it (zero-filled; the
    /// caller formats it). Returns the page number and guard.
    pub fn allocate(&self, file: FileId) -> Result<(u32, PageGuard)> {
        let page_no = self.fm.allocate_page(file)?;
        let mut inner = self.inner.lock();
        self.make_room(&mut inner);
        let buf = vec![0u8; PAGE_SIZE].into_boxed_slice();
        Ok((page_no, self.install(&mut inner, (file, page_no), buf)))
    }

    fn install(&self, inner: &mut PoolInner, key: PageKey, buf: Box<[u8]>) -> PageGuard {
        let frame = Arc::new(Frame {
            key,
            data: RwLock::new(buf),
            dirty: AtomicBool::new(false),
            pins: AtomicU32::new(1),
            referenced: AtomicBool::new(true),
            in_log: AtomicBool::new(false),
            log: Arc::clone(&self.dirty_log),
        });
        inner.frames.insert(key, Arc::clone(&frame));
        inner.clock.push(key);
        PageGuard { frame }
    }

    /// CLOCK sweep: recycle one clean, unpinned frame if the pool is full.
    fn make_room(&self, inner: &mut PoolInner) {
        if inner.frames.len() < self.capacity || inner.saturated {
            return;
        }
        let n = inner.clock.len();
        // Two full sweeps: the first clears reference bits, the second picks
        // the first clean victim.
        for _ in 0..2 * n {
            if inner.clock.is_empty() {
                return;
            }
            let hand = inner.hand % inner.clock.len();
            inner.hand = (hand + 1) % inner.clock.len().max(1);
            let key = inner.clock[hand];
            let Some(frame) = inner.frames.get(&key) else {
                inner.clock.swap_remove(hand);
                inner.hand = if inner.clock.is_empty() {
                    0
                } else {
                    hand % inner.clock.len()
                };
                continue;
            };
            if frame.pins.load(Ordering::Relaxed) > 0 || frame.dirty.load(Ordering::Relaxed) {
                continue;
            }
            if frame.referenced.swap(false, Ordering::Relaxed) {
                continue;
            }
            inner.frames.remove(&key);
            inner.clock.swap_remove(hand);
            inner.hand = if inner.clock.is_empty() {
                0
            } else {
                hand % inner.clock.len()
            };
            inner.stats.evictions += 1;
            return;
        }
        // No clean victim: grow (no-steal — dirty pages stay in memory).
        inner.saturated = true;
    }

    /// Writes one dirty page back to disk and marks it clean.
    pub fn flush_page(&self, file: FileId, page_no: u32) -> Result<()> {
        let frame = {
            let inner = self.inner.lock();
            inner.frames.get(&(file, page_no)).cloned()
        };
        if let Some(frame) = frame {
            if frame.dirty.load(Ordering::Relaxed) {
                let data = frame.data.read();
                self.fm.write_page(file, page_no, &data)?;
                frame.dirty.store(false, Ordering::Relaxed);
                self.inner.lock().saturated = false;
            }
        }
        Ok(())
    }

    /// Flushes every dirty page (checkpoint). Returns how many were written.
    pub fn flush_all(&self) -> Result<usize> {
        let frames: Vec<Arc<Frame>> = {
            let inner = self.inner.lock();
            inner.frames.values().cloned().collect()
        };
        let mut written = 0;
        let mut files: Vec<FileId> = Vec::new();
        for frame in frames {
            if frame.dirty.load(Ordering::Relaxed) {
                let data = frame.data.read();
                self.fm.write_page(frame.key.0, frame.key.1, &data)?;
                frame.dirty.store(false, Ordering::Relaxed);
                written += 1;
                if !files.contains(&frame.key.0) {
                    files.push(frame.key.0);
                }
            }
        }
        for f in files {
            self.fm.sync(f)?;
        }
        if written > 0 {
            self.inner.lock().saturated = false;
        }
        Ok(written)
    }

    /// Drops every cached frame for `file` without writing (used when a
    /// file is truncated for rebuild).
    pub fn discard_file(&self, file: FileId) {
        let mut inner = self.inner.lock();
        inner.frames.retain(|k, _| k.0 != file);
        inner.clock.retain(|k| k.0 != file);
        inner.hand = 0;
    }

    /// Reverts an in-memory page to the given bytes (transaction abort under
    /// no-steal: disk was never touched, only the cached copy).
    pub fn overwrite_in_memory(&self, file: FileId, page_no: u32, bytes: &[u8]) {
        let frame = {
            let inner = self.inner.lock();
            inner.frames.get(&(file, page_no)).cloned()
        };
        if let Some(frame) = frame {
            frame.data.write().copy_from_slice(bytes);
            frame.dirty.store(true, Ordering::Relaxed);
            frame.log_write();
        }
    }

    /// Drains the dirty log: every page written since the previous drain.
    /// Called by the single writer at commit (to build the publication
    /// overlay) and at checkpoints (to discard it). Resets each resident
    /// frame's `in_log` flag so later writes re-enter the next interval.
    pub fn take_dirty_log(&self) -> Vec<PageKey> {
        let mut log = self.dirty_log.lock();
        let keys: Vec<PageKey> = log.drain().collect();
        drop(log);
        let inner = self.inner.lock();
        for key in &keys {
            if let Some(frame) = inner.frames.get(key) {
                frame.in_log.store(false, Ordering::SeqCst);
            }
        }
        keys
    }

    /// Copies the current bytes of each resident page in `keys`, for the
    /// MVCC commit overlay. Pages no longer resident are skipped: a frame
    /// only leaves the pool clean, and under no-steal a clean frame's bytes
    /// already equal the on-disk (committed) image, so readers fall back to
    /// disk for them. Called by the single writer at commit, when no page in
    /// its write set can be concurrently modified.
    pub fn snapshot_pages(&self, keys: &[PageKey]) -> Vec<(PageKey, Arc<[u8]>)> {
        let frames: Vec<Arc<Frame>> = {
            let inner = self.inner.lock();
            keys.iter()
                .filter_map(|k| inner.frames.get(k).cloned())
                .collect()
        };
        frames
            .into_iter()
            .map(|frame| {
                let data = frame.data.read();
                (frame.key, Arc::<[u8]>::from(&data[..]))
            })
            .collect()
    }

    /// Copies a resident page's bytes only if the frame is clean — i.e. its
    /// bytes are identical to the on-disk committed image. Returns `None` on
    /// a non-resident or dirty frame (callers then read from disk). Never
    /// installs a frame, so concurrent readers cannot thrash the writer's
    /// working set. Safe against a concurrent writer: `dirty` is set before
    /// the page write-lock is taken, and we test it while holding the read
    /// lock, so a false `dirty` means the bytes cannot be mid-modification.
    pub fn read_committed(&self, file: FileId, page_no: u32) -> Option<Box<[u8]>> {
        let frame = {
            let inner = self.inner.lock();
            inner.frames.get(&(file, page_no)).cloned()
        }?;
        let data = frame.data.read();
        if frame.dirty.load(Ordering::SeqCst) {
            return None;
        }
        let mut buf = vec![0u8; PAGE_SIZE].into_boxed_slice();
        buf.copy_from_slice(&data);
        Some(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn setup(tag: &str, cap: usize) -> (BufferPool, FileId, PathBuf) {
        let dir = std::env::temp_dir().join(format!("netmark-buf-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let fm = Arc::new(FileManager::open(&dir).unwrap());
        let pool = BufferPool::new(Arc::clone(&fm), cap);
        let f = fm.open_file("t.tbl").unwrap();
        (pool, f, dir)
    }

    #[test]
    fn fetch_caches_pages() {
        let (pool, f, dir) = setup("cache", 8);
        let (p, g) = pool.allocate(f).unwrap();
        g.write()[0] = 42;
        drop(g);
        let g2 = pool.fetch(f, p).unwrap();
        assert_eq!(g2.read()[0], 42, "hit returns the cached copy");
        let st = pool.stats();
        assert_eq!(st.misses, 0, "allocate + hit, no disk read");
        assert!(st.hits >= 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn eviction_only_recycles_clean_frames() {
        let (pool, f, dir) = setup("evict", 4);
        // Dirty page that must survive any eviction pressure.
        let (p0, g0) = pool.allocate(f).unwrap();
        g0.write()[0] = 7;
        drop(g0);
        // Clean pages to create pressure.
        for _ in 0..16 {
            let (p, g) = pool.allocate(f).unwrap();
            g.write()[1] = 1;
            drop(g);
            pool.flush_page(f, p).unwrap();
        }
        // The dirty page is still resident with its uncommitted bytes.
        let g = pool.fetch(f, p0).unwrap();
        assert_eq!(g.read()[0], 7);
        assert!(pool.stats().evictions > 0, "clean frames were recycled");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flush_all_persists_and_cleans() {
        let (pool, f, dir) = setup("flush", 8);
        let (p, g) = pool.allocate(f).unwrap();
        g.write()[5] = 55;
        drop(g);
        assert_eq!(pool.flush_all().unwrap(), 1);
        assert_eq!(pool.flush_all().unwrap(), 0, "second flush writes nothing");
        let mut buf = vec![0u8; PAGE_SIZE];
        pool.file_manager().read_page(f, p, &mut buf).unwrap();
        assert_eq!(buf[5], 55);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn overwrite_in_memory_reverts_page() {
        let (pool, f, dir) = setup("revert", 8);
        let (p, g) = pool.allocate(f).unwrap();
        let before = g.read().to_vec();
        g.write()[9] = 99;
        drop(g);
        pool.overwrite_in_memory(f, p, &before);
        let g = pool.fetch(f, p).unwrap();
        assert_eq!(g.read()[9], 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
