//! Slotted-page layout.
//!
//! Every page in the engine — heap pages and B-tree pages alike — uses the
//! same slotted layout: a fixed header, a slot directory growing forward from
//! the header, and cell data growing backward from the end of the page.
//! Deleting a cell tombstones its slot; the space is reclaimed lazily by
//! [`SlottedPage::compact`], which preserves slot numbers (and therefore
//! ROWIDs — the property the paper's traversal scheme depends on).
//!
//! Layout (`PAGE_SIZE` = 8192 bytes):
//!
//! ```text
//! 0..2    u16 slot_count
//! 2..4    u16 free_end       (cells occupy free_end..PAGE_SIZE)
//! 4..6    u16 page_type      (heap / btree-leaf / btree-internal / meta)
//! 6..8    u16 dead_bytes     (cell bytes reclaimable by compaction)
//! 8..16   u64 lsn            (last WAL record applied; redo idempotence)
//! 16..20  u32 aux            (B-tree: next-leaf page / leftmost child)
//! 20..    slot directory: per slot { u16 offset, u16 len }
//! ```
//!
//! A slot with `offset == DEAD_SLOT` is a tombstone; its number may be reused
//! by a later insert.

/// Size in bytes of every page in the engine.
pub const PAGE_SIZE: usize = 8192;

const HEADER_SIZE: usize = 20;
const SLOT_SIZE: usize = 4;
const DEAD_SLOT: u16 = u16::MAX;

/// Largest cell that fits on an otherwise empty page.
pub const MAX_CELL: usize = PAGE_SIZE - HEADER_SIZE - SLOT_SIZE;

/// Discriminates how a page's cells are interpreted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageType {
    /// Unformatted / never used.
    Free = 0,
    /// Heap-file page holding tuples.
    Heap = 1,
    /// B-tree leaf page holding (key, value) cells.
    BtreeLeaf = 2,
    /// B-tree internal page holding (separator, child) cells.
    BtreeInternal = 3,
    /// Per-file metadata page (page 0 of an index file).
    Meta = 4,
}

impl PageType {
    fn from_u16(v: u16) -> PageType {
        match v {
            1 => PageType::Heap,
            2 => PageType::BtreeLeaf,
            3 => PageType::BtreeInternal,
            4 => PageType::Meta,
            _ => PageType::Free,
        }
    }
}

/// A view over one page's bytes providing the slotted-cell operations.
///
/// `SlottedPage` borrows the raw page buffer mutably; it is a zero-copy
/// accessor, not an owner. All offsets are validated in debug builds.
pub struct SlottedPage<'a> {
    buf: &'a mut [u8],
}

impl<'a> SlottedPage<'a> {
    /// Wraps an existing formatted page.
    pub fn new(buf: &'a mut [u8]) -> SlottedPage<'a> {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        SlottedPage { buf }
    }

    /// Formats `buf` as an empty page of the given type.
    pub fn init(buf: &'a mut [u8], ptype: PageType) -> SlottedPage<'a> {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        buf.fill(0);
        let mut p = SlottedPage { buf };
        p.set_slot_count(0);
        p.set_free_end(PAGE_SIZE as u16);
        p.set_page_type(ptype);
        p.set_aux(0);
        p
    }

    fn read_u16(&self, at: usize) -> u16 {
        u16::from_le_bytes([self.buf[at], self.buf[at + 1]])
    }

    fn write_u16(&mut self, at: usize, v: u16) {
        self.buf[at..at + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// Number of slots in the directory (live + dead).
    pub fn slot_count(&self) -> u16 {
        self.read_u16(0)
    }

    fn set_slot_count(&mut self, v: u16) {
        self.write_u16(0, v);
    }

    fn free_end(&self) -> u16 {
        self.read_u16(2)
    }

    fn set_free_end(&mut self, v: u16) {
        self.write_u16(2, v);
    }

    /// Running count of cell bytes reclaimable by [`SlottedPage::compact`]
    /// (tombstoned cells plus tails leaked by shrinking updates). Kept in
    /// the header so free-space checks never scan the slot directory.
    fn dead_bytes(&self) -> u16 {
        self.read_u16(6)
    }

    fn add_dead_bytes(&mut self, delta: usize) {
        let v = self.dead_bytes() as usize + delta;
        self.write_u16(6, v as u16);
    }

    fn sub_dead_bytes(&mut self, delta: usize) {
        let v = (self.dead_bytes() as usize).saturating_sub(delta);
        self.write_u16(6, v as u16);
    }

    /// This page's [`PageType`].
    pub fn page_type(&self) -> PageType {
        PageType::from_u16(self.read_u16(4))
    }

    /// Changes the page type without clearing contents.
    pub fn set_page_type(&mut self, t: PageType) {
        self.write_u16(4, t as u16);
    }

    /// LSN of the last WAL record applied to this page.
    pub fn lsn(&self) -> u64 {
        u64::from_le_bytes(self.buf[8..16].try_into().unwrap())
    }

    /// Stamps the page with a WAL LSN (for idempotent redo).
    pub fn set_lsn(&mut self, lsn: u64) {
        self.buf[8..16].copy_from_slice(&lsn.to_le_bytes());
    }

    /// Auxiliary pointer: next-leaf for B-tree leaves, leftmost child for
    /// internal nodes; unused by heap pages.
    pub fn aux(&self) -> u32 {
        u32::from_le_bytes(self.buf[16..20].try_into().unwrap())
    }

    /// Sets the auxiliary pointer.
    pub fn set_aux(&mut self, v: u32) {
        self.buf[16..20].copy_from_slice(&v.to_le_bytes());
    }

    fn slot_at(&self, slot: u16) -> (u16, u16) {
        let base = HEADER_SIZE + slot as usize * SLOT_SIZE;
        (self.read_u16(base), self.read_u16(base + 2))
    }

    fn set_slot(&mut self, slot: u16, offset: u16, len: u16) {
        let base = HEADER_SIZE + slot as usize * SLOT_SIZE;
        self.write_u16(base, offset);
        self.write_u16(base + 2, len);
    }

    fn dir_end(&self) -> usize {
        HEADER_SIZE + self.slot_count() as usize * SLOT_SIZE
    }

    /// Contiguous free bytes between the slot directory and the cell region.
    /// Zero for unformatted pages.
    pub fn contiguous_free(&self) -> usize {
        (self.free_end() as usize).saturating_sub(self.dir_end())
    }

    /// Total reclaimable free bytes (contiguous + dead-cell space).
    pub fn total_free(&self) -> usize {
        self.contiguous_free() + self.dead_bytes() as usize
    }

    /// True if the slot exists and holds a live cell.
    pub fn is_live(&self, slot: u16) -> bool {
        slot < self.slot_count() && self.slot_at(slot).0 != DEAD_SLOT
    }

    /// Returns the cell bytes of a live slot, or `None`.
    pub fn get(&self, slot: u16) -> Option<&[u8]> {
        if slot >= self.slot_count() {
            return None;
        }
        let (off, len) = self.slot_at(slot);
        if off == DEAD_SLOT {
            return None;
        }
        Some(&self.buf[off as usize..off as usize + len as usize])
    }

    fn find_dead_slot(&self) -> Option<u16> {
        (0..self.slot_count()).find(|&s| self.slot_at(s).0 == DEAD_SLOT)
    }

    /// Bytes an insert of `len` needs in the worst case (cell + a new
    /// directory entry; a dead-slot reuse may need less).
    pub fn space_needed(&self, len: usize) -> usize {
        len + SLOT_SIZE
    }

    /// Whether a cell of `len` bytes can be inserted (possibly after
    /// compaction). Conservative: ignores dead-slot reuse, so a `true`
    /// here always holds and stays O(1).
    pub fn can_insert(&self, len: usize) -> bool {
        self.space_needed(len) <= self.total_free()
    }

    /// Inserts a cell, reusing a dead slot number if one exists. Returns the
    /// slot number, or `None` if the page cannot hold the cell.
    pub fn insert(&mut self, data: &[u8]) -> Option<u16> {
        let dead = self.find_dead_slot();
        let needed = data.len() + if dead.is_some() { 0 } else { SLOT_SIZE };
        if needed > self.total_free() {
            return None;
        }
        if needed > self.contiguous_free() {
            self.compact();
        }
        let slot = match dead {
            Some(s) => s,
            None => {
                let s = self.slot_count();
                self.set_slot_count(s + 1);
                s
            }
        };
        let new_end = self.free_end() as usize - data.len();
        self.buf[new_end..new_end + data.len()].copy_from_slice(data);
        self.set_free_end(new_end as u16);
        self.set_slot(slot, new_end as u16, data.len() as u16);
        Some(slot)
    }

    /// Inserts a cell at a specific slot number, extending the directory as
    /// needed (used by WAL redo to reproduce exact ROWIDs). Returns `false`
    /// if space is insufficient.
    pub fn insert_at(&mut self, slot: u16, data: &[u8]) -> bool {
        if self.is_live(slot) {
            return false;
        }
        let extra_slots = (slot as usize + 1).saturating_sub(self.slot_count() as usize);
        let needed = data.len() + extra_slots * SLOT_SIZE;
        if needed > self.total_free() {
            return false;
        }
        if needed > self.contiguous_free() {
            self.compact();
        }
        if extra_slots > 0 {
            let old = self.slot_count();
            self.set_slot_count(slot + 1);
            for s in old..slot + 1 {
                self.set_slot(s, DEAD_SLOT, 0);
            }
        }
        let new_end = self.free_end() as usize - data.len();
        self.buf[new_end..new_end + data.len()].copy_from_slice(data);
        self.set_free_end(new_end as u16);
        self.set_slot(slot, new_end as u16, data.len() as u16);
        true
    }

    /// Inserts a cell at slot *position* `pos`, shifting later directory
    /// entries up by one — the B-tree fast path for keeping cells in sorted
    /// slot order without rewriting the page. Requires every slot to be
    /// live (B-tree pages never carry tombstones). Returns `false` if the
    /// page lacks room (caller splits).
    pub fn insert_sorted(&mut self, pos: u16, data: &[u8]) -> bool {
        let count = self.slot_count();
        debug_assert!(pos <= count);
        let needed = data.len() + SLOT_SIZE;
        if needed > self.total_free() {
            return false;
        }
        if needed > self.contiguous_free() {
            self.compact();
        }
        let start = HEADER_SIZE + pos as usize * SLOT_SIZE;
        let end = HEADER_SIZE + count as usize * SLOT_SIZE;
        self.buf.copy_within(start..end, start + SLOT_SIZE);
        self.set_slot_count(count + 1);
        let new_end = self.free_end() as usize - data.len();
        self.buf[new_end..new_end + data.len()].copy_from_slice(data);
        self.set_free_end(new_end as u16);
        self.set_slot(pos, new_end as u16, data.len() as u16);
        true
    }

    /// Bulk-loads `cells` into a freshly initialized page in one pass
    /// (no per-cell free-space scans). The caller must have just called
    /// [`SlottedPage::init`] and guaranteed the cells fit.
    pub fn insert_bulk(&mut self, cells: &[Vec<u8>]) {
        debug_assert_eq!(self.slot_count(), 0, "bulk load requires a fresh page");
        let mut end = PAGE_SIZE;
        self.set_slot_count(cells.len() as u16);
        for (i, c) in cells.iter().enumerate() {
            end -= c.len();
            self.buf[end..end + c.len()].copy_from_slice(c);
            self.set_slot(i as u16, end as u16, c.len() as u16);
        }
        self.set_free_end(end as u16);
        debug_assert!(end >= self.dir_end(), "bulk load overflowed the page");
    }

    /// Tombstones a slot. Returns the old cell bytes' length, or `None` if
    /// the slot was not live.
    pub fn delete(&mut self, slot: u16) -> Option<usize> {
        if !self.is_live(slot) {
            return None;
        }
        let (_, len) = self.slot_at(slot);
        // Record the dead length so total_free() can account for it.
        self.set_slot(slot, DEAD_SLOT, len);
        self.add_dead_bytes(len as usize);
        Some(len as usize)
    }

    /// Replaces the cell at `slot` preserving the slot number. Returns
    /// `false` if the new cell cannot fit.
    pub fn update(&mut self, slot: u16, data: &[u8]) -> bool {
        if !self.is_live(slot) {
            return false;
        }
        let (off, len) = self.slot_at(slot);
        if data.len() <= len as usize {
            // Shrink in place; leak the tail (reclaimed on compaction).
            let off = off as usize;
            self.buf[off..off + data.len()].copy_from_slice(data);
            self.set_slot(slot, off as u16, data.len() as u16);
            self.add_dead_bytes(len as usize - data.len());
            return true;
        }
        // Need to move: free the old cell then re-insert at the same slot.
        self.set_slot(slot, DEAD_SLOT, len);
        self.add_dead_bytes(len as usize);
        if data.len() > self.total_free() {
            // Roll back the tombstone.
            self.set_slot(slot, off, len);
            self.sub_dead_bytes(len as usize);
            return false;
        }
        if data.len() > self.contiguous_free() {
            self.compact();
        }
        let new_end = self.free_end() as usize - data.len();
        self.buf[new_end..new_end + data.len()].copy_from_slice(data);
        self.set_free_end(new_end as u16);
        self.set_slot(slot, new_end as u16, data.len() as u16);
        true
    }

    /// Rewrites the cell region dropping dead space. Slot numbers are
    /// preserved; only cell offsets change.
    pub fn compact(&mut self) {
        let count = self.slot_count();
        let mut cells: Vec<(u16, Vec<u8>)> = Vec::with_capacity(count as usize);
        for s in 0..count {
            let (off, len) = self.slot_at(s);
            if off != DEAD_SLOT {
                let off = off as usize;
                cells.push((s, self.buf[off..off + len as usize].to_vec()));
            } else {
                // A compacted dead slot no longer owns reclaimable bytes.
                self.set_slot(s, DEAD_SLOT, 0);
            }
        }
        let mut end = PAGE_SIZE;
        for (s, data) in cells {
            end -= data.len();
            self.buf[end..end + data.len()].copy_from_slice(&data);
            self.set_slot(s, end as u16, data.len() as u16);
        }
        self.set_free_end(end as u16);
        self.write_u16(6, 0);
    }

    /// Number of live cells.
    pub fn live_count(&self) -> u16 {
        (0..self.slot_count())
            .filter(|&s| self.slot_at(s).0 != DEAD_SLOT)
            .count() as u16
    }

    /// Iterates `(slot, cell)` over live cells.
    pub fn iter_live(&self) -> impl Iterator<Item = (u16, &[u8])> + '_ {
        (0..self.slot_count()).filter_map(move |s| self.get(s).map(|d| (s, d)))
    }
}

/// Read-only view over one page's bytes (no `&mut` needed; used by fetch
/// paths that must not mark pages dirty).
pub struct SlottedPageRef<'a> {
    buf: &'a [u8],
}

impl<'a> SlottedPageRef<'a> {
    /// Wraps an existing formatted page read-only.
    pub fn new(buf: &'a [u8]) -> SlottedPageRef<'a> {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        SlottedPageRef { buf }
    }

    fn read_u16(&self, at: usize) -> u16 {
        u16::from_le_bytes([self.buf[at], self.buf[at + 1]])
    }

    /// Number of slots in the directory (live + dead).
    pub fn slot_count(&self) -> u16 {
        self.read_u16(0)
    }

    /// This page's [`PageType`].
    pub fn page_type(&self) -> PageType {
        PageType::from_u16(self.read_u16(4))
    }

    /// LSN of the last WAL record applied to this page.
    pub fn lsn(&self) -> u64 {
        u64::from_le_bytes(self.buf[8..16].try_into().unwrap())
    }

    /// Auxiliary pointer (see [`SlottedPage::aux`]).
    pub fn aux(&self) -> u32 {
        u32::from_le_bytes(self.buf[16..20].try_into().unwrap())
    }

    fn slot_at(&self, slot: u16) -> (u16, u16) {
        let base = HEADER_SIZE + slot as usize * SLOT_SIZE;
        (self.read_u16(base), self.read_u16(base + 2))
    }

    /// True if the slot exists and holds a live cell.
    pub fn is_live(&self, slot: u16) -> bool {
        slot < self.slot_count() && self.slot_at(slot).0 != DEAD_SLOT
    }

    /// Returns the cell bytes of a live slot, or `None`.
    pub fn get(&self, slot: u16) -> Option<&'a [u8]> {
        if slot >= self.slot_count() {
            return None;
        }
        let (off, len) = self.slot_at(slot);
        if off == DEAD_SLOT {
            return None;
        }
        Some(&self.buf[off as usize..off as usize + len as usize])
    }

    /// Total reclaimable free bytes (contiguous + dead-cell space).
    pub fn total_free(&self) -> usize {
        let dir_end = HEADER_SIZE + self.slot_count() as usize * SLOT_SIZE;
        (self.read_u16(2) as usize).saturating_sub(dir_end) + self.read_u16(6) as usize
    }

    /// Number of live cells.
    pub fn live_count(&self) -> u16 {
        (0..self.slot_count())
            .filter(|&s| self.slot_at(s).0 != DEAD_SLOT)
            .count() as u16
    }

    /// Iterates `(slot, cell)` over live cells.
    pub fn iter_live(&self) -> impl Iterator<Item = (u16, &'a [u8])> + '_ {
        (0..self.slot_count()).filter_map(move |s| self.get(s).map(|d| (s, d)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> Vec<u8> {
        let mut buf = vec![0u8; PAGE_SIZE];
        SlottedPage::init(&mut buf, PageType::Heap);
        buf
    }

    #[test]
    fn insert_and_get_round_trip() {
        let mut buf = fresh();
        let mut p = SlottedPage::new(&mut buf);
        let s0 = p.insert(b"hello").unwrap();
        let s1 = p.insert(b"world!").unwrap();
        assert_eq!(p.get(s0), Some(&b"hello"[..]));
        assert_eq!(p.get(s1), Some(&b"world!"[..]));
        assert_eq!(p.live_count(), 2);
    }

    #[test]
    fn delete_tombstones_and_slot_reuse() {
        let mut buf = fresh();
        let mut p = SlottedPage::new(&mut buf);
        let s0 = p.insert(b"aaa").unwrap();
        let _s1 = p.insert(b"bbb").unwrap();
        assert!(p.delete(s0).is_some());
        assert_eq!(p.get(s0), None);
        assert!(p.delete(s0).is_none(), "double delete is a no-op");
        let s2 = p.insert(b"ccc").unwrap();
        assert_eq!(s2, s0, "dead slot numbers are reused");
        assert_eq!(p.get(s2), Some(&b"ccc"[..]));
    }

    #[test]
    fn update_in_place_and_grow() {
        let mut buf = fresh();
        let mut p = SlottedPage::new(&mut buf);
        let s = p.insert(b"0123456789").unwrap();
        assert!(p.update(s, b"abc"));
        assert_eq!(p.get(s), Some(&b"abc"[..]));
        assert!(p.update(s, b"a much longer value than before"));
        assert_eq!(p.get(s), Some(&b"a much longer value than before"[..]));
    }

    #[test]
    fn fill_page_then_compact_recovers_space() {
        let mut buf = fresh();
        let mut p = SlottedPage::new(&mut buf);
        let cell = vec![7u8; 100];
        let mut slots = Vec::new();
        while let Some(s) = p.insert(&cell) {
            slots.push(s);
        }
        assert!(
            slots.len() > 70,
            "should fit ~78 cells, got {}",
            slots.len()
        );
        // Delete every other cell, then a big insert must trigger compaction.
        for s in slots.iter().step_by(2) {
            p.delete(*s);
        }
        let big = vec![9u8; 1000];
        let s = p.insert(&big).expect("compaction frees room");
        assert_eq!(p.get(s), Some(&big[..]));
        // Survivors are intact.
        for s in slots.iter().skip(1).step_by(2) {
            assert_eq!(p.get(*s), Some(&cell[..]));
        }
    }

    #[test]
    fn insert_at_reproduces_slot_numbers() {
        let mut buf = fresh();
        let mut p = SlottedPage::new(&mut buf);
        assert!(p.insert_at(3, b"redo"));
        assert_eq!(p.get(3), Some(&b"redo"[..]));
        assert_eq!(p.get(0), None);
        assert_eq!(p.slot_count(), 4);
        // Filling earlier dead slots still works.
        let s = p.insert(b"x").unwrap();
        assert!(s < 3);
    }

    #[test]
    fn oversized_insert_rejected() {
        let mut buf = fresh();
        let mut p = SlottedPage::new(&mut buf);
        let too_big = vec![0u8; MAX_CELL + 1];
        assert!(p.insert(&too_big).is_none());
        let exactly = vec![0u8; MAX_CELL];
        assert!(p.insert(&exactly).is_some());
    }

    #[test]
    fn lsn_and_aux_round_trip() {
        let mut buf = fresh();
        let mut p = SlottedPage::new(&mut buf);
        p.set_lsn(0xDEADBEEF01020304);
        p.set_aux(42);
        assert_eq!(p.lsn(), 0xDEADBEEF01020304);
        assert_eq!(p.aux(), 42);
        assert_eq!(p.page_type(), PageType::Heap);
    }
}
