//! MVCC snapshot reads: copy-on-write page images published at commit.
//!
//! The engine is single-writer (serialized by the database `write_lock`),
//! which makes multi-version concurrency cheap: at each commit the writer
//! drains the buffer pool's dirty log and publishes a [`Snapshot`] — the
//! commit LSN plus an overlay of the page images that commit (and every
//! commit since the last checkpoint) produced. Readers pin a snapshot with
//! one lock-free [`SnapCell::load`] and then resolve pages without ever
//! taking a page latch:
//!
//! 1. **overlay hit** — the committed image published at or before the
//!    view's version;
//! 2. **clean pool frame** — under the no-steal policy a clean frame's
//!    bytes equal the on-disk committed image, so a copy is safe;
//! 3. **disk** — the no-steal / redo-only-WAL combination guarantees disk
//!    never holds uncommitted bytes, and pages dirtied *after* the view's
//!    version stay in memory until a checkpoint.
//!
//! Checkpoints are the one hazard: flushing dirty pages overwrites disk
//! images older views rely on. The checkpoint therefore waits up to
//! `max_view_lag` for stale views to drain, then marks the stragglers
//! *evicted* — an evicted view still serves every page in its overlay but
//! returns [`StoreError::ViewEvicted`] for pages it would have to fault in.
//!
//! The publication cell reuses the left-right discipline proven in the
//! text index (`textindex::snapshot`): two slots, version parity selects
//! the live one, per-slot reader counters, and a writer that drains the
//! inactive slot's stragglers before overwriting it.

use crate::btree::{internal_cell_ref, leaf_cell_key, parse_leaf_cell, META_PAGE};
use crate::buffer::{BufferPool, PageKey};
use crate::disk::FileId;
use crate::error::{Result, StoreError};
use crate::heap::{decode_rowid, KIND_DATA, KIND_FORWARD, KIND_MOVED};
use crate::page::{PageType, SlottedPageRef, PAGE_SIZE};
use crate::wal::Lsn;
use crate::RowId;
use std::cell::UnsafeCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One published point-in-time image of the database: every page either
/// appears in `overlay` (modified since the last checkpoint, committed at
/// or before `version`) or is identical to its on-disk image.
#[derive(Debug)]
pub(crate) struct Snapshot {
    /// Commit LSN this snapshot corresponds to (0 = freshly opened store).
    pub(crate) version: Lsn,
    /// Committed images of pages dirtied since the last checkpoint.
    pub(crate) overlay: HashMap<PageKey, Arc<[u8]>>,
    /// Per-file page counts at publication time; hides pages allocated by
    /// later transactions from scans.
    pub(crate) page_counts: HashMap<FileId, u32>,
}

impl Snapshot {
    /// The empty snapshot of a store with no published commits.
    pub(crate) fn empty() -> Snapshot {
        Snapshot {
            version: 0,
            overlay: HashMap::new(),
            page_counts: HashMap::new(),
        }
    }
}

/// Lock-free snapshot publication cell (left-right scheme).
///
/// Readers pay one atomic version load, a reader-count increment/decrement
/// and an `Arc` clone. The writer (already serialized by the database
/// write lock) prepares the inactive slot, waits out its stragglers — they
/// hold it only across an `Arc` clone — and flips the version. All atomics
/// are `SeqCst`; publication is per-commit rare, so fence cost is noise.
pub(crate) struct SnapCell {
    version: AtomicU64,
    readers: [AtomicU64; 2],
    slots: [UnsafeCell<Arc<Snapshot>>; 2],
    write: Mutex<()>,
}

// SAFETY: slot contents are only written while holding `write`, and only
// after the target slot's reader count has drained to zero; readers only
// clone out of the slot the version currently selects while registered in
// its counter. `Arc<Snapshot>` is Send + Sync.
unsafe impl Send for SnapCell {}
unsafe impl Sync for SnapCell {}

impl SnapCell {
    /// A cell initially holding `snap`.
    pub(crate) fn new(snap: Arc<Snapshot>) -> SnapCell {
        SnapCell {
            version: AtomicU64::new(0),
            readers: [AtomicU64::new(0), AtomicU64::new(0)],
            slots: [UnsafeCell::new(snap.clone()), UnsafeCell::new(snap)],
            write: Mutex::new(()),
        }
    }

    /// Returns the current snapshot; wait-free in practice (the retry loop
    /// only spins when a publication lands between the two version loads).
    pub(crate) fn load(&self) -> Arc<Snapshot> {
        loop {
            let v = self.version.load(Ordering::SeqCst);
            let slot = (v & 1) as usize;
            self.readers[slot].fetch_add(1, Ordering::SeqCst);
            if self.version.load(Ordering::SeqCst) == v {
                // The slot cannot be overwritten while we are registered:
                // a writer targeting it must observe our registration and
                // wait for the count to drain.
                let snap = unsafe { (*self.slots[slot].get()).clone() };
                self.readers[slot].fetch_sub(1, Ordering::SeqCst);
                return snap;
            }
            self.readers[slot].fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Publishes `snap` as the new current snapshot.
    pub(crate) fn store(&self, snap: Arc<Snapshot>) {
        let _guard = self.write.lock().unwrap_or_else(|e| e.into_inner());
        let v = self.version.load(Ordering::SeqCst);
        let target = ((v + 1) & 1) as usize;
        while self.readers[target].load(Ordering::SeqCst) != 0 {
            std::hint::spin_loop();
        }
        unsafe {
            *self.slots[target].get() = snap;
        }
        self.version.store(v + 1, Ordering::SeqCst);
    }
}

impl std::fmt::Debug for SnapCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapCell")
            .field("flips", &self.version.load(Ordering::SeqCst))
            .finish()
    }
}

/// Counters describing MVCC publication and read-view activity, surfaced
/// through `Database::mvcc_stats` and up into query/HTTP stats.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MvccStats {
    /// Version (commit LSN) of the currently published snapshot.
    pub version: u64,
    /// Read views currently pinned.
    pub live_views: u64,
    /// Read views opened since the database was opened.
    pub views_opened: u64,
    /// Views evicted by checkpoints after exceeding `max_view_lag`.
    pub views_evicted: u64,
    /// Snapshot publications (one per commit, DDL, and checkpoint).
    pub publishes: u64,
    /// Pages in the current snapshot's copy-on-write overlay.
    pub overlay_pages: u64,
    /// Bytes held by the current overlay's page images.
    pub overlay_bytes: u64,
}

impl MvccStats {
    /// Folds another database's stats into this one — the sharded-mode
    /// aggregation. Lifetime counters (`views_opened`, `views_evicted`,
    /// `publishes`) sum across databases; gauges (`version`, `live_views`,
    /// `overlay_pages`, `overlay_bytes`) take the max, because summing
    /// instantaneous readings from independent engines fabricates a value
    /// no engine ever reported.
    pub fn merge(&mut self, other: &MvccStats) {
        self.version = self.version.max(other.version);
        self.live_views = self.live_views.max(other.live_views);
        self.views_opened += other.views_opened;
        self.views_evicted += other.views_evicted;
        self.publishes += other.publishes;
        self.overlay_pages = self.overlay_pages.max(other.overlay_pages);
        self.overlay_bytes = self.overlay_bytes.max(other.overlay_bytes);
    }
}

/// Resolves page images for one pinned read view. Never installs buffer
/// frames or takes a page latch; see the module docs for the three-level
/// resolution order and its correctness argument.
pub(crate) struct PageSource {
    pub(crate) snap: Arc<Snapshot>,
    pub(crate) pool: Arc<BufferPool>,
    /// Set by a checkpoint that reclaimed disk images this view depends on.
    pub(crate) evicted: Arc<AtomicBool>,
}

impl PageSource {
    /// Pages in `file` as of the snapshot (0 for unknown files).
    pub(crate) fn page_count(&self, file: FileId) -> u32 {
        self.snap.page_counts.get(&file).copied().unwrap_or(0)
    }

    /// The committed image of `(file, page_no)` as of the snapshot.
    pub(crate) fn page(&self, file: FileId, page_no: u32) -> Result<Arc<[u8]>> {
        if let Some(img) = self.snap.overlay.get(&(file, page_no)) {
            return Ok(Arc::clone(img));
        }
        let bytes = match self.pool.read_committed(file, page_no) {
            Some(b) => b,
            None => {
                let mut buf = vec![0u8; PAGE_SIZE].into_boxed_slice();
                self.pool
                    .file_manager()
                    .read_page(file, page_no, &mut buf)?;
                buf
            }
        };
        // Eviction check AFTER the read: a checkpoint sets the flag before
        // flushing any page, so bytes read under a clear flag predate the
        // flush and are still the image this view expects. (Clean pool
        // frames can also only turn too-new via a checkpoint flush.)
        if self.evicted.load(Ordering::SeqCst) {
            return Err(StoreError::ViewEvicted);
        }
        Ok(Arc::from(&bytes[..]))
    }
}

/// Read-only B+ tree access over a pinned snapshot. Mirrors the read paths
/// of [`crate::btree::BTree`] (same cell formats, same descent) but fetches
/// pages through a [`PageSource`] instead of the buffer pool.
pub(crate) struct BTreeReader<'a> {
    pub(crate) src: &'a PageSource,
    pub(crate) file: FileId,
}

impl BTreeReader<'_> {
    fn page(&self, no: u32) -> Result<Arc<[u8]>> {
        self.src.page(self.file, no)
    }

    fn root(&self) -> Result<u32> {
        let data = self.page(META_PAGE)?;
        Ok(SlottedPageRef::new(&data).aux())
    }

    /// Descends to the leaf covering `key`, returning its page image.
    fn find_leaf(&self, key: &[u8]) -> Result<Arc<[u8]>> {
        let mut page = self.root()?;
        loop {
            let data = self.page(page)?;
            let sp = SlottedPageRef::new(&data);
            match sp.page_type() {
                PageType::BtreeLeaf => return Ok(data),
                PageType::BtreeInternal => {
                    // Last separator <= key, else the leftmost child.
                    let n = sp.slot_count();
                    let (mut lo, mut hi) = (0u16, n);
                    while lo < hi {
                        let mid = (lo + hi) / 2;
                        let cell = sp
                            .get(mid)
                            .ok_or_else(|| StoreError::Corrupt("btree slot gap".into()))?;
                        let (k, _) = internal_cell_ref(cell)?;
                        if k <= key {
                            lo = mid + 1;
                        } else {
                            hi = mid;
                        }
                    }
                    page = if lo == 0 {
                        sp.aux()
                    } else {
                        let cell = sp
                            .get(lo - 1)
                            .ok_or_else(|| StoreError::Corrupt("btree slot gap".into()))?;
                        internal_cell_ref(cell)?.1
                    };
                }
                t => {
                    return Err(StoreError::Corrupt(format!(
                        "unexpected page type {t:?} in btree descent"
                    )))
                }
            }
        }
    }

    /// Point lookup.
    pub(crate) fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let data = self.find_leaf(key)?;
        let sp = SlottedPageRef::new(&data);
        let n = sp.slot_count();
        let (mut lo, mut hi) = (0u16, n);
        while lo < hi {
            let mid = (lo + hi) / 2;
            let cell = sp
                .get(mid)
                .ok_or_else(|| StoreError::Corrupt("btree slot gap".into()))?;
            match leaf_cell_key(cell)?.cmp(key) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => {
                    let (_, v) = parse_leaf_cell(cell)?;
                    return Ok(Some(v));
                }
            }
        }
        Ok(None)
    }

    /// Range scan over `lo <= key < hi` in key order.
    pub(crate) fn range(&self, lo: &[u8], hi: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut out = Vec::new();
        let mut data = self.find_leaf(lo)?;
        loop {
            let sp = SlottedPageRef::new(&data);
            for (_, c) in sp.iter_live() {
                let (k, v) = parse_leaf_cell(c)?;
                if k.as_slice() >= hi {
                    return Ok(out);
                }
                if k.as_slice() >= lo {
                    out.push((k, v));
                }
            }
            let next = sp.aux();
            if next == 0 {
                return Ok(out);
            }
            data = self.page(next)?;
        }
    }
}

/// Read-only heap access over a pinned snapshot. Mirrors the read paths of
/// [`crate::heap::HeapFile`] (kind bytes, forwarding chains, moved cells).
pub(crate) struct HeapReader<'a> {
    pub(crate) src: &'a PageSource,
    pub(crate) file: FileId,
}

impl HeapReader<'_> {
    /// Pages in the heap as of the snapshot.
    pub(crate) fn page_count(&self) -> u32 {
        self.src.page_count(self.file)
    }

    /// Follows forwarding cells from `rid` to the data cell.
    fn resolve(&self, rid: RowId) -> Result<(u8, Vec<u8>)> {
        let mut cur = rid;
        for _ in 0..32 {
            if cur.page >= self.page_count() {
                return Err(StoreError::RowNotFound(rid));
            }
            let data = self.src.page(self.file, cur.page)?;
            let sp = SlottedPageRef::new(&data);
            let cell = sp.get(cur.slot).ok_or(StoreError::RowNotFound(rid))?;
            match cell.first() {
                Some(&KIND_FORWARD) => {
                    cur = decode_rowid(&cell[1..])?;
                }
                Some(&k @ (KIND_DATA | KIND_MOVED)) => {
                    return Ok((k, cell.to_vec()));
                }
                _ => return Err(StoreError::Corrupt("bad heap cell kind".into())),
            }
        }
        Err(StoreError::Corrupt("forwarding chain too long".into()))
    }

    /// Tuple bytes stored under `rid`.
    pub(crate) fn get(&self, rid: RowId) -> Result<Vec<u8>> {
        let (kind, cell) = self.resolve(rid)?;
        Ok(match kind {
            KIND_DATA => cell[1..].to_vec(),
            _ => cell[7..].to_vec(), // KIND_MOVED: skip kind + original rid
        })
    }

    /// True if `rid` names a tuple live in this snapshot.
    pub(crate) fn exists(&self, rid: RowId) -> Result<bool> {
        match self.resolve(rid) {
            Ok(_) => Ok(true),
            Err(StoreError::RowNotFound(_)) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Full scan yielding `(client-visible RowId, tuple bytes)`.
    pub(crate) fn scan(&self) -> Result<Vec<(RowId, Vec<u8>)>> {
        let mut out = Vec::new();
        for p in 0..self.page_count() {
            let data = self.src.page(self.file, p)?;
            let sp = SlottedPageRef::new(&data);
            if sp.page_type() != PageType::Heap {
                continue; // allocated but never formatted (or non-heap)
            }
            for (slot, cell) in sp.iter_live() {
                match cell.first() {
                    Some(&KIND_DATA) => {
                        out.push((RowId { page: p, slot }, cell[1..].to_vec()));
                    }
                    Some(&KIND_MOVED) => {
                        let orig = decode_rowid(&cell[1..7])?;
                        out.push((orig, cell[7..].to_vec()));
                    }
                    _ => {} // forward cells are not tuples
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(version: Lsn) -> Arc<Snapshot> {
        Arc::new(Snapshot {
            version,
            overlay: HashMap::new(),
            page_counts: HashMap::new(),
        })
    }

    #[test]
    fn cell_round_trip_and_torn_free() {
        let cell = Arc::new(SnapCell::new(snap(0)));
        assert_eq!(cell.load().version, 0);
        cell.store(snap(7));
        assert_eq!(cell.load().version, 7);
        // Concurrent readers only ever observe published versions.
        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                let mut last = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let s = cell.load();
                    assert!(s.version >= last, "version went backwards");
                    last = s.version;
                }
            }));
        }
        for v in 8..200u64 {
            cell.store(snap(v));
        }
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().expect("reader panicked");
        }
        assert_eq!(cell.load().version, 199);
    }

    #[test]
    fn mvcc_stats_merge_sums_counters_and_maxes_gauges() {
        let a = MvccStats {
            version: 40,
            live_views: 2,
            views_opened: 100,
            views_evicted: 3,
            publishes: 50,
            overlay_pages: 8,
            overlay_bytes: 65536,
        };
        let b = MvccStats {
            version: 25,
            live_views: 5,
            views_opened: 10,
            views_evicted: 1,
            publishes: 7,
            overlay_pages: 12,
            overlay_bytes: 4096,
        };
        let mut merged = a;
        merged.merge(&b);
        // Lifetime counters sum…
        assert_eq!(merged.views_opened, 110);
        assert_eq!(merged.views_evicted, 4);
        assert_eq!(merged.publishes, 57);
        // …gauges take the max, never the sum.
        assert_eq!(merged.version, 40);
        assert_eq!(merged.live_views, 5);
        assert_eq!(merged.overlay_pages, 12);
        assert_eq!(merged.overlay_bytes, 65536);
        // Merge order must not matter.
        let mut other = b;
        other.merge(&a);
        assert_eq!(merged, other);
    }
}
