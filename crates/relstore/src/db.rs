//! The database facade: tables, indexes, transactions, recovery.
//!
//! Concurrency model: **single writer, many readers**. A write transaction
//! (explicit [`Txn`] or the auto-commit wrappers on [`Table`]) holds the
//! database write lock; readers go straight to the buffer pool. This is
//! deliberately modest — NETMARK's store is ingest-then-query — and keeps
//! the recovery story airtight (no-steal/no-force, redo-only WAL; see
//! [`crate::wal`]).
//!
//! Secondary indexes are not WAL-logged. A clean shutdown checkpoints
//! (flushing index pages with everything else); after a crash the WAL is
//! non-empty and every index is rebuilt from its table's heap.

use crate::btree::BTree;
use crate::buffer::{BufferPool, PoolStats};
use crate::catalog::{Catalog, IndexMeta, TableMeta};
use crate::disk::{FileId, FileManager};
use crate::error::{Result, StoreError};
use crate::heap::{HeapFile, HeapOp};
use crate::keyenc;
use crate::snapshot::{BTreeReader, HeapReader, MvccStats, PageSource, SnapCell, Snapshot};
use crate::tuple::{decode_row, encode_row, Row, Schema, Value};
use crate::wal::{Lsn, ObjectId, TxId, Wal, WalRecord, WalStats};
use crate::RowId;
use parking_lot::{Mutex, MutexGuard, RwLock};
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tuning knobs for [`Database::open_with`].
#[derive(Debug, Clone)]
pub struct DbOptions {
    /// Buffer pool capacity in pages (8 KiB each).
    pub pool_pages: usize,
    /// Fsync the WAL on every commit (durability) or only at checkpoints
    /// (throughput; used by benchmarks).
    pub sync_commits: bool,
    /// Group commit: with `sync_commits`, commits landing within this
    /// window of the last WAL fsync share the next one instead of each
    /// issuing their own. Zero (the default) fsyncs every commit. A commit
    /// is durable at latest when the window closes at a later commit, a
    /// checkpoint, [`Database::sync_wal`], or shutdown; a crash can lose at
    /// most the commits of one window, always atomically (the redo-only
    /// recovery contract is unchanged — a commit record either reached disk
    /// or the whole transaction is ignored).
    pub group_commit_window: Duration,
    /// Checkpoint automatically once the WAL exceeds this many bytes.
    pub checkpoint_wal_bytes: u64,
    /// How long a checkpoint waits for read views pinning versions older
    /// than the current one to drain before *evicting* them. An evicted
    /// view keeps serving every page in its copy-on-write overlay but
    /// returns [`StoreError::ViewEvicted`] for pages it would have to
    /// fault in from disk (the checkpoint overwrote those images). Readers
    /// therefore bound GC lag instead of blocking it forever.
    pub max_view_lag: Duration,
}

impl Default for DbOptions {
    fn default() -> Self {
        DbOptions {
            pool_pages: 2048, // 16 MiB
            sync_commits: true,
            group_commit_window: Duration::ZERO,
            checkpoint_wal_bytes: 32 << 20,
            max_view_lag: Duration::from_secs(2),
        }
    }
}

/// An open index: catalog entry, B-tree, and the schema positions of its
/// key columns, resolved once at open so per-row key building never does a
/// by-name column lookup.
struct IndexEntry {
    meta: IndexMeta,
    tree: Arc<BTree>,
    positions: Vec<usize>,
}

impl IndexEntry {
    fn new(meta: IndexMeta, tree: Arc<BTree>, schema: &Schema) -> Result<IndexEntry> {
        let positions = meta
            .key_columns
            .iter()
            .map(|col| {
                schema
                    .position(col)
                    .ok_or_else(|| StoreError::Invalid(format!("index column {col} missing")))
            })
            .collect::<Result<Vec<usize>>>()?;
        Ok(IndexEntry {
            meta,
            tree,
            positions,
        })
    }

    /// Builds the memcomparable key for `row`, appending the RowId for
    /// non-unique indexes.
    fn key(&self, row: &Row, rid: RowId) -> Vec<u8> {
        let mut key = Vec::with_capacity(self.positions.len() * 12 + 6);
        for &p in &self.positions {
            keyenc::encode_value(&mut key, row.get(p).unwrap_or(&Value::Null));
        }
        if !self.meta.unique {
            keyenc::append_rowid(&mut key, rid);
        }
        key
    }
}

struct TableInner {
    meta: TableMeta,
    heap: HeapFile,
    /// Every open index on this table.
    indexes: RwLock<Vec<IndexEntry>>,
}

/// One registered read view: enough for a checkpoint to decide whether the
/// view pins disk images the flush would overwrite, and to evict it.
struct ViewSlot {
    id: u64,
    version: Lsn,
    evicted: Arc<AtomicBool>,
}

struct DbInner {
    fm: Arc<FileManager>,
    pool: Arc<BufferPool>,
    wal: Mutex<Wal>,
    catalog: RwLock<Catalog>,
    tables: RwLock<HashMap<String, Arc<TableInner>>>,
    write_lock: Mutex<()>,
    next_tx: AtomicU64,
    opts: DbOptions,
    /// Left-right publication cell holding the current MVCC snapshot.
    cell: SnapCell,
    /// Registry of live read views. Readers register under this lock in
    /// the same critical section that loads the snapshot, so a checkpoint
    /// scanning the registry can never miss a reader whose snapshot
    /// predates the flush.
    views: Mutex<Vec<ViewSlot>>,
    next_view: AtomicU64,
    views_opened: AtomicU64,
    views_evicted: AtomicU64,
    publishes: AtomicU64,
}

impl Drop for DbInner {
    fn drop(&mut self) {
        // Clean shutdown flushes commits still inside the group-commit
        // window; only an actual crash can lose them.
        let _ = self.wal.get_mut().sync();
    }
}

impl DbInner {
    /// Publishes a new MVCC snapshot at `version` (a commit LSN): drains
    /// the buffer pool's dirty log, copies the committed images of those
    /// pages into the previous snapshot's overlay, and flips the cell.
    /// Called by the single writer with the write lock held.
    fn publish(&self, version: Lsn) {
        let keys = self.pool.take_dirty_log();
        let prev = self.cell.load();
        let mut overlay = prev.overlay.clone();
        for (key, img) in self.pool.snapshot_pages(&keys) {
            overlay.insert(key, img);
        }
        self.cell.store(Arc::new(Snapshot {
            version,
            overlay,
            page_counts: self.fm.all_page_counts(),
        }));
        self.publishes.fetch_add(1, Ordering::Relaxed);
    }

    /// Publishes a fresh snapshot with an *empty* overlay at the current
    /// version — correct immediately after a checkpoint, when every
    /// committed image has been flushed and disk equals the current state.
    fn publish_clean(&self) {
        self.pool.take_dirty_log();
        let version = self.cell.load().version;
        self.cell.store(Arc::new(Snapshot {
            version,
            overlay: HashMap::new(),
            page_counts: self.fm.all_page_counts(),
        }));
        self.publishes.fetch_add(1, Ordering::Relaxed);
    }

    /// Checkpoint GC: waits up to `max_view_lag` for read views pinning
    /// versions older than the current snapshot to drop, then marks the
    /// stragglers evicted. Views at the current version are untouched —
    /// the flush writes exactly the images they expect.
    fn wait_or_evict_stale_views(&self) {
        let current = self.cell.load().version;
        let deadline = Instant::now() + self.opts.max_view_lag;
        loop {
            let stale: Vec<Arc<AtomicBool>> = {
                let views = self.views.lock();
                views
                    .iter()
                    .filter(|v| v.version < current && !v.evicted.load(Ordering::SeqCst))
                    .map(|v| Arc::clone(&v.evicted))
                    .collect()
            };
            if stale.is_empty() {
                return;
            }
            if Instant::now() >= deadline {
                for flag in stale {
                    // Set BEFORE any page is flushed: a reader that loads
                    // disk bytes under a clear flag is guaranteed they
                    // predate this checkpoint's writes.
                    flag.store(true, Ordering::SeqCst);
                    self.views_evicted.fetch_add(1, Ordering::Relaxed);
                }
                return;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Flushes all dirty pages, truncates the WAL, persists the catalog,
    /// and republishes a clean snapshot. Caller holds the write lock.
    fn checkpoint_locked(&self) -> Result<()> {
        self.wait_or_evict_stale_views();
        self.pool.flush_all()?;
        let mut wal = self.wal.lock();
        wal.append(&WalRecord::Checkpoint)?;
        let last = wal.reset()?;
        drop(wal);
        let mut cat = self.catalog.write();
        cat.last_lsn = last;
        cat.save(self.fm.dir())?;
        drop(cat);
        self.publish_clean();
        Ok(())
    }
}

/// An open database directory.
#[derive(Clone)]
pub struct Database {
    inner: Arc<DbInner>,
}

/// Handle to one table. Cheap to clone; all methods are `&self`.
#[derive(Clone)]
pub struct Table {
    db: Arc<DbInner>,
    t: Arc<TableInner>,
}

fn table_file(id: ObjectId) -> String {
    format!("t{}.tbl", id.0)
}

fn index_file(id: ObjectId) -> String {
    format!("i{}.idx", id.0)
}

impl Database {
    /// Opens (or creates) the database in `dir` with default options.
    pub fn open(dir: &Path) -> Result<Database> {
        Database::open_with(dir, DbOptions::default())
    }

    /// Opens (or creates) the database in `dir`.
    pub fn open_with(dir: &Path, opts: DbOptions) -> Result<Database> {
        let fm = Arc::new(FileManager::open(dir)?);
        let pool = Arc::new(BufferPool::new(Arc::clone(&fm), opts.pool_pages));
        let catalog = Catalog::load(dir)?;
        let (wal, pending) = Wal::open(&dir.join("wal.log"), catalog.last_lsn)?;
        let inner = Arc::new(DbInner {
            fm,
            pool,
            wal: Mutex::new(wal),
            catalog: RwLock::new(catalog),
            tables: RwLock::new(HashMap::new()),
            write_lock: Mutex::new(()),
            next_tx: AtomicU64::new(1),
            opts,
            cell: SnapCell::new(Arc::new(Snapshot::empty())),
            views: Mutex::new(Vec::new()),
            next_view: AtomicU64::new(0),
            views_opened: AtomicU64::new(0),
            views_evicted: AtomicU64::new(0),
            publishes: AtomicU64::new(0),
        });
        let db = Database { inner };
        // Open every catalogued table so handles and indexes are live.
        let names: Vec<String> = db.inner.catalog.read().tables.keys().cloned().collect();
        for name in names {
            db.open_table(&name)?;
        }
        if !pending.is_empty() {
            db.recover(pending)?;
        }
        // First snapshot: everything on disk is committed state.
        db.inner.publish_clean();
        Ok(db)
    }

    /// Root directory.
    pub fn dir(&self) -> &Path {
        self.inner.fm.dir()
    }

    /// Buffer pool counters (for the ablation bench).
    pub fn pool_stats(&self) -> PoolStats {
        self.inner.pool.stats()
    }

    /// WAL commit/fsync counters (group-commit instrumentation).
    pub fn wal_stats(&self) -> WalStats {
        self.inner.wal.lock().stats()
    }

    /// Durably flushes any commits whose fsync was deferred by the
    /// group-commit window.
    pub fn sync_wal(&self) -> Result<()> {
        self.inner.wal.lock().sync()
    }

    fn open_table(&self, name: &str) -> Result<Arc<TableInner>> {
        if let Some(t) = self.inner.tables.read().get(name) {
            return Ok(Arc::clone(t));
        }
        let cat = self.inner.catalog.read();
        let meta = cat
            .tables
            .get(name)
            .ok_or_else(|| StoreError::NoSuchObject(name.to_string()))?
            .clone();
        let file = self.inner.fm.open_file(&table_file(meta.id))?;
        let heap = HeapFile::open(Arc::clone(&self.inner.pool), file)?;
        let mut indexes = Vec::new();
        for im in cat.indexes_of(name) {
            let f = self.inner.fm.open_file(&index_file(im.id))?;
            let tree = BTree::open(Arc::clone(&self.inner.pool), f)?;
            indexes.push(IndexEntry::new(im.clone(), Arc::new(tree), &meta.schema)?);
        }
        drop(cat);
        let t = Arc::new(TableInner {
            meta,
            heap,
            indexes: RwLock::new(indexes),
        });
        self.inner
            .tables
            .write()
            .insert(name.to_string(), Arc::clone(&t));
        Ok(t)
    }

    /// Creates a table. Errors if the name is taken.
    pub fn create_table(&self, name: &str, schema: Schema) -> Result<Table> {
        let _w = self.inner.write_lock.lock();
        {
            let mut cat = self.inner.catalog.write();
            if cat.tables.contains_key(name) {
                return Err(StoreError::AlreadyExists(name.to_string()));
            }
            let id = cat.allocate_object();
            cat.tables.insert(
                name.to_string(),
                TableMeta {
                    id,
                    name: name.to_string(),
                    schema,
                },
            );
            cat.save(self.inner.fm.dir())?;
        }
        drop(_w);
        self.table(name)
    }

    /// Returns a handle to an existing table.
    pub fn table(&self, name: &str) -> Result<Table> {
        let t = self.open_table(name)?;
        Ok(Table {
            db: Arc::clone(&self.inner),
            t,
        })
    }

    /// True if `name` is a catalogued table.
    pub fn has_table(&self, name: &str) -> bool {
        self.inner.catalog.read().tables.contains_key(name)
    }

    /// Names of all catalogued tables.
    pub fn table_names(&self) -> Vec<String> {
        self.inner.catalog.read().tables.keys().cloned().collect()
    }

    /// Creates a secondary index over `key_columns` of `table` and builds
    /// it from existing rows.
    pub fn create_index(
        &self,
        table: &str,
        name: &str,
        key_columns: &[&str],
        unique: bool,
    ) -> Result<()> {
        let t = self.open_table(table)?;
        let _w = self.inner.write_lock.lock();
        let meta = {
            let mut cat = self.inner.catalog.write();
            if cat.indexes.contains_key(name) {
                return Err(StoreError::AlreadyExists(name.to_string()));
            }
            for k in key_columns {
                if t.meta.schema.position(k).is_none() {
                    return Err(StoreError::Invalid(format!(
                        "no column {k} in table {table}"
                    )));
                }
            }
            let id = cat.allocate_object();
            let meta = IndexMeta {
                id,
                name: name.to_string(),
                table: table.to_string(),
                key_columns: key_columns.iter().map(|s| s.to_string()).collect(),
                unique,
            };
            cat.indexes.insert(name.to_string(), meta.clone());
            cat.save(self.inner.fm.dir())?;
            meta
        };
        let f = self.inner.fm.open_file(&index_file(meta.id))?;
        let tree = Arc::new(BTree::open(Arc::clone(&self.inner.pool), f)?);
        let entry = IndexEntry::new(meta, tree, &t.meta.schema)?;
        // Backfill from existing rows.
        for (rid, bytes) in t.heap.scan()? {
            let row = decode_row(&bytes)?;
            let key = entry.key(&row, rid);
            entry.tree.insert(&key, &rowid_bytes(rid))?;
        }
        t.indexes.write().push(entry);
        // Publish at the current version so new read views see the index
        // (DDL is not WAL-versioned; the backfill pages ride the overlay).
        let version = self.inner.cell.load().version;
        self.inner.publish(version);
        Ok(())
    }

    /// Begins an explicit write transaction. Holds the database write lock
    /// until commit/abort/drop (drop aborts). The transaction pins a read
    /// view of the pre-transaction state ([`Txn::read_view`]); the pin is
    /// released at commit/abort so it can never stall a checkpoint.
    pub fn begin(&self) -> Txn<'_> {
        let guard = self.inner.write_lock.lock();
        let tx = self.inner.next_tx.fetch_add(1, Ordering::Relaxed);
        let view = self.begin_read();
        Txn {
            db: &self.inner,
            _guard: guard,
            tx,
            ops: Vec::new(),
            deferred: Vec::new(),
            began: false,
            finished: false,
            view: Some(view),
        }
    }

    /// Pins a point-in-time read view of the last committed state. Never
    /// blocks on or is blocked by the writer: the snapshot load is
    /// lock-free and subsequent page reads take no page latch. The view
    /// stays pinned (checkpoints wait up to [`DbOptions::max_view_lag`]
    /// for it) until every clone is dropped.
    pub fn begin_read(&self) -> ReadView {
        let evicted = Arc::new(AtomicBool::new(false));
        // Load the snapshot and register in one critical section so a
        // checkpoint scanning the registry either sees this view or is
        // guaranteed the view's snapshot postdates its own publication.
        let (snap, id) = {
            let mut views = self.inner.views.lock();
            let snap = self.inner.cell.load();
            let id = self.inner.next_view.fetch_add(1, Ordering::Relaxed);
            views.push(ViewSlot {
                id,
                version: snap.version,
                evicted: Arc::clone(&evicted),
            });
            (snap, id)
        };
        self.inner.views_opened.fetch_add(1, Ordering::Relaxed);
        ReadView {
            core: Arc::new(ViewCore {
                db: Arc::clone(&self.inner),
                id,
                src: PageSource {
                    snap,
                    pool: Arc::clone(&self.inner.pool),
                    evicted,
                },
            }),
        }
    }

    /// MVCC publication / read-view counters.
    pub fn mvcc_stats(&self) -> MvccStats {
        let snap = self.inner.cell.load();
        MvccStats {
            version: snap.version,
            live_views: self.inner.views.lock().len() as u64,
            views_opened: self.inner.views_opened.load(Ordering::Relaxed),
            views_evicted: self.inner.views_evicted.load(Ordering::Relaxed),
            publishes: self.inner.publishes.load(Ordering::Relaxed),
            overlay_pages: snap.overlay.len() as u64,
            overlay_bytes: snap.overlay.values().map(|p| p.len() as u64).sum(),
        }
    }

    /// Flushes all dirty pages, truncates the WAL, and persists the
    /// catalog. Called automatically when the WAL grows large. Waits up to
    /// [`DbOptions::max_view_lag`] for stale read views, then evicts them.
    pub fn checkpoint(&self) -> Result<()> {
        let _w = self.inner.write_lock.lock();
        self.inner.checkpoint_locked()
    }

    /// Crash recovery: redo committed WAL operations, checkpoint, rebuild
    /// all indexes.
    fn recover(&self, records: Vec<(u64, WalRecord)>) -> Result<()> {
        let committed: std::collections::HashSet<TxId> = records
            .iter()
            .filter_map(|(_, r)| match r {
                WalRecord::Commit { tx } => Some(*tx),
                _ => None,
            })
            .collect();
        for (lsn, rec) in &records {
            let (obj, page, slot, cell) = match rec {
                WalRecord::Insert {
                    tx,
                    obj,
                    page,
                    slot,
                    data,
                } if committed.contains(tx) => (*obj, *page, *slot, Some(data.clone())),
                WalRecord::Update {
                    tx,
                    obj,
                    page,
                    slot,
                    new,
                    ..
                } if committed.contains(tx) => (*obj, *page, *slot, Some(new.clone())),
                WalRecord::Delete {
                    tx,
                    obj,
                    page,
                    slot,
                    ..
                } if committed.contains(tx) => (*obj, *page, *slot, None),
                _ => continue,
            };
            let name = {
                let cat = self.inner.catalog.read();
                cat.table_by_id(obj).map(|t| t.name.clone())
            };
            // A table dropped after the logged op: skip.
            let Some(name) = name else { continue };
            let t = self.open_table(&name)?;
            t.heap.redo(page, slot, cell.as_deref(), *lsn)?;
        }
        self.inner.checkpoint_locked()?;
        self.rebuild_indexes()?;
        self.inner.pool.flush_all()?;
        Ok(())
    }

    /// Drops and rebuilds every index from its table's heap.
    pub fn rebuild_indexes(&self) -> Result<()> {
        let names = self.table_names();
        for name in names {
            let t = self.open_table(&name)?;
            let metas: Vec<IndexMeta> = t.indexes.read().iter().map(|e| e.meta.clone()).collect();
            let mut rebuilt = Vec::new();
            for m in metas {
                let fname = index_file(m.id);
                let f = self.inner.fm.open_file(&fname)?;
                self.inner.pool.discard_file(f);
                self.inner.fm.truncate(f)?;
                let tree = Arc::new(BTree::open(Arc::clone(&self.inner.pool), f)?);
                let entry = IndexEntry::new(m, tree, &t.meta.schema)?;
                for (rid, bytes) in t.heap.scan()? {
                    let row = decode_row(&bytes)?;
                    let key = entry.key(&row, rid);
                    entry.tree.insert(&key, &rowid_bytes(rid))?;
                }
                rebuilt.push(entry);
            }
            *t.indexes.write() = rebuilt;
        }
        Ok(())
    }
}

fn rowid_bytes(rid: RowId) -> [u8; 6] {
    let mut b = [0u8; 6];
    b[0..4].copy_from_slice(&rid.page.to_le_bytes());
    b[4..6].copy_from_slice(&rid.slot.to_le_bytes());
    b
}

fn rowid_from_bytes(b: &[u8]) -> Result<RowId> {
    if b.len() < 6 {
        return Err(StoreError::Corrupt("short rowid in index".into()));
    }
    Ok(RowId {
        page: u32::from_le_bytes(b[0..4].try_into().unwrap()),
        slot: u16::from_le_bytes(b[4..6].try_into().unwrap()),
    })
}

enum TxOp {
    Heap(ObjectId, HeapOp),
    IndexInsert {
        tree: Arc<BTree>,
        key: Vec<u8>,
    },
    IndexDelete {
        tree: Arc<BTree>,
        key: Vec<u8>,
        val: Vec<u8>,
    },
}

/// An explicit write transaction. Commit with [`Txn::commit`]; dropping an
/// uncommitted transaction aborts it.
pub struct Txn<'a> {
    db: &'a DbInner,
    _guard: MutexGuard<'a, ()>,
    tx: TxId,
    ops: Vec<TxOp>,
    /// Indexes into `ops` of heap inserts whose WAL records are queued
    /// (not yet appended), plus the file that backs each one. Sorted,
    /// because tokens are `ops.len()` at push time.
    deferred: Vec<(usize, FileId)>,
    began: bool,
    finished: bool,
    /// Read view of the pre-transaction state, released (unpinned) by
    /// commit and abort alike — including the drop-abort path — so a
    /// finished transaction can never hold GC back.
    view: Option<ReadView>,
}

impl<'a> Txn<'a> {
    fn ensure_begun(&mut self) -> Result<()> {
        if self.finished {
            return Err(StoreError::TxnFinished);
        }
        if !self.began {
            self.db
                .wal
                .lock()
                .append(&WalRecord::Begin { tx: self.tx })?;
            self.began = true;
        }
        Ok(())
    }

    fn log_heap(&mut self, table: &Table, op: &HeapOp) -> Result<()> {
        Self::log_heap_raw(
            self.db,
            self.tx,
            table.t.meta.id,
            table.t.heap.file_id(),
            op,
        )
    }

    fn log_heap_raw(
        db: &DbInner,
        tx: TxId,
        obj: ObjectId,
        file: FileId,
        op: &HeapOp,
    ) -> Result<()> {
        let rec = match op {
            HeapOp::Insert { rid, cell } => WalRecord::Insert {
                tx,
                obj,
                page: rid.page,
                slot: rid.slot,
                data: cell.clone(),
            },
            HeapOp::Delete { rid, old } => WalRecord::Delete {
                tx,
                obj,
                page: rid.page,
                slot: rid.slot,
                old: old.clone(),
            },
            HeapOp::Update { rid, old, new } => WalRecord::Update {
                tx,
                obj,
                page: rid.page,
                slot: rid.slot,
                old: old.clone(),
                new: new.clone(),
            },
        };
        let lsn = db.wal.lock().append(&rec)?;
        // Stamp the page so redo is idempotent.
        let (HeapOp::Insert { rid, .. } | HeapOp::Delete { rid, .. } | HeapOp::Update { rid, .. }) =
            op;
        let guard = db.pool.fetch(file, rid.page)?;
        let mut data = guard.write();
        crate::page::SlottedPage::new(&mut data).set_lsn(lsn);
        Ok(())
    }

    /// Inserts `row` into `table`, returning its RowId.
    pub fn insert(&mut self, table: &Table, row: &Row) -> Result<RowId> {
        self.ensure_begun()?;
        // Unique index pre-checks.
        for e in table.t.indexes.read().iter() {
            if e.meta.unique {
                let key = e.key(row, RowId::ZERO);
                if e.tree.get(&key)?.is_some() {
                    return Err(StoreError::Invalid(format!(
                        "unique index {} violated",
                        e.meta.name
                    )));
                }
            }
        }
        self.insert_no_check(table, row)
    }

    /// Inserts `row` without unique-index pre-checks. For bulk loads where
    /// the caller guarantees freshly allocated keys (e.g. monotonically
    /// assigned node ids): skips one B-tree probe per unique index per row.
    /// A violated guarantee silently shadows the older row in the unique
    /// index instead of erroring, so this is deliberately not the default
    /// path.
    pub fn insert_unchecked(&mut self, table: &Table, row: &Row) -> Result<RowId> {
        self.ensure_begun()?;
        self.insert_no_check(table, row)
    }

    fn insert_no_check(&mut self, table: &Table, row: &Row) -> Result<RowId> {
        let mut bytes = Vec::with_capacity(64);
        encode_row(row, &mut bytes);
        let (rid, op) = table.t.heap.insert(&bytes)?;
        self.log_heap(table, &op)?;
        self.ops.push(TxOp::Heap(table.t.meta.id, op));
        for e in table.t.indexes.read().iter() {
            let key = e.key(row, rid);
            e.tree.insert(&key, &rowid_bytes(rid))?;
            self.ops.push(TxOp::IndexInsert {
                tree: Arc::clone(&e.tree),
                key,
            });
        }
        Ok(rid)
    }

    /// [`Txn::insert_unchecked`] with the WAL record queued instead of
    /// appended. The heap and index writes happen immediately (the row is
    /// placed, visible, and abortable), but until [`Txn::flush_deferred`]
    /// runs the caller may rewrite same-size columns in place with
    /// [`Txn::patch_deferred`] — so bulk ingest can resolve forward
    /// pointers (sibling/child rowids) without a second heap update and
    /// WAL record per row. Returns the RowId and a token for patching.
    /// Commit flushes any remaining deferred records automatically.
    pub fn insert_unchecked_deferred(
        &mut self,
        table: &Table,
        row: &Row,
    ) -> Result<(RowId, usize)> {
        self.ensure_begun()?;
        let mut bytes = Vec::with_capacity(64);
        encode_row(row, &mut bytes);
        let (rid, op) = table.t.heap.insert(&bytes)?;
        let token = self.ops.len();
        self.deferred.push((token, table.t.heap.file_id()));
        self.ops.push(TxOp::Heap(table.t.meta.id, op));
        for e in table.t.indexes.read().iter() {
            let key = e.key(row, rid);
            e.tree.insert(&key, &rowid_bytes(rid))?;
            self.ops.push(TxOp::IndexInsert {
                tree: Arc::clone(&e.tree),
                key,
            });
        }
        Ok((rid, token))
    }

    /// Rewrites the full row of a pending deferred insert in place. The
    /// re-encoded row must be byte-for-byte the same length (pointer
    /// columns use the fixed-width `Value::Rowid` encoding precisely so
    /// this holds) and must not change any indexed column. Both the page
    /// cell and the queued WAL image are updated, so redo replays the
    /// final bytes.
    pub fn patch_deferred(&mut self, table: &Table, token: usize, row: &Row) -> Result<()> {
        if self.finished {
            return Err(StoreError::TxnFinished);
        }
        if self.deferred.binary_search_by_key(&token, |d| d.0).is_err() {
            return Err(StoreError::Invalid(
                "patch_deferred: token is not a pending deferred insert".into(),
            ));
        }
        let mut bytes = Vec::with_capacity(64);
        encode_row(row, &mut bytes);
        let TxOp::Heap(_, HeapOp::Insert { rid, cell }) = &mut self.ops[token] else {
            return Err(StoreError::Invalid(
                "patch_deferred: token does not name an insert".into(),
            ));
        };
        // The heap cell is a 1-byte kind prefix plus the tuple.
        if cell.len() != bytes.len() + 1 {
            return Err(StoreError::Invalid(format!(
                "patch_deferred: row size changed ({} -> {} bytes)",
                cell.len() - 1,
                bytes.len()
            )));
        }
        cell.truncate(1);
        cell.extend_from_slice(&bytes);
        table.t.heap.patch(*rid, cell)
    }

    /// Appends the WAL records for all pending deferred inserts, in insert
    /// order. After this the rows are no longer patchable.
    pub fn flush_deferred(&mut self) -> Result<()> {
        for (token, file) in std::mem::take(&mut self.deferred) {
            let TxOp::Heap(obj, op) = &self.ops[token] else {
                unreachable!("deferred token always names a heap op");
            };
            Self::log_heap_raw(self.db, self.tx, *obj, file, op)?;
        }
        Ok(())
    }

    /// Deletes the row at `rid` from `table`.
    pub fn delete(&mut self, table: &Table, rid: RowId) -> Result<()> {
        self.ensure_begun()?;
        let old_row = table.get(rid)?;
        for op in table.t.heap.delete(rid)? {
            self.log_heap(table, &op)?;
            self.ops.push(TxOp::Heap(table.t.meta.id, op));
        }
        for e in table.t.indexes.read().iter() {
            let key = e.key(&old_row, rid);
            e.tree.delete(&key)?;
            self.ops.push(TxOp::IndexDelete {
                tree: Arc::clone(&e.tree),
                key,
                val: rowid_bytes(rid).to_vec(),
            });
        }
        Ok(())
    }

    /// Replaces the row at `rid`; the RowId remains valid.
    pub fn update(&mut self, table: &Table, rid: RowId, row: &Row) -> Result<()> {
        self.ensure_begun()?;
        let old_row = table.get(rid)?;
        let mut bytes = Vec::with_capacity(64);
        encode_row(row, &mut bytes);
        for op in table.t.heap.update(rid, &bytes)? {
            self.log_heap(table, &op)?;
            self.ops.push(TxOp::Heap(table.t.meta.id, op));
        }
        for e in table.t.indexes.read().iter() {
            let old_key = e.key(&old_row, rid);
            let new_key = e.key(row, rid);
            if old_key != new_key {
                e.tree.delete(&old_key)?;
                self.ops.push(TxOp::IndexDelete {
                    tree: Arc::clone(&e.tree),
                    key: old_key,
                    val: rowid_bytes(rid).to_vec(),
                });
                e.tree.insert(&new_key, &rowid_bytes(rid))?;
                self.ops.push(TxOp::IndexInsert {
                    tree: Arc::clone(&e.tree),
                    key: new_key,
                });
            }
        }
        Ok(())
    }

    /// Replaces the row at `rid` when the caller knows exactly which column
    /// positions changed (e.g. pointer fix-ups during bulk ingest). Indexes
    /// whose keys involve none of the changed columns are untouched, and
    /// when no index is affected the old row is never fetched or decoded —
    /// the heap keeps its own undo copy. Falls back to [`Txn::update`] if
    /// any index key overlaps `changed`.
    pub fn update_columns(
        &mut self,
        table: &Table,
        rid: RowId,
        row: &Row,
        changed: &[usize],
    ) -> Result<()> {
        let affects_index = table
            .t
            .indexes
            .read()
            .iter()
            .any(|e| e.positions.iter().any(|p| changed.contains(p)));
        if affects_index {
            return self.update(table, rid, row);
        }
        self.ensure_begun()?;
        let mut bytes = Vec::with_capacity(64);
        encode_row(row, &mut bytes);
        for op in table.t.heap.update(rid, &bytes)? {
            self.log_heap(table, &op)?;
            self.ops.push(TxOp::Heap(table.t.meta.id, op));
        }
        Ok(())
    }

    /// The read view pinned when the transaction began: the state every
    /// reader saw before this transaction's writes.
    pub fn read_view(&self) -> &ReadView {
        self.view.as_ref().expect("view pinned until commit/abort")
    }

    /// Commits: appends and (optionally) fsyncs the commit record, then
    /// publishes the new MVCC snapshot at the commit LSN.
    pub fn commit(mut self) -> Result<()> {
        if self.finished {
            return Err(StoreError::TxnFinished);
        }
        self.flush_deferred()?;
        self.finished = true;
        // Release the pre-transaction pin before any checkpoint below —
        // our own stale view must not count against max_view_lag.
        self.view = None;
        if self.began {
            let mut wal = self.db.wal.lock();
            let commit_lsn = wal.append(&WalRecord::Commit { tx: self.tx })?;
            if self.db.opts.sync_commits {
                wal.sync_within(self.db.opts.group_commit_window)?;
            }
            let big = wal.size()? > self.db.opts.checkpoint_wal_bytes;
            drop(wal);
            // Readers switch to the new version the instant this returns.
            self.db.publish(commit_lsn);
            if big {
                // We already hold the write lock.
                self.db.checkpoint_locked()?;
            }
        }
        Ok(())
    }

    /// Rolls back every operation (in-memory; disk never saw them).
    pub fn abort(mut self) -> Result<()> {
        self.abort_inner()
    }

    fn abort_inner(&mut self) -> Result<()> {
        if self.finished {
            return Ok(());
        }
        self.finished = true;
        // Unpin the read view first: the drop-abort path must release it
        // just like an explicit abort does.
        self.view = None;
        for op in self.ops.drain(..).rev() {
            match op {
                TxOp::Heap(obj, hop) => {
                    let name = self
                        .db
                        .catalog
                        .read()
                        .table_by_id(obj)
                        .map(|t| t.name.clone());
                    if let Some(t) = name.and_then(|n| self.db.tables.read().get(&n).cloned()) {
                        t.heap.undo(&hop)?;
                    }
                }
                TxOp::IndexInsert { tree, key } => {
                    tree.delete(&key)?;
                }
                TxOp::IndexDelete { tree, key, val } => {
                    tree.insert(&key, &val)?;
                }
            }
        }
        if self.began {
            self.db
                .wal
                .lock()
                .append(&WalRecord::Abort { tx: self.tx })?;
        }
        Ok(())
    }
}

impl Drop for Txn<'_> {
    fn drop(&mut self) {
        let _ = self.abort_inner();
    }
}

impl Table {
    /// Table name.
    pub fn name(&self) -> &str {
        &self.t.meta.name
    }

    /// Declared schema.
    pub fn schema(&self) -> &Schema {
        &self.t.meta.schema
    }

    /// Auto-commit insert.
    pub fn insert(&self, row: &Row) -> Result<RowId> {
        let db = Database {
            inner: Arc::clone(&self.db),
        };
        let mut tx = db.begin();
        let rid = tx.insert(self, row)?;
        tx.commit()?;
        Ok(rid)
    }

    /// Auto-commit delete.
    pub fn delete(&self, rid: RowId) -> Result<()> {
        let db = Database {
            inner: Arc::clone(&self.db),
        };
        let mut tx = db.begin();
        tx.delete(self, rid)?;
        tx.commit()
    }

    /// Auto-commit update.
    pub fn update(&self, rid: RowId, row: &Row) -> Result<()> {
        let db = Database {
            inner: Arc::clone(&self.db),
        };
        let mut tx = db.begin();
        tx.update(self, rid, row)?;
        tx.commit()
    }

    /// Fetches the row at `rid`.
    pub fn get(&self, rid: RowId) -> Result<Row> {
        decode_row(&self.t.heap.get(rid)?)
    }

    /// True if `rid` is live.
    pub fn exists(&self, rid: RowId) -> bool {
        self.t.heap.exists(rid)
    }

    /// Full scan.
    pub fn scan(&self) -> Result<Vec<(RowId, Row)>> {
        self.t
            .heap
            .scan()?
            .into_iter()
            .map(|(rid, b)| Ok((rid, decode_row(&b)?)))
            .collect()
    }

    /// Number of live rows (scans).
    pub fn count(&self) -> Result<usize> {
        Ok(self.t.heap.scan()?.len())
    }

    /// Number of heap pages.
    pub fn page_count(&self) -> u32 {
        self.t.heap.page_count()
    }

    fn find_index(&self, name: &str) -> Result<(IndexMeta, Arc<BTree>)> {
        self.t
            .indexes
            .read()
            .iter()
            .find(|e| e.meta.name == name)
            .map(|e| (e.meta.clone(), Arc::clone(&e.tree)))
            .ok_or_else(|| StoreError::NoSuchObject(name.to_string()))
    }

    /// Exact-match index lookup: RowIds of rows whose key columns equal
    /// `key` (all rows for non-unique indexes).
    pub fn index_lookup(&self, index: &str, key: &[Value]) -> Result<Vec<RowId>> {
        let (meta, tree) = self.find_index(index)?;
        if key.len() != meta.key_columns.len() {
            return Err(StoreError::Invalid(format!(
                "index {index} expects {} key values, got {}",
                meta.key_columns.len(),
                key.len()
            )));
        }
        if meta.unique {
            let k = keyenc::encode_key(key);
            return Ok(match tree.get(&k)? {
                Some(v) => vec![rowid_from_bytes(&v)?],
                None => vec![],
            });
        }
        let (lo, hi) = keyenc::prefix_range(key);
        tree.range(&lo, &hi)?
            .into_iter()
            .map(|(_, v)| rowid_from_bytes(&v))
            .collect()
    }

    /// Prefix index scan: RowIds of rows whose leading key columns equal
    /// `prefix`.
    pub fn index_prefix(&self, index: &str, prefix: &[Value]) -> Result<Vec<RowId>> {
        let (_, tree) = self.find_index(index)?;
        let (lo, hi) = keyenc::prefix_range(prefix);
        tree.range(&lo, &hi)?
            .into_iter()
            .map(|(_, v)| rowid_from_bytes(&v))
            .collect()
    }

    /// Ordered range scan over the index: rows with `lo <= key < hi`.
    pub fn index_range(&self, index: &str, lo: &[Value], hi: &[Value]) -> Result<Vec<RowId>> {
        let (_, tree) = self.find_index(index)?;
        let lo = keyenc::encode_key(lo);
        let (_, hi) = keyenc::prefix_range(hi);
        tree.range(&lo, &hi)?
            .into_iter()
            .map(|(_, v)| rowid_from_bytes(&v))
            .collect()
    }
}

/// Shared state of one pinned read view; unregisters from the database's
/// view registry when the last clone drops.
struct ViewCore {
    db: Arc<DbInner>,
    id: u64,
    src: PageSource,
}

impl Drop for ViewCore {
    fn drop(&mut self) {
        self.db.views.lock().retain(|v| v.id != self.id);
    }
}

/// A pinned point-in-time view of the database: repeatable reads with no
/// page locks, fully isolated from the single writer. Clones share the
/// pin; the view unpins when the last clone drops. Obtain tables with
/// [`ReadView::table`].
#[derive(Clone)]
pub struct ReadView {
    core: Arc<ViewCore>,
}

impl ReadView {
    /// The commit LSN this view is pinned at (0 = freshly opened store).
    pub fn version(&self) -> u64 {
        self.core.src.snap.version
    }

    /// True once a checkpoint has reclaimed disk images this view depended
    /// on (it exceeded [`DbOptions::max_view_lag`]). Reads that hit the
    /// view's overlay still succeed; others return
    /// [`StoreError::ViewEvicted`].
    pub fn is_evicted(&self) -> bool {
        self.core.src.evicted.load(Ordering::SeqCst)
    }

    /// Read-only access to `name` as of this view's version.
    pub fn table(&self, name: &str) -> Result<ViewTable> {
        let db = Database {
            inner: Arc::clone(&self.core.db),
        };
        let t = db.open_table(name)?;
        let indexes = t
            .indexes
            .read()
            .iter()
            .map(|e| (e.meta.clone(), e.tree.file_id()))
            .collect();
        Ok(ViewTable {
            core: Arc::clone(&self.core),
            meta: t.meta.clone(),
            heap_file: t.heap.file_id(),
            indexes,
        })
    }
}

impl std::fmt::Debug for ReadView {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReadView")
            .field("version", &self.version())
            .field("evicted", &self.is_evicted())
            .finish()
    }
}

/// Read-only table access through a [`ReadView`]: the same read API as
/// [`Table`], evaluated against the view's pinned snapshot. Never takes a
/// page lock and never observes writes committed after the view began.
#[derive(Clone)]
pub struct ViewTable {
    core: Arc<ViewCore>,
    meta: TableMeta,
    heap_file: FileId,
    /// Indexes known at view-table creation; ones whose file postdates the
    /// snapshot (no pages yet) are treated as absent.
    indexes: Vec<(IndexMeta, FileId)>,
}

impl ViewTable {
    /// Table name.
    pub fn name(&self) -> &str {
        &self.meta.name
    }

    /// Declared schema.
    pub fn schema(&self) -> &Schema {
        &self.meta.schema
    }

    fn heap(&self) -> HeapReader<'_> {
        HeapReader {
            src: &self.core.src,
            file: self.heap_file,
        }
    }

    /// Fetches the row at `rid` as of the view.
    pub fn get(&self, rid: RowId) -> Result<Row> {
        decode_row(&self.heap().get(rid)?)
    }

    /// True if `rid` was live at the view's version.
    pub fn exists(&self, rid: RowId) -> Result<bool> {
        self.heap().exists(rid)
    }

    /// Full scan as of the view.
    pub fn scan(&self) -> Result<Vec<(RowId, Row)>> {
        self.heap()
            .scan()?
            .into_iter()
            .map(|(rid, b)| Ok((rid, decode_row(&b)?)))
            .collect()
    }

    /// Number of rows live at the view's version (scans).
    pub fn count(&self) -> Result<usize> {
        Ok(self.heap().scan()?.len())
    }

    /// Number of heap pages at the view's version.
    pub fn page_count(&self) -> u32 {
        self.heap().page_count()
    }

    fn find_index(&self, name: &str) -> Result<(&IndexMeta, BTreeReader<'_>)> {
        let (meta, file) = self
            .indexes
            .iter()
            .find(|(m, _)| m.name == name)
            .map(|(m, f)| (m, *f))
            .ok_or_else(|| StoreError::NoSuchObject(name.to_string()))?;
        // An index created after this view's snapshot has no pages in it;
        // report it absent rather than reading unformatted pages.
        if self.core.src.page_count(file) < 2 {
            return Err(StoreError::NoSuchObject(name.to_string()));
        }
        Ok((
            meta,
            BTreeReader {
                src: &self.core.src,
                file,
            },
        ))
    }

    /// Exact-match index lookup as of the view (see [`Table::index_lookup`]).
    pub fn index_lookup(&self, index: &str, key: &[Value]) -> Result<Vec<RowId>> {
        let (meta, tree) = self.find_index(index)?;
        if key.len() != meta.key_columns.len() {
            return Err(StoreError::Invalid(format!(
                "index {index} expects {} key values, got {}",
                meta.key_columns.len(),
                key.len()
            )));
        }
        if meta.unique {
            let k = keyenc::encode_key(key);
            return Ok(match tree.get(&k)? {
                Some(v) => vec![rowid_from_bytes(&v)?],
                None => vec![],
            });
        }
        let (lo, hi) = keyenc::prefix_range(key);
        tree.range(&lo, &hi)?
            .into_iter()
            .map(|(_, v)| rowid_from_bytes(&v))
            .collect()
    }

    /// Prefix index scan as of the view (see [`Table::index_prefix`]).
    pub fn index_prefix(&self, index: &str, prefix: &[Value]) -> Result<Vec<RowId>> {
        let (_, tree) = self.find_index(index)?;
        let (lo, hi) = keyenc::prefix_range(prefix);
        tree.range(&lo, &hi)?
            .into_iter()
            .map(|(_, v)| rowid_from_bytes(&v))
            .collect()
    }

    /// Ordered index range scan as of the view (see [`Table::index_range`]).
    pub fn index_range(&self, index: &str, lo: &[Value], hi: &[Value]) -> Result<Vec<RowId>> {
        let (_, tree) = self.find_index(index)?;
        let lo = keyenc::encode_key(lo);
        let (_, hi) = keyenc::prefix_range(hi);
        tree.range(&lo, &hi)?
            .into_iter()
            .map(|(_, v)| rowid_from_bytes(&v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::ColumnType;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("netmark-db-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn people_schema() -> Schema {
        Schema::new(&[
            ("id", ColumnType::Int),
            ("name", ColumnType::Text),
            ("score", ColumnType::Float),
        ])
    }

    #[test]
    fn create_insert_get() {
        let dir = tmpdir("basic");
        let db = Database::open(&dir).unwrap();
        let t = db.create_table("people", people_schema()).unwrap();
        let rid = t
            .insert(&vec![Value::Int(1), Value::from("ada"), Value::Float(9.5)])
            .unwrap();
        let row = t.get(rid).unwrap();
        assert_eq!(row[1], Value::from("ada"));
        assert_eq!(t.count().unwrap(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn duplicate_table_rejected() {
        let dir = tmpdir("dup");
        let db = Database::open(&dir).unwrap();
        db.create_table("t", people_schema()).unwrap();
        assert!(matches!(
            db.create_table("t", people_schema()),
            Err(StoreError::AlreadyExists(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn index_lookup_unique_and_multi() {
        let dir = tmpdir("idx");
        let db = Database::open(&dir).unwrap();
        let t = db.create_table("people", people_schema()).unwrap();
        db.create_index("people", "by_id", &["id"], true).unwrap();
        db.create_index("people", "by_name", &["name"], false)
            .unwrap();
        for i in 0..50i64 {
            t.insert(&vec![
                Value::Int(i),
                Value::from(if i % 2 == 0 { "even" } else { "odd" }),
                Value::Float(i as f64),
            ])
            .unwrap();
        }
        let hit = t.index_lookup("by_id", &[Value::Int(7)]).unwrap();
        assert_eq!(hit.len(), 1);
        assert_eq!(t.get(hit[0]).unwrap()[0], Value::Int(7));
        let evens = t.index_lookup("by_name", &[Value::from("even")]).unwrap();
        assert_eq!(evens.len(), 25);
        // Unique violation.
        assert!(t
            .insert(&vec![Value::Int(7), Value::from("x"), Value::Null])
            .is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn index_backfill_on_create() {
        let dir = tmpdir("backfill");
        let db = Database::open(&dir).unwrap();
        let t = db.create_table("people", people_schema()).unwrap();
        for i in 0..20i64 {
            t.insert(&vec![Value::Int(i), Value::from("n"), Value::Null])
                .unwrap();
        }
        db.create_index("people", "by_id", &["id"], true).unwrap();
        assert_eq!(t.index_lookup("by_id", &[Value::Int(19)]).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn delete_and_update_maintain_indexes() {
        let dir = tmpdir("maint");
        let db = Database::open(&dir).unwrap();
        let t = db.create_table("people", people_schema()).unwrap();
        db.create_index("people", "by_name", &["name"], false)
            .unwrap();
        let rid = t
            .insert(&vec![Value::Int(1), Value::from("old"), Value::Null])
            .unwrap();
        t.update(rid, &vec![Value::Int(1), Value::from("new"), Value::Null])
            .unwrap();
        assert!(t
            .index_lookup("by_name", &[Value::from("old")])
            .unwrap()
            .is_empty());
        assert_eq!(
            t.index_lookup("by_name", &[Value::from("new")]).unwrap(),
            vec![rid]
        );
        t.delete(rid).unwrap();
        assert!(t
            .index_lookup("by_name", &[Value::from("new")])
            .unwrap()
            .is_empty());
        assert!(!t.exists(rid));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn abort_rolls_back_heap_and_indexes() {
        let dir = tmpdir("abort");
        let db = Database::open(&dir).unwrap();
        let t = db.create_table("people", people_schema()).unwrap();
        db.create_index("people", "by_id", &["id"], true).unwrap();
        let keep = t
            .insert(&vec![Value::Int(1), Value::from("keep"), Value::Null])
            .unwrap();
        {
            let mut tx = db.begin();
            tx.insert(&t, &vec![Value::Int(2), Value::from("bye"), Value::Null])
                .unwrap();
            tx.delete(&t, keep).unwrap();
            tx.abort().unwrap();
        }
        assert_eq!(t.count().unwrap(), 1);
        assert_eq!(t.get(keep).unwrap()[1], Value::from("keep"));
        assert_eq!(
            t.index_lookup("by_id", &[Value::Int(1)]).unwrap(),
            vec![keep]
        );
        assert!(t
            .index_lookup("by_id", &[Value::Int(2)])
            .unwrap()
            .is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn drop_without_commit_aborts() {
        let dir = tmpdir("dropabort");
        let db = Database::open(&dir).unwrap();
        let t = db.create_table("t", people_schema()).unwrap();
        {
            let mut tx = db.begin();
            tx.insert(&t, &vec![Value::Int(1), Value::Null, Value::Null])
                .unwrap();
            // dropped here
        }
        assert_eq!(t.count().unwrap(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_after_clean_shutdown() {
        let dir = tmpdir("clean");
        {
            let db = Database::open(&dir).unwrap();
            let t = db.create_table("people", people_schema()).unwrap();
            db.create_index("people", "by_id", &["id"], true).unwrap();
            for i in 0..100i64 {
                t.insert(&vec![Value::Int(i), Value::from("p"), Value::Null])
                    .unwrap();
            }
            db.checkpoint().unwrap();
        }
        let db = Database::open(&dir).unwrap();
        let t = db.table("people").unwrap();
        assert_eq!(t.count().unwrap(), 100);
        assert_eq!(t.index_lookup("by_id", &[Value::Int(42)]).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_replays_committed_only() {
        let dir = tmpdir("recover");
        {
            let db = Database::open(&dir).unwrap();
            let t = db.create_table("people", people_schema()).unwrap();
            db.create_index("people", "by_id", &["id"], true).unwrap();
            for i in 0..50i64 {
                t.insert(&vec![Value::Int(i), Value::from("p"), Value::Null])
                    .unwrap();
            }
            // Simulate a crash: the WAL is synced (commits), data pages are
            // NOT checkpointed, and the process "dies" (drop without
            // checkpoint).
        }
        let db = Database::open(&dir).unwrap();
        let t = db.table("people").unwrap();
        assert_eq!(t.count().unwrap(), 50, "committed rows survive the crash");
        // Indexes were rebuilt.
        assert_eq!(t.index_lookup("by_id", &[Value::Int(25)]).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_ignores_uncommitted() {
        let dir = tmpdir("uncommitted");
        {
            let db = Database::open(&dir).unwrap();
            let t = db.create_table("people", people_schema()).unwrap();
            t.insert(&vec![Value::Int(1), Value::from("committed"), Value::Null])
                .unwrap();
            let mut tx = db.begin();
            tx.insert(&t, &vec![Value::Int(2), Value::from("dirty"), Value::Null])
                .unwrap();
            // Force the WAL to disk so the uncommitted op is present in the
            // log, then leak the txn (no commit record).
            db.inner.wal.lock().sync().unwrap();
            std::mem::forget(tx);
        }
        let db = Database::open(&dir).unwrap();
        let t = db.table("people").unwrap();
        let rows = t.scan().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].1[1], Value::from("committed"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn explicit_txn_multi_op_commit() {
        let dir = tmpdir("multi");
        let db = Database::open(&dir).unwrap();
        let t = db.create_table("t", people_schema()).unwrap();
        let mut tx = db.begin();
        let a = tx
            .insert(&t, &vec![Value::Int(1), Value::from("a"), Value::Null])
            .unwrap();
        let b = tx
            .insert(&t, &vec![Value::Int(2), Value::from("b"), Value::Null])
            .unwrap();
        tx.update(&t, a, &vec![Value::Int(1), Value::from("a2"), Value::Null])
            .unwrap();
        tx.delete(&t, b).unwrap();
        tx.commit().unwrap();
        let rows = t.scan().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].1[1], Value::from("a2"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
