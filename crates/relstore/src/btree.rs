//! Paged B+ tree over byte-string keys.
//!
//! Index files hold one tree each. Page 0 is a meta page whose `aux` field
//! stores the root page number. Leaves chain through their `aux` field
//! (0 = end of chain; page 0 is always the meta page, never a leaf).
//! Internal pages store their leftmost child in `aux` and cells of
//! `(separator key, right child)` pairs; a separator `s` divides keys
//! `< s` (left) from keys `>= s` (right).
//!
//! Modifications rewrite whole pages (read-modify-write over the slotted
//! layout); with ≤ a few hundred cells per page this is simple and fast
//! enough, and it keeps cells physically sorted so lookups binary-search.
//!
//! Deletion is lazy: cells are removed but pages never merge. Indexes are
//! secondary structures here — they are *not* WAL-logged and are rebuilt
//! from the owning heap after a crash (see [`crate::db`]).

use crate::buffer::BufferPool;
use crate::disk::FileId;
use crate::error::{Result, StoreError};
use crate::page::{PageType, SlottedPage, SlottedPageRef, PAGE_SIZE};
use crate::tuple::{read_varint, write_varint};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Largest key+value a single cell may hold; beyond this the page math
/// cannot guarantee a split produces fitting halves.
pub const MAX_ENTRY: usize = 2000;

/// Page number of the meta page (its `aux` holds the root page number).
pub(crate) const META_PAGE: u32 = 0;

fn leaf_cell(key: &[u8], val: &[u8]) -> Vec<u8> {
    let mut c = Vec::with_capacity(key.len() + val.len() + 6);
    write_varint(&mut c, key.len() as u64);
    c.extend_from_slice(key);
    write_varint(&mut c, val.len() as u64);
    c.extend_from_slice(val);
    c
}

/// Key bytes of a leaf cell, borrowed in place (no copy).
pub(crate) fn leaf_cell_key(cell: &[u8]) -> Result<&[u8]> {
    let mut pos = 0usize;
    let klen = read_varint(cell, &mut pos)? as usize;
    let kend = pos + klen;
    if kend > cell.len() {
        return Err(StoreError::Corrupt("leaf cell key truncated".into()));
    }
    Ok(&cell[pos..kend])
}

pub(crate) fn parse_leaf_cell(cell: &[u8]) -> Result<(Vec<u8>, Vec<u8>)> {
    let mut pos = 0usize;
    let klen = read_varint(cell, &mut pos)? as usize;
    let kend = pos + klen;
    if kend > cell.len() {
        return Err(StoreError::Corrupt("leaf cell key truncated".into()));
    }
    let key = cell[pos..kend].to_vec();
    pos = kend;
    let vlen = read_varint(cell, &mut pos)? as usize;
    let vend = pos + vlen;
    if vend > cell.len() {
        return Err(StoreError::Corrupt("leaf cell value truncated".into()));
    }
    Ok((key, cell[pos..vend].to_vec()))
}

fn internal_cell(key: &[u8], child: u32) -> Vec<u8> {
    let mut c = Vec::with_capacity(key.len() + 8);
    write_varint(&mut c, key.len() as u64);
    c.extend_from_slice(key);
    c.extend_from_slice(&child.to_le_bytes());
    c
}

/// Borrowed view of an internal cell: `(key, child)` without copying
/// the key out. Used on comparison-heavy descent paths.
pub(crate) fn internal_cell_ref(cell: &[u8]) -> Result<(&[u8], u32)> {
    let mut pos = 0usize;
    let klen = read_varint(cell, &mut pos)? as usize;
    let kend = pos + klen;
    if kend + 4 > cell.len() {
        return Err(StoreError::Corrupt("internal cell truncated".into()));
    }
    let child = u32::from_le_bytes(cell[kend..kend + 4].try_into().unwrap());
    Ok((&cell[pos..kend], child))
}

fn parse_internal_cell(cell: &[u8]) -> Result<(Vec<u8>, u32)> {
    let mut pos = 0usize;
    let klen = read_varint(cell, &mut pos)? as usize;
    let kend = pos + klen;
    if kend + 4 > cell.len() {
        return Err(StoreError::Corrupt("internal cell truncated".into()));
    }
    let key = cell[pos..kend].to_vec();
    let child = u32::from_le_bytes(cell[kend..kend + 4].try_into().unwrap());
    Ok((key, child))
}

/// Bytes the slotted layout charges for `cells`.
fn cells_size(cells: &[Vec<u8>]) -> usize {
    20 + cells.iter().map(|c| c.len() + 4).sum::<usize>()
}

/// A B+ tree over one index file.
pub struct BTree {
    pool: Arc<BufferPool>,
    file: FileId,
    /// Cached root page number (`u32::MAX` = not yet read from the meta
    /// page). The tree is the only writer of its meta page, so the cache
    /// is kept coherent by [`BTree::set_root`].
    root_cache: AtomicU32,
    /// Append hint: the rightmost leaf, if the last insert landed there
    /// (`u32::MAX` = none). Monotonic keys (ROWID- and ID-ordered indexes)
    /// then skip the descent entirely. Any split clears it.
    append_hint: AtomicU32,
}

impl BTree {
    /// Opens (initializing if empty) the tree in `file`.
    pub fn open(pool: Arc<BufferPool>, file: FileId) -> Result<BTree> {
        let t = BTree {
            pool,
            file,
            root_cache: AtomicU32::new(u32::MAX),
            append_hint: AtomicU32::new(u32::MAX),
        };
        if t.pool.file_manager().page_count(file) == 0 {
            // Meta page + empty root leaf.
            let (meta_no, meta) = t.pool.allocate(file)?;
            debug_assert_eq!(meta_no, META_PAGE);
            let (root_no, root) = t.pool.allocate(file)?;
            {
                let mut data = root.write();
                SlottedPage::init(&mut data, PageType::BtreeLeaf);
            }
            let mut data = meta.write();
            let mut sp = SlottedPage::init(&mut data, PageType::Meta);
            sp.set_aux(root_no);
        }
        Ok(t)
    }

    /// The underlying file id.
    pub fn file_id(&self) -> FileId {
        self.file
    }

    fn root(&self) -> Result<u32> {
        let cached = self.root_cache.load(Ordering::Relaxed);
        if cached != u32::MAX {
            return Ok(cached);
        }
        let g = self.pool.fetch(self.file, META_PAGE)?;
        let data = g.read();
        let root = SlottedPageRef::new(&data).aux();
        self.root_cache.store(root, Ordering::Relaxed);
        Ok(root)
    }

    fn set_root(&self, root: u32) -> Result<()> {
        let g = self.pool.fetch(self.file, META_PAGE)?;
        let mut data = g.write();
        SlottedPage::new(&mut data).set_aux(root);
        self.root_cache.store(root, Ordering::Relaxed);
        Ok(())
    }

    fn load(&self, page: u32) -> Result<(PageType, u32, Vec<Vec<u8>>)> {
        let g = self.pool.fetch(self.file, page)?;
        let data = g.read();
        let sp = SlottedPageRef::new(&data);
        let cells = sp.iter_live().map(|(_, c)| c.to_vec()).collect();
        Ok((sp.page_type(), sp.aux(), cells))
    }

    fn store(&self, page: u32, ptype: PageType, aux: u32, cells: &[Vec<u8>]) -> Result<()> {
        debug_assert!(cells_size(cells) <= PAGE_SIZE, "page overflow at store");
        let g = self.pool.fetch(self.file, page)?;
        let mut data = g.write();
        let mut sp = SlottedPage::init(&mut data, ptype);
        sp.set_aux(aux);
        sp.insert_bulk(cells);
        Ok(())
    }

    fn new_page(&self) -> Result<u32> {
        let (no, g) = self.pool.allocate(self.file)?;
        let mut data = g.write();
        SlottedPage::init(&mut data, PageType::BtreeLeaf);
        Ok(no)
    }

    /// Inserts (or replaces) `key → val`.
    pub fn insert(&self, key: &[u8], val: &[u8]) -> Result<()> {
        if key.len() + val.len() > MAX_ENTRY {
            return Err(StoreError::TupleTooLarge {
                size: key.len() + val.len(),
                max: MAX_ENTRY,
            });
        }
        // Append fast path: if the last insert landed on the rightmost
        // leaf and this key sorts at or after its first key, the key
        // belongs there too — one page fetch, no descent.
        let hint = self.append_hint.load(Ordering::Relaxed);
        if hint != u32::MAX {
            match self.try_hint_insert(hint, key, val)? {
                Some(true) => return Ok(()),
                Some(false) => {} // leaf full: fall through and split
                None => {}        // key not covered by the hint leaf
            }
        }
        // Fast path: descend without materializing pages and splice the
        // cell into the leaf in place. Only a full leaf (split required)
        // falls through to the rewrite path below.
        let (leaf, rightmost) = self.find_leaf_for_insert(key)?;
        if self.try_leaf_insert(leaf, key, val)? {
            if rightmost {
                self.append_hint.store(leaf, Ordering::Relaxed);
            }
            return Ok(());
        }
        // Split required: the hint leaf may stop being rightmost.
        self.append_hint.store(u32::MAX, Ordering::Relaxed);
        let root = self.root()?;
        if let Some((sep, right)) = self.insert_rec(root, key, val)? {
            // Root split: create a new internal root.
            let new_root = self.new_page()?;
            self.store(
                new_root,
                PageType::BtreeInternal,
                root,
                &[internal_cell(&sep, right)],
            )?;
            self.set_root(new_root)?;
        }
        Ok(())
    }

    /// In-place leaf insert: binary-searches the slot directory directly
    /// (cells are kept in sorted slot order) and shifts the directory to
    /// splice the new cell in, touching none of the other cells. Returns
    /// `false` when the leaf has no room.
    fn try_leaf_insert(&self, leaf: u32, key: &[u8], val: &[u8]) -> Result<bool> {
        let g = self.pool.fetch(self.file, leaf)?;
        self.leaf_insert_in(&g, key, val)
    }

    /// Probes the append-hint leaf. `None`: the key does not provably
    /// belong to this leaf (caller descends). `Some(done)`: the key
    /// belongs here; `done` is false when the leaf is full (caller splits).
    fn try_hint_insert(&self, leaf: u32, key: &[u8], val: &[u8]) -> Result<Option<bool>> {
        let g = self.pool.fetch(self.file, leaf)?;
        {
            let data = g.read();
            let sp = SlottedPageRef::new(&data);
            if sp.page_type() != PageType::BtreeLeaf || sp.slot_count() == 0 {
                return Ok(None);
            }
            let first = sp
                .get(0)
                .ok_or_else(|| StoreError::Corrupt("btree slot gap".into()))?;
            // The hint leaf is rightmost, so covering the lower bound is
            // enough to place the key here.
            if leaf_cell_key(first)? > key {
                return Ok(None);
            }
        }
        self.leaf_insert_in(&g, key, val).map(Some)
    }

    fn leaf_insert_in(&self, g: &crate::buffer::PageGuard, key: &[u8], val: &[u8]) -> Result<bool> {
        let mut data = g.write();
        let mut sp = SlottedPage::new(&mut data);
        let n = sp.slot_count();
        let (mut lo, mut hi) = (0u16, n);
        let mut existing = None;
        while lo < hi {
            let mid = (lo + hi) / 2;
            let cell = sp
                .get(mid)
                .ok_or_else(|| StoreError::Corrupt("btree slot gap".into()))?;
            match leaf_cell_key(cell)?.cmp(key) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => {
                    existing = Some(mid);
                    break;
                }
            }
        }
        let cell = leaf_cell(key, val);
        Ok(match existing {
            Some(slot) => sp.update(slot, &cell),
            None => sp.insert_sorted(lo, &cell),
        })
    }

    fn insert_rec(&self, page: u32, key: &[u8], val: &[u8]) -> Result<Option<(Vec<u8>, u32)>> {
        let (ptype, aux, mut cells) = self.load(page)?;
        match ptype {
            PageType::BtreeLeaf => {
                // Cells are sorted by key; binary search for position.
                let pos = cells.binary_search_by(|c| {
                    let (k, _) = parse_leaf_cell(c).expect("cell parses");
                    k.as_slice().cmp(key)
                });
                let new_cell = leaf_cell(key, val);
                match pos {
                    Ok(i) => cells[i] = new_cell,
                    Err(i) => cells.insert(i, new_cell),
                }
                if cells_size(&cells) <= PAGE_SIZE {
                    self.store(page, PageType::BtreeLeaf, aux, &cells)?;
                    return Ok(None);
                }
                // Split at the byte midpoint.
                let split = split_point(&cells);
                let right_cells: Vec<Vec<u8>> = cells.split_off(split);
                let right_page = self.new_page()?;
                let (sep, _) = parse_leaf_cell(&right_cells[0])?;
                self.store(right_page, PageType::BtreeLeaf, aux, &right_cells)?;
                self.store(page, PageType::BtreeLeaf, right_page, &cells)?;
                Ok(Some((sep, right_page)))
            }
            PageType::BtreeInternal => {
                let (idx, child) = self.descend(&cells, aux, key)?;
                let split = self.insert_rec(child, key, val)?;
                let Some((sep, right)) = split else {
                    return Ok(None);
                };
                // Insert the new separator just after the descended slot.
                let at = match idx {
                    None => 0,
                    Some(i) => i + 1,
                };
                cells.insert(at, internal_cell(&sep, right));
                if cells_size(&cells) <= PAGE_SIZE {
                    self.store(page, PageType::BtreeInternal, aux, &cells)?;
                    return Ok(None);
                }
                let mid = split_point(&cells).clamp(1, cells.len() - 1);
                let mut right_cells = cells.split_off(mid);
                let (promote, right_leftmost) = parse_internal_cell(&right_cells[0])?;
                right_cells.remove(0);
                let right_page = self.new_page()?;
                self.store(
                    right_page,
                    PageType::BtreeInternal,
                    right_leftmost,
                    &right_cells,
                )?;
                self.store(page, PageType::BtreeInternal, aux, &cells)?;
                Ok(Some((promote, right_page)))
            }
            t => Err(StoreError::Corrupt(format!(
                "unexpected page type {t:?} in btree descent"
            ))),
        }
    }

    /// Picks the child for `key`: returns `(separator index descended
    /// through, child page)`, where index `None` means the leftmost child.
    fn descend(
        &self,
        cells: &[Vec<u8>],
        leftmost: u32,
        key: &[u8],
    ) -> Result<(Option<usize>, u32)> {
        let mut lo = 0usize;
        let mut hi = cells.len();
        // Find the last separator <= key.
        while lo < hi {
            let mid = (lo + hi) / 2;
            let (sep, _) = internal_cell_ref(&cells[mid])?;
            if sep <= key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if lo == 0 {
            Ok((None, leftmost))
        } else {
            let (_, child) = internal_cell_ref(&cells[lo - 1])?;
            Ok((Some(lo - 1), child))
        }
    }

    /// Descends without materializing cells: B-tree pages always pass
    /// through [`BTree::store`], which writes cells in sorted slot order,
    /// so slots can be binary-searched in place.
    fn find_leaf(&self, key: &[u8]) -> Result<u32> {
        Ok(self.find_leaf_for_insert(key)?.0)
    }

    /// Like [`BTree::find_leaf`], but also reports whether the leaf is the
    /// rightmost one (the descent took the last child at every level) —
    /// the condition for installing the append hint.
    fn find_leaf_for_insert(&self, key: &[u8]) -> Result<(u32, bool)> {
        let mut page = self.root()?;
        let mut rightmost = true;
        loop {
            let g = self.pool.fetch(self.file, page)?;
            let data = g.read();
            let sp = SlottedPageRef::new(&data);
            match sp.page_type() {
                PageType::BtreeLeaf => return Ok((page, rightmost)),
                PageType::BtreeInternal => {
                    // Last separator <= key, else the leftmost child.
                    let n = sp.slot_count();
                    let (mut lo, mut hi) = (0u16, n);
                    while lo < hi {
                        let mid = (lo + hi) / 2;
                        let cell = sp
                            .get(mid)
                            .ok_or_else(|| StoreError::Corrupt("btree slot gap".into()))?;
                        let (k, _) = internal_cell_ref(cell)?;
                        if k <= key {
                            lo = mid + 1;
                        } else {
                            hi = mid;
                        }
                    }
                    if n > 0 && lo != n {
                        rightmost = false;
                    }
                    let next = if lo == 0 {
                        sp.aux()
                    } else {
                        let cell = sp
                            .get(lo - 1)
                            .ok_or_else(|| StoreError::Corrupt("btree slot gap".into()))?;
                        internal_cell_ref(cell)?.1
                    };
                    drop(data);
                    page = next;
                }
                t => {
                    return Err(StoreError::Corrupt(format!(
                        "unexpected page type {t:?} in btree descent"
                    )))
                }
            }
        }
    }

    /// Point lookup (in-place binary search; no page materialization).
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let leaf = self.find_leaf(key)?;
        let g = self.pool.fetch(self.file, leaf)?;
        let data = g.read();
        let sp = SlottedPageRef::new(&data);
        let n = sp.slot_count();
        let (mut lo, mut hi) = (0u16, n);
        while lo < hi {
            let mid = (lo + hi) / 2;
            let cell = sp
                .get(mid)
                .ok_or_else(|| StoreError::Corrupt("btree slot gap".into()))?;
            let (k, v) = parse_leaf_cell(cell)?;
            match k.as_slice().cmp(key) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Ok(Some(v)),
            }
        }
        Ok(None)
    }

    /// Removes `key`. Returns whether it was present.
    pub fn delete(&self, key: &[u8]) -> Result<bool> {
        let leaf = self.find_leaf(key)?;
        let (_, aux, mut cells) = self.load(leaf)?;
        let before = cells.len();
        cells.retain(|c| {
            parse_leaf_cell(c)
                .map(|(k, _)| k.as_slice() != key)
                .unwrap_or(true)
        });
        if cells.len() == before {
            return Ok(false);
        }
        self.store(leaf, PageType::BtreeLeaf, aux, &cells)?;
        Ok(true)
    }

    /// Range scan over `lo <= key < hi`, yielding `(key, value)` pairs in
    /// key order.
    pub fn range(&self, lo: &[u8], hi: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut out = Vec::new();
        let mut page = self.find_leaf(lo)?;
        loop {
            let (_, next, cells) = self.load(page)?;
            for c in &cells {
                let (k, v) = parse_leaf_cell(c)?;
                if k.as_slice() >= hi {
                    return Ok(out);
                }
                if k.as_slice() >= lo {
                    out.push((k, v));
                }
            }
            if next == 0 {
                return Ok(out);
            }
            page = next;
        }
    }

    /// Iterates the whole tree in key order.
    pub fn scan_all(&self) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        self.range(&[], &[0xFFu8; MAX_ENTRY / 64])
    }

    /// Number of entries (walks the leaf chain).
    pub fn len(&self) -> Result<usize> {
        // Find the leftmost leaf then follow the chain.
        let mut page = self.find_leaf(&[])?;
        let mut n = 0usize;
        loop {
            let (_, next, cells) = self.load(page)?;
            n += cells.len();
            if next == 0 {
                return Ok(n);
            }
            page = next;
        }
    }

    /// True when the tree holds no entries.
    pub fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Tree height (1 = a single leaf root). Exposed for tests and the
    /// storage ablation bench.
    pub fn height(&self) -> Result<usize> {
        let mut page = self.root()?;
        let mut h = 1usize;
        loop {
            let (ptype, aux, _cells) = self.load(page)?;
            match ptype {
                PageType::BtreeLeaf => return Ok(h),
                PageType::BtreeInternal => {
                    page = aux;
                    h += 1;
                }
                t => {
                    return Err(StoreError::Corrupt(format!(
                        "unexpected page type {t:?} walking height"
                    )))
                }
            }
        }
    }
}

/// Index into `cells` that splits total bytes roughly in half, always
/// leaving at least one cell on each side.
fn split_point(cells: &[Vec<u8>]) -> usize {
    let total: usize = cells.iter().map(|c| c.len() + 4).sum();
    let mut acc = 0usize;
    for (i, c) in cells.iter().enumerate() {
        acc += c.len() + 4;
        if acc >= total / 2 {
            return (i + 1).min(cells.len() - 1).max(1);
        }
    }
    cells.len() / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::FileManager;
    use std::collections::BTreeMap;
    use std::path::PathBuf;

    fn setup(tag: &str) -> (BTree, PathBuf) {
        let dir = std::env::temp_dir().join(format!("netmark-bt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let fm = Arc::new(FileManager::open(&dir).unwrap());
        let pool = Arc::new(BufferPool::new(Arc::clone(&fm), 256));
        let f = fm.open_file("i.idx").unwrap();
        (BTree::open(pool, f).unwrap(), dir)
    }

    #[test]
    fn insert_get_small() {
        let (t, dir) = setup("small");
        t.insert(b"b", b"2").unwrap();
        t.insert(b"a", b"1").unwrap();
        t.insert(b"c", b"3").unwrap();
        assert_eq!(t.get(b"a").unwrap(), Some(b"1".to_vec()));
        assert_eq!(t.get(b"b").unwrap(), Some(b"2".to_vec()));
        assert_eq!(t.get(b"z").unwrap(), None);
        assert_eq!(t.len().unwrap(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replace_existing_key() {
        let (t, dir) = setup("replace");
        t.insert(b"k", b"old").unwrap();
        t.insert(b"k", b"new").unwrap();
        assert_eq!(t.get(b"k").unwrap(), Some(b"new".to_vec()));
        assert_eq!(t.len().unwrap(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn thousands_of_keys_splits_and_orders() {
        let (t, dir) = setup("bulk");
        let mut model = BTreeMap::new();
        // Insert in a scrambled but deterministic order.
        for i in 0u32..5000 {
            let k = format!("key{:08}", (i.wrapping_mul(2654435761)) % 100000);
            let v = format!("val{i}");
            t.insert(k.as_bytes(), v.as_bytes()).unwrap();
            model.insert(k.into_bytes(), v.into_bytes());
        }
        assert!(t.height().unwrap() >= 2, "bulk load should split the root");
        assert_eq!(t.len().unwrap(), model.len());
        // Full scan matches the model in order.
        let scanned = t.scan_all().unwrap();
        let expect: Vec<_> = model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        assert_eq!(scanned, expect);
        // Point lookups.
        for (k, v) in model.iter().take(200) {
            assert_eq!(t.get(k).unwrap().as_deref(), Some(v.as_slice()));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn range_scan_bounds() {
        let (t, dir) = setup("range");
        for i in 0..100u32 {
            t.insert(format!("k{i:03}").as_bytes(), &i.to_le_bytes())
                .unwrap();
        }
        let r = t.range(b"k010", b"k020").unwrap();
        assert_eq!(r.len(), 10);
        assert_eq!(r[0].0, b"k010".to_vec());
        assert_eq!(r[9].0, b"k019".to_vec());
        assert!(t.range(b"zzz", b"zzzz").unwrap().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn delete_then_absent() {
        let (t, dir) = setup("delete");
        for i in 0..500u32 {
            t.insert(format!("k{i:03}").as_bytes(), b"v").unwrap();
        }
        assert!(t.delete(b"k250").unwrap());
        assert!(!t.delete(b"k250").unwrap());
        assert_eq!(t.get(b"k250").unwrap(), None);
        assert_eq!(t.len().unwrap(), 499);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn large_values_split_correctly() {
        let (t, dir) = setup("largeval");
        let big = vec![7u8; 1500];
        for i in 0..50u32 {
            t.insert(format!("k{i:02}").as_bytes(), &big).unwrap();
        }
        for i in 0..50u32 {
            assert_eq!(
                t.get(format!("k{i:02}").as_bytes()).unwrap(),
                Some(big.clone())
            );
        }
        let too_big = vec![0u8; MAX_ENTRY + 1];
        assert!(t.insert(b"k", &too_big).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn persists_across_reopen() {
        let dir = std::env::temp_dir().join(format!("netmark-bt-reopen-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let fm = Arc::new(FileManager::open(&dir).unwrap());
            let pool = Arc::new(BufferPool::new(Arc::clone(&fm), 64));
            let f = fm.open_file("i.idx").unwrap();
            let t = BTree::open(Arc::clone(&pool), f).unwrap();
            for i in 0..1000u32 {
                t.insert(format!("k{i:04}").as_bytes(), &i.to_le_bytes())
                    .unwrap();
            }
            pool.flush_all().unwrap();
        }
        let fm = Arc::new(FileManager::open(&dir).unwrap());
        let pool = Arc::new(BufferPool::new(Arc::clone(&fm), 64));
        let f = fm.open_file("i.idx").unwrap();
        let t = BTree::open(pool, f).unwrap();
        assert_eq!(t.len().unwrap(), 1000);
        assert_eq!(
            t.get(b"k0500").unwrap(),
            Some(500u32.to_le_bytes().to_vec())
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
