//! Heap files: unordered tuple storage addressed by physical [`RowId`].
//!
//! The paper leans on Oracle's physical ROWIDs "for very fast traversal
//! between nodes that are related" — NETMARK's `XML` table stores
//! `PARENTROWID` / `SIBLINGID` columns and the query processor chases them
//! without index lookups. A [`RowId`] here is `(page, slot)`; it stays valid
//! for the lifetime of the tuple, across updates (via forwarding cells) and
//! page compactions (slot numbers are stable).
//!
//! Cell format: a 1-byte record kind, then payload:
//! - `0` **data** — the tuple bytes follow.
//! - `1` **forward** — 6-byte RowId of the relocated tuple.
//! - `2` **moved data** — 6-byte original RowId, then tuple bytes (lets
//!   scans report the client-visible RowId).

use crate::buffer::BufferPool;
use crate::disk::FileId;
use crate::error::{Result, StoreError};
use crate::page::{PageType, SlottedPage, SlottedPageRef, MAX_CELL};
use crate::RowId;
use parking_lot::Mutex;
use std::sync::Arc;

pub(crate) const KIND_DATA: u8 = 0;
pub(crate) const KIND_FORWARD: u8 = 1;
pub(crate) const KIND_MOVED: u8 = 2;

fn encode_rowid(rid: RowId, out: &mut Vec<u8>) {
    out.extend_from_slice(&rid.page.to_le_bytes());
    out.extend_from_slice(&rid.slot.to_le_bytes());
}

pub(crate) fn decode_rowid(buf: &[u8]) -> Result<RowId> {
    if buf.len() < 6 {
        return Err(StoreError::Corrupt("short rowid cell".into()));
    }
    Ok(RowId {
        page: u32::from_le_bytes(buf[0..4].try_into().unwrap()),
        slot: u16::from_le_bytes(buf[4..6].try_into().unwrap()),
    })
}

/// A change applied to the heap, reported to the caller so the database
/// layer can WAL-log it and keep undo information.
#[derive(Debug, Clone)]
pub enum HeapOp {
    /// Cell inserted at `rid` with the given raw cell bytes.
    Insert {
        /// Location of the new cell.
        rid: RowId,
        /// Raw cell bytes (kind prefix included).
        cell: Vec<u8>,
    },
    /// Cell at `rid` deleted; `old` is the prior raw cell.
    Delete {
        /// Location of the removed cell.
        rid: RowId,
        /// Previous raw cell bytes.
        old: Vec<u8>,
    },
    /// Cell at `rid` rewritten from `old` to `new`.
    Update {
        /// Location of the rewritten cell.
        rid: RowId,
        /// Previous raw cell bytes.
        old: Vec<u8>,
        /// New raw cell bytes.
        new: Vec<u8>,
    },
}

/// Unordered tuple storage over one page file.
pub struct HeapFile {
    pool: Arc<BufferPool>,
    file: FileId,
    /// Free-bytes estimate per page, maintained incrementally after an
    /// initial scan; guides insert placement.
    fsm: Mutex<Vec<u32>>,
}

/// Maximum tuple payload (cell minus kind byte).
pub const MAX_TUPLE: usize = MAX_CELL - 1;

impl HeapFile {
    /// Opens a heap over `file`, scanning existing pages to build the
    /// free-space map.
    pub fn open(pool: Arc<BufferPool>, file: FileId) -> Result<HeapFile> {
        let n = pool.file_manager().page_count(file);
        let mut fsm = Vec::with_capacity(n as usize);
        for p in 0..n {
            let guard = pool.fetch(file, p)?;
            let data = guard.read();
            let sp = SlottedPageRef::new(&data);
            // Unformatted pages (allocated but never flushed before a
            // crash) report zero free space; WAL redo formats them.
            fsm.push(if sp.page_type() == PageType::Heap {
                sp.total_free() as u32
            } else {
                0
            });
        }
        Ok(HeapFile {
            pool,
            file,
            fsm: Mutex::new(fsm),
        })
    }

    /// The underlying file id.
    pub fn file_id(&self) -> FileId {
        self.file
    }

    /// Number of pages currently allocated.
    pub fn page_count(&self) -> u32 {
        self.fsm.lock().len() as u32
    }

    fn pick_page(&self, need: usize) -> Option<u32> {
        let fsm = self.fsm.lock();
        // Last-fit first: recent pages are most likely cached and least
        // fragmented; fall back to any page with room.
        fsm.iter()
            .enumerate()
            .rev()
            .find(|(_, &free)| free as usize >= need + 8)
            .map(|(p, _)| p as u32)
    }

    fn refresh_fsm(&self, page: u32, free: usize) {
        let mut fsm = self.fsm.lock();
        if (page as usize) < fsm.len() {
            fsm[page as usize] = free as u32;
        }
    }

    /// Inserts a tuple, returning its RowId and the raw heap op for logging.
    pub fn insert(&self, tuple: &[u8]) -> Result<(RowId, HeapOp)> {
        if tuple.len() > MAX_TUPLE {
            return Err(StoreError::TupleTooLarge {
                size: tuple.len(),
                max: MAX_TUPLE,
            });
        }
        let mut cell = Vec::with_capacity(tuple.len() + 1);
        cell.push(KIND_DATA);
        cell.extend_from_slice(tuple);
        let rid = self.insert_cell(&cell)?;
        Ok((rid, HeapOp::Insert { rid, cell }))
    }

    fn insert_cell(&self, cell: &[u8]) -> Result<RowId> {
        if let Some(p) = self.pick_page(cell.len()) {
            let guard = self.pool.fetch(self.file, p)?;
            let mut data = guard.write();
            let mut sp = SlottedPage::new(&mut data);
            if let Some(slot) = sp.insert(cell) {
                let free = sp.total_free();
                drop(data);
                self.refresh_fsm(p, free);
                return Ok(RowId { page: p, slot });
            }
        }
        // Allocate a fresh page.
        let (p, guard) = self.pool.allocate(self.file)?;
        let mut data = guard.write();
        let mut sp = SlottedPage::init(&mut data, PageType::Heap);
        let slot = sp
            .insert(cell)
            .expect("cell fits on an empty page by MAX_TUPLE check");
        let free = sp.total_free();
        drop(data);
        self.fsm.lock().push(free as u32);
        Ok(RowId { page: p, slot })
    }

    /// Overwrites the raw cell at `rid` in place with a same-length cell.
    /// Used by the deferred-insert path to fix up pointer columns after
    /// placement but before the insert is WAL-logged; the free-space map
    /// is unchanged because the cell does not grow.
    pub fn patch(&self, rid: RowId, cell: &[u8]) -> Result<()> {
        let guard = self.pool.fetch(self.file, rid.page)?;
        let mut data = guard.write();
        let mut sp = SlottedPage::new(&mut data);
        if !sp.update(rid.slot, cell) {
            return Err(StoreError::Corrupt(format!("heap patch failed at {rid:?}")));
        }
        Ok(())
    }

    /// Follows forwarding cells from `rid` to the cell that actually holds
    /// tuple bytes. Returns `(physical rid, payload-kind, payload)`.
    fn resolve(&self, rid: RowId) -> Result<(RowId, u8, Vec<u8>)> {
        let mut cur = rid;
        // A forward chain is at most a handful of hops; cap defensively.
        for _ in 0..32 {
            if cur.page >= self.page_count() {
                return Err(StoreError::RowNotFound(rid));
            }
            let guard = self.pool.fetch(self.file, cur.page)?;
            let data = guard.read();
            let sp = SlottedPageRef::new(&data);
            let cell = sp.get(cur.slot).ok_or(StoreError::RowNotFound(rid))?;
            match cell.first() {
                Some(&KIND_FORWARD) => {
                    cur = decode_rowid(&cell[1..])?;
                }
                Some(&k @ (KIND_DATA | KIND_MOVED)) => {
                    return Ok((cur, k, cell.to_vec()));
                }
                _ => return Err(StoreError::Corrupt("bad heap cell kind".into())),
            }
        }
        Err(StoreError::Corrupt("forwarding chain too long".into()))
    }

    /// Fetches the tuple bytes stored under `rid`.
    pub fn get(&self, rid: RowId) -> Result<Vec<u8>> {
        let (_, kind, cell) = self.resolve(rid)?;
        Ok(match kind {
            KIND_DATA => cell[1..].to_vec(),
            _ => cell[7..].to_vec(), // KIND_MOVED: skip kind + original rid
        })
    }

    /// True if `rid` names a live tuple.
    pub fn exists(&self, rid: RowId) -> bool {
        self.resolve(rid).is_ok()
    }

    /// Deletes the tuple at `rid` (and any forwarding cells), returning the
    /// heap ops performed.
    pub fn delete(&self, rid: RowId) -> Result<Vec<HeapOp>> {
        let mut ops = Vec::new();
        let mut cur = rid;
        loop {
            if cur.page >= self.page_count() {
                return Err(StoreError::RowNotFound(rid));
            }
            let guard = self.pool.fetch(self.file, cur.page)?;
            let mut data = guard.write();
            let mut sp = SlottedPage::new(&mut data);
            let cell = sp
                .get(cur.slot)
                .ok_or(StoreError::RowNotFound(rid))?
                .to_vec();
            sp.delete(cur.slot);
            let free = sp.total_free();
            drop(data);
            self.refresh_fsm(cur.page, free);
            let kind = cell[0];
            ops.push(HeapOp::Delete {
                rid: cur,
                old: cell.clone(),
            });
            if kind == KIND_FORWARD {
                cur = decode_rowid(&cell[1..])?;
            } else {
                return Ok(ops);
            }
        }
    }

    /// Updates the tuple at `rid`, preserving the RowId. If the new tuple
    /// does not fit in place, the data moves and a forwarding cell is left
    /// behind. Returns the heap ops performed.
    pub fn update(&self, rid: RowId, tuple: &[u8]) -> Result<Vec<HeapOp>> {
        if tuple.len() > MAX_TUPLE - 6 {
            return Err(StoreError::TupleTooLarge {
                size: tuple.len(),
                max: MAX_TUPLE - 6,
            });
        }
        let (phys, kind, old_cell) = self.resolve(rid)?;
        // Build the replacement cell, preserving the record kind so moved
        // tuples keep advertising their original RowId.
        let mut new_cell = Vec::with_capacity(tuple.len() + 7);
        match kind {
            KIND_DATA => {
                new_cell.push(KIND_DATA);
            }
            _ => {
                new_cell.push(KIND_MOVED);
                new_cell.extend_from_slice(&old_cell[1..7]);
            }
        }
        new_cell.extend_from_slice(tuple);

        // Try in-place first.
        {
            let guard = self.pool.fetch(self.file, phys.page)?;
            let mut data = guard.write();
            let mut sp = SlottedPage::new(&mut data);
            if sp.update(phys.slot, &new_cell) {
                let free = sp.total_free();
                drop(data);
                self.refresh_fsm(phys.page, free);
                return Ok(vec![HeapOp::Update {
                    rid: phys,
                    old: old_cell,
                    new: new_cell,
                }]);
            }
        }

        // Relocate: new moved-data cell elsewhere + forward cell at `phys`.
        let origin = match kind {
            KIND_DATA => phys,
            _ => decode_rowid(&old_cell[1..7])?,
        };
        let mut moved = Vec::with_capacity(tuple.len() + 7);
        moved.push(KIND_MOVED);
        encode_rowid(origin, &mut moved);
        moved.extend_from_slice(tuple);
        let new_rid = self.insert_cell(&moved)?;
        let mut fwd = Vec::with_capacity(7);
        fwd.push(KIND_FORWARD);
        encode_rowid(new_rid, &mut fwd);
        let guard = self.pool.fetch(self.file, phys.page)?;
        let mut data = guard.write();
        let mut sp = SlottedPage::new(&mut data);
        let ok = sp.update(phys.slot, &fwd);
        debug_assert!(ok, "forward cell is smaller than any data cell");
        let free = sp.total_free();
        drop(data);
        self.refresh_fsm(phys.page, free);
        Ok(vec![
            HeapOp::Insert {
                rid: new_rid,
                cell: moved,
            },
            HeapOp::Update {
                rid: phys,
                old: old_cell,
                new: fwd,
            },
        ])
    }

    /// Full scan yielding `(client-visible RowId, tuple bytes)`.
    pub fn scan(&self) -> Result<Vec<(RowId, Vec<u8>)>> {
        let mut out = Vec::new();
        for p in 0..self.page_count() {
            let guard = self.pool.fetch(self.file, p)?;
            let data = guard.read();
            let sp = SlottedPageRef::new(&data);
            if sp.page_type() != PageType::Heap {
                continue;
            }
            for (slot, cell) in sp.iter_live() {
                match cell.first() {
                    Some(&KIND_DATA) => {
                        out.push((RowId { page: p, slot }, cell[1..].to_vec()));
                    }
                    Some(&KIND_MOVED) => {
                        let orig = decode_rowid(&cell[1..7])?;
                        out.push((orig, cell[7..].to_vec()));
                    }
                    _ => {} // forward cells are not tuples
                }
            }
        }
        Ok(out)
    }

    /// Applies a raw redo operation at an exact location (recovery path).
    /// `lsn` is stamped on the page; the op is skipped if the page has
    /// already seen it.
    pub fn redo(&self, page: u32, slot: u16, new_cell: Option<&[u8]>, lsn: u64) -> Result<()> {
        // Ensure the page exists.
        while self.page_count() <= page {
            let (_, guard) = self.pool.allocate(self.file)?;
            let mut data = guard.write();
            SlottedPage::init(&mut data, PageType::Heap);
            drop(data);
            self.fsm.lock().push(0);
        }
        let guard = self.pool.fetch(self.file, page)?;
        let mut data = guard.write();
        let mut sp = SlottedPage::new(&mut data);
        if sp.page_type() == PageType::Free {
            sp = SlottedPage::init(&mut data, PageType::Heap);
        }
        if sp.lsn() >= lsn {
            return Ok(()); // already applied before the crash
        }
        match new_cell {
            Some(cell) => {
                if sp.is_live(slot) {
                    let ok = sp.update(slot, cell);
                    if !ok {
                        return Err(StoreError::Corrupt("redo update does not fit".into()));
                    }
                } else if !sp.insert_at(slot, cell) {
                    return Err(StoreError::Corrupt("redo insert does not fit".into()));
                }
            }
            None => {
                sp.delete(slot);
            }
        }
        sp.set_lsn(lsn);
        let free = sp.total_free();
        drop(data);
        self.refresh_fsm(page, free);
        Ok(())
    }

    /// Applies the inverse of `op` to in-memory pages (transaction abort
    /// under no-steal; disk was never touched).
    pub fn undo(&self, op: &HeapOp) -> Result<()> {
        match op {
            HeapOp::Insert { rid, .. } => {
                let guard = self.pool.fetch(self.file, rid.page)?;
                let mut data = guard.write();
                let mut sp = SlottedPage::new(&mut data);
                sp.delete(rid.slot);
                let free = sp.total_free();
                drop(data);
                self.refresh_fsm(rid.page, free);
            }
            HeapOp::Delete { rid, old } => {
                let guard = self.pool.fetch(self.file, rid.page)?;
                let mut data = guard.write();
                let mut sp = SlottedPage::new(&mut data);
                if !sp.insert_at(rid.slot, old) {
                    return Err(StoreError::Corrupt("undo reinsert does not fit".into()));
                }
                let free = sp.total_free();
                drop(data);
                self.refresh_fsm(rid.page, free);
            }
            HeapOp::Update { rid, old, .. } => {
                let guard = self.pool.fetch(self.file, rid.page)?;
                let mut data = guard.write();
                let mut sp = SlottedPage::new(&mut data);
                if !sp.update(rid.slot, old) {
                    return Err(StoreError::Corrupt("undo update does not fit".into()));
                }
                let free = sp.total_free();
                drop(data);
                self.refresh_fsm(rid.page, free);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::FileManager;
    use std::path::PathBuf;

    fn setup(tag: &str) -> (HeapFile, PathBuf) {
        let dir = std::env::temp_dir().join(format!("netmark-heap-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let fm = Arc::new(FileManager::open(&dir).unwrap());
        let pool = Arc::new(BufferPool::new(Arc::clone(&fm), 64));
        let f = fm.open_file("t.tbl").unwrap();
        (HeapFile::open(pool, f).unwrap(), dir)
    }

    #[test]
    fn insert_get_round_trip() {
        let (h, dir) = setup("rt");
        let (rid, _) = h.insert(b"tuple one").unwrap();
        assert_eq!(h.get(rid).unwrap(), b"tuple one");
        assert!(h.exists(rid));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn many_inserts_span_pages() {
        let (h, dir) = setup("pages");
        let payload = vec![5u8; 500];
        let rids: Vec<RowId> = (0..100).map(|_| h.insert(&payload).unwrap().0).collect();
        assert!(h.page_count() > 1);
        for rid in &rids {
            assert_eq!(h.get(*rid).unwrap(), payload);
        }
        let scanned = h.scan().unwrap();
        assert_eq!(scanned.len(), 100);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn delete_then_get_fails() {
        let (h, dir) = setup("del");
        let (rid, _) = h.insert(b"gone").unwrap();
        h.delete(rid).unwrap();
        assert!(h.get(rid).is_err());
        assert!(!h.exists(rid));
        assert!(h.delete(rid).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn update_grow_preserves_rowid() {
        let (h, dir) = setup("grow");
        // Fill a page so a grown tuple must relocate.
        let (rid, _) = h.insert(b"small").unwrap();
        let filler = vec![1u8; 700];
        while h.page_count() < 2 {
            h.insert(&filler).unwrap();
        }
        let big = vec![9u8; 7000];
        h.update(rid, &big).unwrap();
        assert_eq!(h.get(rid).unwrap(), big, "RowId survives relocation");
        // A scan reports the original RowId for the moved tuple.
        let scanned = h.scan().unwrap();
        let hit = scanned.iter().find(|(r, _)| *r == rid).unwrap();
        assert_eq!(hit.1, big);
        // Update again after relocation still works.
        h.update(rid, b"tiny now").unwrap();
        assert_eq!(h.get(rid).unwrap(), b"tiny now");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn delete_forwarded_removes_whole_chain() {
        let (h, dir) = setup("delchain");
        let (rid, _) = h.insert(b"x").unwrap();
        let filler = vec![1u8; 700];
        while h.page_count() < 2 {
            h.insert(&filler).unwrap();
        }
        h.update(rid, &vec![2u8; 7000]).unwrap();
        let before = h.scan().unwrap().len();
        h.delete(rid).unwrap();
        assert!(!h.exists(rid));
        assert_eq!(h.scan().unwrap().len(), before - 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn undo_reverses_ops() {
        let (h, dir) = setup("undo");
        let (rid0, _) = h.insert(b"keep").unwrap();
        let (rid1, op1) = h.insert(b"rollback me").unwrap();
        if let HeapOp::Insert { .. } = &op1 {
            h.undo(&op1).unwrap();
        }
        assert!(!h.exists(rid1));
        assert_eq!(h.get(rid0).unwrap(), b"keep");

        let ops = h.delete(rid0).unwrap();
        for op in ops.iter().rev() {
            h.undo(op).unwrap();
        }
        assert_eq!(h.get(rid0).unwrap(), b"keep");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn redo_is_idempotent() {
        let (h, dir) = setup("redo");
        let cell = {
            let mut c = vec![KIND_DATA];
            c.extend_from_slice(b"redone");
            c
        };
        h.redo(3, 2, Some(&cell), 10).unwrap();
        assert_eq!(h.get(RowId { page: 3, slot: 2 }).unwrap(), b"redone");
        // Replaying at the same LSN is a no-op.
        h.redo(3, 2, Some(&cell), 10).unwrap();
        assert_eq!(h.scan().unwrap().len(), 1);
        // Later LSN delete applies.
        h.redo(3, 2, None, 11).unwrap();
        assert!(!h.exists(RowId { page: 3, slot: 2 }));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
