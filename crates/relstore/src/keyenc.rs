//! Order-preserving ("memcomparable") key encoding.
//!
//! B-tree keys are byte strings compared with `memcmp`. This module encodes
//! single values and composite keys such that byte order equals the natural
//! order of the values: `encode(a) < encode(b)  ⇔  a < b`.
//!
//! Encoding per value (1 tag byte, tags ordered Null < Bool < numeric < Text
//! < Bytes < Rowid):
//! - `Int`/`Float` share the numeric tag and are encoded as a total order
//!   over f64/i64 (big-endian with sign-flip).
//! - `Text`/`Bytes` are escaped (`0x00 → 0x00 0xFF`) and terminated with
//!   `0x00 0x00` so that prefixes sort before extensions and composite keys
//!   cannot bleed across components.

use crate::error::{Result, StoreError};
use crate::tuple::Value;
use crate::RowId;

const TAG_NULL: u8 = 0x01;
const TAG_BOOL: u8 = 0x02;
const TAG_NUM: u8 = 0x03;
const TAG_TEXT: u8 = 0x04;
const TAG_BYTES: u8 = 0x05;
const TAG_ROWID: u8 = 0x06;

fn push_escaped(out: &mut Vec<u8>, bytes: &[u8]) {
    for &b in bytes {
        out.push(b);
        if b == 0x00 {
            out.push(0xFF);
        }
    }
    out.push(0x00);
    out.push(0x00);
}

fn encode_f64(out: &mut Vec<u8>, f: f64) {
    // IEEE-754 total order trick: flip all bits for negatives, flip the sign
    // bit for non-negatives.
    let bits = f.to_bits();
    let ordered = if bits & (1 << 63) != 0 {
        !bits
    } else {
        bits ^ (1 << 63)
    };
    out.extend_from_slice(&ordered.to_be_bytes());
}

/// Appends the order-preserving encoding of one value.
pub fn encode_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(b) => {
            out.push(TAG_BOOL);
            out.push(*b as u8);
        }
        Value::Int(i) => {
            out.push(TAG_NUM);
            // Ints and floats must interleave consistently; encode the int
            // exactly when it fits in f64, otherwise fall back to a widened
            // i64 ordering (we accept the standard f64 rounding for the
            // pathological |i| > 2^53 range — keys in this engine are node
            // ids and names, far below that).
            encode_f64(out, *i as f64);
            // Disambiguate equal-f64 ints from floats deterministically.
            out.extend_from_slice(&(*i as u64 ^ (1 << 63)).to_be_bytes());
        }
        Value::Float(f) => {
            out.push(TAG_NUM);
            encode_f64(out, *f);
            // Floats sort after an int of identical numeric value; this
            // keeps the encoding injective. Lookups always use the same
            // Value variant they inserted with.
            out.extend_from_slice(&u64::MAX.to_be_bytes());
        }
        Value::Text(s) => {
            out.push(TAG_TEXT);
            push_escaped(out, s.as_bytes());
        }
        Value::Bytes(b) => {
            out.push(TAG_BYTES);
            push_escaped(out, b);
        }
        Value::Rowid(r) => {
            out.push(TAG_ROWID);
            out.extend_from_slice(&r.page.to_be_bytes());
            out.extend_from_slice(&r.slot.to_be_bytes());
        }
    }
}

/// Encodes a composite key.
pub fn encode_key(values: &[Value]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 12);
    for v in values {
        encode_value(&mut out, v);
    }
    out
}

/// Encodes a key prefix and returns `(lo, hi)` bounds such that every
/// composite key starting with `values` satisfies `lo <= k < hi`.
pub fn prefix_range(values: &[Value]) -> (Vec<u8>, Vec<u8>) {
    let lo = encode_key(values);
    let mut hi = lo.clone();
    // Successor of the prefix in byte order.
    loop {
        match hi.last_mut() {
            None => {
                // Empty prefix: full range.
                return (lo, vec![0xFF; 16]);
            }
            Some(255) => {
                hi.pop();
            }
            Some(b) => {
                *b += 1;
                break;
            }
        }
    }
    (lo, hi)
}

/// Appends a [`RowId`] suffix, making non-unique index entries unique.
pub fn append_rowid(key: &mut Vec<u8>, rid: RowId) {
    key.extend_from_slice(&rid.page.to_be_bytes());
    key.extend_from_slice(&rid.slot.to_be_bytes());
}

/// Strips and decodes a [`RowId`] suffix added by [`append_rowid`].
pub fn split_rowid(key: &[u8]) -> Result<(&[u8], RowId)> {
    if key.len() < 6 {
        return Err(StoreError::Corrupt("index key too short for rowid".into()));
    }
    let at = key.len() - 6;
    let page = u32::from_be_bytes(key[at..at + 4].try_into().unwrap());
    let slot = u16::from_be_bytes(key[at + 4..].try_into().unwrap());
    Ok((&key[..at], RowId { page, slot }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc1(v: Value) -> Vec<u8> {
        encode_key(std::slice::from_ref(&v))
    }

    #[test]
    fn int_order_preserved() {
        let vals = [-1000i64, -1, 0, 1, 2, 500, 1 << 40];
        for w in vals.windows(2) {
            assert!(
                enc1(Value::Int(w[0])) < enc1(Value::Int(w[1])),
                "{} !< {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn float_order_preserved() {
        let vals = [-1e9, -1.5, -0.0, 0.0, 1e-9, 1.5, 1e9];
        for w in vals.windows(2) {
            assert!(enc1(Value::Float(w[0])) <= enc1(Value::Float(w[1])));
        }
    }

    #[test]
    fn text_order_and_prefix() {
        assert!(enc1(Value::from("a")) < enc1(Value::from("ab")));
        assert!(enc1(Value::from("ab")) < enc1(Value::from("b")));
        // Embedded NULs don't break component boundaries.
        assert!(enc1(Value::from("a\0z")) < enc1(Value::from("ab")));
    }

    #[test]
    fn composite_component_isolation() {
        // ("ab", "c") vs ("a", "bc") must not compare equal.
        let k1 = encode_key(&[Value::from("ab"), Value::from("c")]);
        let k2 = encode_key(&[Value::from("a"), Value::from("bc")]);
        assert_ne!(k1, k2);
        assert!(k2 < k1, "shorter first component sorts first");
    }

    #[test]
    fn prefix_range_covers_extensions() {
        let (lo, hi) = prefix_range(&[Value::from("Context")]);
        let inside = encode_key(&[Value::from("Context"), Value::Int(5)]);
        assert!(lo <= inside && inside < hi);
        let outside = encode_key(&[Value::from("Contexu")]);
        assert!(outside >= hi);
    }

    #[test]
    fn rowid_suffix_round_trip() {
        let mut k = encode_key(&[Value::from("x")]);
        let base = k.clone();
        let rid = RowId { page: 9, slot: 4 };
        append_rowid(&mut k, rid);
        let (prefix, got) = split_rowid(&k).unwrap();
        assert_eq!(prefix, &base[..]);
        assert_eq!(got, rid);
    }

    #[test]
    fn tags_separate_types() {
        assert!(enc1(Value::Null) < enc1(Value::Bool(false)));
        assert!(enc1(Value::Bool(true)) < enc1(Value::Int(i64::MIN)));
        assert!(enc1(Value::Int(i64::MAX)) < enc1(Value::from("")));
    }
}
