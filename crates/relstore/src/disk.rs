//! Page-granular file I/O.
//!
//! A database is a directory of page files: one per heap table, one per
//! B-tree index, plus the write-ahead log and the catalog. The
//! [`FileManager`] owns every open file and hands out stable [`FileId`]s the
//! buffer pool uses as cache keys.

use crate::error::Result;
use crate::page::PAGE_SIZE;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Identifies one open page file within a [`FileManager`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u32);

struct OpenFile {
    file: File,
    path: PathBuf,
    /// Number of allocated pages; page numbers are `0..page_count`.
    page_count: u32,
}

/// Owns the open page files of one database directory.
pub struct FileManager {
    dir: PathBuf,
    inner: Mutex<FmInner>,
}

struct FmInner {
    files: HashMap<FileId, OpenFile>,
    by_name: HashMap<String, FileId>,
    next_id: u32,
}

impl FileManager {
    /// Opens (creating if needed) a database directory.
    pub fn open(dir: &Path) -> Result<FileManager> {
        std::fs::create_dir_all(dir)?;
        Ok(FileManager {
            dir: dir.to_path_buf(),
            inner: Mutex::new(FmInner {
                files: HashMap::new(),
                by_name: HashMap::new(),
                next_id: 0,
            }),
        })
    }

    /// Root directory of the database.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Opens (creating if needed) the page file `name` inside the database
    /// directory, returning its id. Re-opening the same name returns the
    /// same id.
    pub fn open_file(&self, name: &str) -> Result<FileId> {
        let mut inner = self.inner.lock();
        if let Some(&id) = inner.by_name.get(name) {
            return Ok(id);
        }
        let path = self.dir.join(name);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let len = file.metadata()?.len();
        let id = FileId(inner.next_id);
        inner.next_id += 1;
        inner.files.insert(
            id,
            OpenFile {
                file,
                path,
                page_count: (len / PAGE_SIZE as u64) as u32,
            },
        );
        inner.by_name.insert(name.to_string(), id);
        Ok(id)
    }

    /// Deletes a page file from disk and forgets its id.
    pub fn remove_file(&self, name: &str) -> Result<()> {
        let mut inner = self.inner.lock();
        if let Some(id) = inner.by_name.remove(name) {
            if let Some(of) = inner.files.remove(&id) {
                drop(of.file);
                std::fs::remove_file(&of.path)?;
            }
        }
        Ok(())
    }

    /// Page counts of every open file, keyed by id. Used by MVCC snapshot
    /// capture: a read view records these to hide pages allocated after it.
    pub fn all_page_counts(&self) -> HashMap<FileId, u32> {
        self.inner
            .lock()
            .files
            .iter()
            .map(|(&id, of)| (id, of.page_count))
            .collect()
    }

    /// Number of allocated pages in `file`.
    pub fn page_count(&self, file: FileId) -> u32 {
        self.inner
            .lock()
            .files
            .get(&file)
            .map_or(0, |f| f.page_count)
    }

    /// Appends a zeroed page, returning its page number.
    pub fn allocate_page(&self, file: FileId) -> Result<u32> {
        let mut inner = self.inner.lock();
        let of = inner.files.get_mut(&file).expect("file id is valid");
        let page_no = of.page_count;
        of.page_count += 1;
        of.file
            .seek(SeekFrom::Start(page_no as u64 * PAGE_SIZE as u64))?;
        of.file.write_all(&[0u8; PAGE_SIZE])?;
        Ok(page_no)
    }

    /// Reads one page into `buf`.
    pub fn read_page(&self, file: FileId, page_no: u32, buf: &mut [u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        let mut inner = self.inner.lock();
        let of = inner.files.get_mut(&file).expect("file id is valid");
        of.file
            .seek(SeekFrom::Start(page_no as u64 * PAGE_SIZE as u64))?;
        of.file.read_exact(buf)?;
        Ok(())
    }

    /// Writes one page from `buf`.
    pub fn write_page(&self, file: FileId, page_no: u32, buf: &[u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        let mut inner = self.inner.lock();
        let of = inner.files.get_mut(&file).expect("file id is valid");
        of.file
            .seek(SeekFrom::Start(page_no as u64 * PAGE_SIZE as u64))?;
        of.file.write_all(buf)?;
        Ok(())
    }

    /// Durably flushes a file's data to disk.
    pub fn sync(&self, file: FileId) -> Result<()> {
        let inner = self.inner.lock();
        if let Some(of) = inner.files.get(&file) {
            of.file.sync_data()?;
        }
        Ok(())
    }

    /// Truncates a file back to zero pages (used when rebuilding indexes).
    pub fn truncate(&self, file: FileId) -> Result<()> {
        let mut inner = self.inner.lock();
        let of = inner.files.get_mut(&file).expect("file id is valid");
        of.file.set_len(0)?;
        of.page_count = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("netmark-disk-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn allocate_write_read_round_trip() {
        let dir = tmpdir("rt");
        let fm = FileManager::open(&dir).unwrap();
        let f = fm.open_file("t.tbl").unwrap();
        assert_eq!(fm.page_count(f), 0);
        let p0 = fm.allocate_page(f).unwrap();
        let p1 = fm.allocate_page(f).unwrap();
        assert_eq!((p0, p1), (0, 1));
        let mut w = vec![0u8; PAGE_SIZE];
        w[0] = 0xAB;
        w[PAGE_SIZE - 1] = 0xCD;
        fm.write_page(f, 1, &w).unwrap();
        let mut r = vec![0u8; PAGE_SIZE];
        fm.read_page(f, 1, &mut r).unwrap();
        assert_eq!(w, r);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_preserves_page_count_and_contents() {
        let dir = tmpdir("reopen");
        {
            let fm = FileManager::open(&dir).unwrap();
            let f = fm.open_file("t.tbl").unwrap();
            fm.allocate_page(f).unwrap();
            let mut w = vec![3u8; PAGE_SIZE];
            w[7] = 99;
            fm.write_page(f, 0, &w).unwrap();
            fm.sync(f).unwrap();
        }
        let fm = FileManager::open(&dir).unwrap();
        let f = fm.open_file("t.tbl").unwrap();
        assert_eq!(fm.page_count(f), 1);
        let mut r = vec![0u8; PAGE_SIZE];
        fm.read_page(f, 0, &mut r).unwrap();
        assert_eq!(r[7], 99);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn same_name_same_id() {
        let dir = tmpdir("sameid");
        let fm = FileManager::open(&dir).unwrap();
        let a = fm.open_file("x.tbl").unwrap();
        let b = fm.open_file("x.tbl").unwrap();
        assert_eq!(a, b);
        let c = fm.open_file("y.tbl").unwrap();
        assert_ne!(a, c);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
