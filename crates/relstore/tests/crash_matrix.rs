//! Kill-9 crash-recovery matrix.
//!
//! Each scenario re-invokes this test binary as a child (filtered to the
//! same test, switched into child mode by `CRASH_ROLE`), lets the child
//! reach a known phase — signalled through marker files — and then sends
//! it SIGKILL. The parent reopens the store and checks the recovery
//! contract: a transaction is visible after reopen iff its commit record
//! reached disk, and checkpoints can die at any instant without losing
//! committed state (redo-only WAL, no-steal/no-force pool).

use netmark_relstore::{ColumnType, Database, DbOptions, Schema, Value};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

const BATCH: usize = 10;

fn schema() -> Schema {
    Schema::new(&[("K", ColumnType::Int), ("PAYLOAD", ColumnType::Text)])
}

fn row(k: i64) -> Vec<Value> {
    vec![
        Value::Int(k),
        Value::from(format!("payload-{k}-{}", "x".repeat(64))),
    ]
}

fn sync_opts() -> DbOptions {
    DbOptions {
        sync_commits: true,
        group_commit_window: Duration::ZERO,
        ..DbOptions::default()
    }
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("relstore-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Atomically publish a marker the parent polls for.
fn mark(dir: &Path, name: &str, content: &str) {
    let tmp = dir.join(format!("{name}.tmp"));
    std::fs::write(&tmp, content).unwrap();
    std::fs::rename(&tmp, dir.join(name)).unwrap();
}

/// Spawn this test binary as a child locked to `test_name`, with
/// `CRASH_ROLE` set so the re-entered test takes the child branch.
fn spawn_child(test_name: &str, dir: &Path) -> std::process::Child {
    std::process::Command::new(std::env::current_exe().unwrap())
        .arg(test_name)
        .arg("--exact")
        .arg("--nocapture")
        .env("CRASH_ROLE", "child")
        .env("CRASH_DIR", dir)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn crash child")
}

fn wait_for(path: &Path, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    while !path.exists() {
        assert!(Instant::now() < deadline, "marker {path:?} never appeared");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Child half: park until the parent's SIGKILL lands (bounded, so an
/// orphaned child cannot outlive a failed parent by much).
fn await_kill() -> ! {
    std::thread::sleep(Duration::from_secs(30));
    std::process::exit(1);
}

fn child_dir() -> Option<PathBuf> {
    match std::env::var("CRASH_ROLE") {
        Ok(role) if role == "child" => Some(PathBuf::from(std::env::var("CRASH_DIR").unwrap())),
        _ => None,
    }
}

/// Keys present after reopen must be the serial prefix `0..n`.
fn assert_prefix(rows: &[(netmark_relstore::RowId, Vec<Value>)]) {
    for (i, (_, r)) in rows.iter().enumerate() {
        assert_eq!(r[0], Value::Int(i as i64), "recovered rows form a prefix");
    }
}

/// Killed with a transaction open (inserts done, commit never called):
/// reopen shows only the pre-existing committed rows.
#[test]
fn kill9_pre_commit_loses_only_the_open_txn() {
    if let Some(dir) = child_dir() {
        let db = Database::open_with(&dir, sync_opts()).unwrap();
        let t = db.table("T").unwrap();
        let mut tx = db.begin();
        for k in 100..200 {
            tx.insert(&t, &row(k)).unwrap();
        }
        mark(&dir, "ready", "open-txn");
        await_kill();
    }

    let dir = scratch("precommit");
    {
        let db = Database::open_with(&dir, sync_opts()).unwrap();
        let t = db.create_table("T", schema()).unwrap();
        let mut tx = db.begin();
        for k in 0..100 {
            tx.insert(&t, &row(k)).unwrap();
        }
        tx.commit().unwrap();
    }
    let mut child = spawn_child("kill9_pre_commit_loses_only_the_open_txn", &dir);
    wait_for(&dir.join("ready"), Duration::from_secs(10));
    child.kill().unwrap();
    child.wait().unwrap();

    let db = Database::open_with(&dir, sync_opts()).unwrap();
    let rows = db.table("T").unwrap().scan().unwrap();
    assert_eq!(rows.len(), 100, "open transaction vanished on recovery");
    assert_prefix(&rows);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Killed right after `commit()` returned under `sync_commits`: reopen
/// shows every committed row even though no checkpoint ever ran.
#[test]
fn kill9_post_commit_preserves_synced_commits() {
    if let Some(dir) = child_dir() {
        let db = Database::open_with(&dir, sync_opts()).unwrap();
        let t = db.create_table("T", schema()).unwrap();
        let mut tx = db.begin();
        for k in 0..100 {
            tx.insert(&t, &row(k)).unwrap();
        }
        tx.commit().unwrap();
        mark(&dir, "committed", "100");
        await_kill();
    }

    let dir = scratch("postcommit");
    std::fs::create_dir_all(&dir).unwrap();
    let mut child = spawn_child("kill9_post_commit_preserves_synced_commits", &dir);
    wait_for(&dir.join("committed"), Duration::from_secs(10));
    child.kill().unwrap();
    child.wait().unwrap();

    let db = Database::open_with(&dir, sync_opts()).unwrap();
    let rows = db.table("T").unwrap().scan().unwrap();
    assert_eq!(rows.len(), 100, "synced commit survives kill -9");
    assert_prefix(&rows);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Killed at a random instant inside a commit/checkpoint storm: reopen
/// shows a whole number of batches, at least everything acknowledged
/// before the kill, with no torn or reordered rows.
#[test]
fn kill9_mid_checkpoint_keeps_committed_state() {
    if let Some(dir) = child_dir() {
        let db = Database::open_with(&dir, sync_opts()).unwrap();
        let t = db.create_table("T", schema()).unwrap();
        for b in 0..1000usize {
            let mut tx = db.begin();
            for i in 0..BATCH {
                tx.insert(&t, &row((b * BATCH + i) as i64)).unwrap();
            }
            tx.commit().unwrap();
            mark(&dir, "acked", &b.to_string());
            db.checkpoint().unwrap();
        }
        await_kill();
    }

    let dir = scratch("midckpt");
    std::fs::create_dir_all(&dir).unwrap();
    let mut child = spawn_child("kill9_mid_checkpoint_keeps_committed_state", &dir);

    // Let a few commit→checkpoint cycles land, then kill at an arbitrary
    // point in the storm — with good odds, mid-checkpoint.
    let acked = dir.join("acked");
    wait_for(&acked, Duration::from_secs(10));
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Ok(s) = std::fs::read_to_string(&acked) {
            if s.trim().parse::<usize>().is_ok_and(|b| b >= 5) {
                break;
            }
        }
        assert!(Instant::now() < deadline, "child never reached batch 5");
        std::thread::sleep(Duration::from_millis(1));
    }
    child.kill().unwrap();
    child.wait().unwrap();
    let acked_batches: usize = std::fs::read_to_string(&acked)
        .unwrap()
        .trim()
        .parse()
        .unwrap();

    let db = Database::open_with(&dir, sync_opts()).unwrap();
    let rows = db.table("T").unwrap().scan().unwrap();
    assert_eq!(rows.len() % BATCH, 0, "no torn batch after recovery");
    assert!(
        rows.len() >= (acked_batches + 1) * BATCH,
        "every acknowledged batch survived: acked {} batches, found {} rows",
        acked_batches + 1,
        rows.len()
    );
    assert_prefix(&rows);
    std::fs::remove_dir_all(&dir).unwrap();
}
