//! MVCC property tests: repeatable reads under concurrent commits,
//! agreement with a serial reference execution, view-pin hygiene, and
//! checkpoint eviction of laggard views (the `max_view_lag` knob).

use netmark_relstore::{ColumnType, Database, DbOptions, Schema, StoreError, Value};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("relstore-mvccprop-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn schema() -> Schema {
    Schema::new(&[("K", ColumnType::Int), ("PAYLOAD", ColumnType::Text)])
}

fn row(k: i64) -> Vec<Value> {
    vec![
        Value::Int(k),
        Value::from(format!("payload-{k}-{}", "x".repeat(80))),
    ]
}

const BATCH: usize = 25;
const BATCHES: usize = 40;

/// Commits `BATCHES` batches of `BATCH` rows each; after batch `m` the
/// committed table is exactly rows `0..m*BATCH`.
fn run_writer(db: &Database) {
    let t = db.table("T").unwrap();
    for b in 0..BATCHES {
        let mut tx = db.begin();
        for i in 0..BATCH {
            tx.insert(&t, &row((b * BATCH + i) as i64)).unwrap();
        }
        tx.commit().unwrap();
    }
}

/// Every view observes some committed prefix, and observes it repeatably:
/// two scans through the same view are identical even while commits land.
#[test]
fn read_views_are_repeatable_committed_prefixes() {
    let dir = temp_dir("prefix");
    let db = Arc::new(Database::open(&dir).unwrap());
    db.create_table("T", schema()).unwrap();
    let done = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..3)
        .map(|_| {
            let db = Arc::clone(&db);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut iterations = 0u64;
                let mut max_seen = 0usize;
                while !done.load(Ordering::Acquire) || iterations == 0 {
                    let view = db.begin_read();
                    let t = view.table("T").unwrap();
                    let s1 = t.scan().unwrap();
                    let s2 = t.scan().unwrap();
                    assert_eq!(s1, s2, "repeatable read within one view");
                    assert_eq!(s1.len() % BATCH, 0, "views never observe a torn batch");
                    for (i, (_, r)) in s1.iter().enumerate() {
                        assert_eq!(
                            r[0],
                            Value::Int(i as i64),
                            "observed state is the serial prefix"
                        );
                    }
                    assert!(s1.len() >= max_seen, "later views never travel backwards");
                    max_seen = s1.len();
                    iterations += 1;
                }
                iterations
            })
        })
        .collect();

    run_writer(&db);
    done.store(true, Ordering::Release);
    for r in readers {
        assert!(r.join().unwrap() > 0);
    }
    // Quiesced: a fresh view sees everything.
    let view = db.begin_read();
    assert_eq!(
        view.table("T").unwrap().scan().unwrap().len(),
        BATCH * BATCHES
    );
    drop(view);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The store produced under concurrent snapshot readers is identical —
/// rowids and bytes — to one produced by the same commits run serially.
#[test]
fn concurrent_reads_leave_store_identical_to_serial_reference() {
    let dir_a = temp_dir("ref-a");
    let dir_b = temp_dir("ref-b");
    let db_a = Arc::new(Database::open(&dir_a).unwrap());
    let db_b = Database::open(&dir_b).unwrap();
    db_a.create_table("T", schema()).unwrap();
    db_b.create_table("T", schema()).unwrap();

    // Churn views hard while db_a ingests.
    let done = Arc::new(AtomicBool::new(false));
    let churn: Vec<_> = (0..2)
        .map(|_| {
            let db = Arc::clone(&db_a);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                while !done.load(Ordering::Acquire) {
                    let view = db.begin_read();
                    let t = view.table("T").unwrap();
                    let _ = t.scan().unwrap();
                }
            })
        })
        .collect();
    run_writer(&db_a);
    done.store(true, Ordering::Release);
    for c in churn {
        c.join().unwrap();
    }
    run_writer(&db_b); // serial reference: no concurrent readers at all

    let va = db_a.begin_read();
    let a = va.table("T").unwrap().scan().unwrap();
    let b = db_b.table("T").unwrap().scan().unwrap();
    assert_eq!(a, b, "same rowids, same tuples as the serial reference");
    std::fs::remove_dir_all(&dir_a).unwrap();
    std::fs::remove_dir_all(&dir_b).unwrap();
}

/// Views (including the one every `Txn` pins) never leak: commit, abort,
/// and drop all release the pin, and clones share one registration.
#[test]
fn no_view_leaks_across_txn_and_view_lifecycles() {
    let dir = temp_dir("leak");
    let db = Database::open(&dir).unwrap();
    let t = db.create_table("T", schema()).unwrap();
    assert_eq!(db.mvcc_stats().live_views, 0);

    let view = db.begin_read();
    assert_eq!(db.mvcc_stats().live_views, 1);
    let clone = view.clone();
    assert_eq!(db.mvcc_stats().live_views, 1, "clones share the pin");
    drop(view);
    assert_eq!(db.mvcc_stats().live_views, 1, "pin lives with last clone");
    drop(clone);
    assert_eq!(db.mvcc_stats().live_views, 0);

    // Commit path releases the transaction's pin.
    let mut tx = db.begin();
    assert_eq!(db.mvcc_stats().live_views, 1, "txn pins a read view");
    tx.insert(&t, &row(1)).unwrap();
    tx.commit().unwrap();
    assert_eq!(db.mvcc_stats().live_views, 0, "commit releases the pin");

    // Abort path releases it too.
    let mut tx = db.begin();
    tx.insert(&t, &row(2)).unwrap();
    tx.abort().unwrap();
    assert_eq!(db.mvcc_stats().live_views, 0, "abort releases the pin");

    // Drop-abort (satellite: Txn drop must not leak its view pin).
    {
        let mut tx = db.begin();
        tx.insert(&t, &row(3)).unwrap();
    }
    assert_eq!(db.mvcc_stats().live_views, 0, "drop-abort releases the pin");

    let s = db.mvcc_stats();
    assert!(s.views_opened >= 4);
    assert_eq!(s.views_evicted, 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A transaction's read view is pinned *before* its own writes: it serves
/// the pre-transaction state (no read-your-own-writes through the view).
#[test]
fn txn_view_observes_pre_transaction_state() {
    let dir = temp_dir("pretxn");
    let db = Database::open(&dir).unwrap();
    let t = db.create_table("T", schema()).unwrap();
    t.insert(&row(0)).unwrap();

    let mut tx = db.begin();
    tx.insert(&t, &row(1)).unwrap();
    let vt = tx.read_view().table("T").unwrap();
    assert_eq!(vt.scan().unwrap().len(), 1, "in-flight insert is invisible");
    tx.commit().unwrap();

    let view = db.begin_read();
    assert_eq!(view.table("T").unwrap().scan().unwrap().len(), 2);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Checkpoints wait up to `max_view_lag` for stale views, then evict the
/// stragglers; current-version views survive checkpoints untouched.
#[test]
fn checkpoint_evicts_views_lagging_past_max_view_lag() {
    let dir = temp_dir("evict");
    let opts = DbOptions {
        max_view_lag: Duration::from_millis(20),
        ..DbOptions::default()
    };
    let db = Database::open_with(&dir, opts).unwrap();
    let t = db.create_table("T", schema()).unwrap();
    for k in 0..50 {
        t.insert(&row(k)).unwrap();
    }
    db.checkpoint().unwrap();

    // Laggard: pinned before the next commit, held across the checkpoint.
    let laggard = db.begin_read();
    let laggard_table = laggard.table("T").unwrap();
    assert_eq!(laggard_table.scan().unwrap().len(), 50);

    let mut tx = db.begin();
    tx.insert(&t, &row(999)).unwrap();
    tx.commit().unwrap();

    // Fresh view at the current version: checkpoints never evict it.
    let current = db.begin_read();

    db.checkpoint().unwrap();
    assert!(
        laggard.is_evicted(),
        "stale view evicted after the lag grace"
    );
    assert!(!current.is_evicted(), "current-version view survives");
    assert!(
        matches!(laggard_table.scan(), Err(StoreError::ViewEvicted)),
        "evicted views fail loudly instead of lying"
    );
    assert_eq!(current.table("T").unwrap().scan().unwrap().len(), 51);
    assert!(db.mvcc_stats().views_evicted >= 1);
    std::fs::remove_dir_all(&dir).unwrap();
}
