//! Engine-level integration tests: cross-table transactions, checkpoint
//! policy, crash equivalence, and corruption handling.

use netmark_relstore::{ColumnType, Database, DbOptions, Schema, StoreError, Value};
use std::path::PathBuf;

fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("relstore-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn two_col() -> Schema {
    Schema::new(&[("k", ColumnType::Int), ("v", ColumnType::Text)])
}

#[test]
fn transaction_spans_tables_atomically() {
    let dir = scratch("atomic");
    let db = Database::open(&dir).unwrap();
    let a = db.create_table("a", two_col()).unwrap();
    let b = db.create_table("b", two_col()).unwrap();
    // Committed cross-table writes land together…
    let mut tx = db.begin();
    tx.insert(&a, &vec![Value::Int(1), Value::from("a1")])
        .unwrap();
    tx.insert(&b, &vec![Value::Int(1), Value::from("b1")])
        .unwrap();
    tx.commit().unwrap();
    // …and aborted ones vanish together.
    let mut tx = db.begin();
    tx.insert(&a, &vec![Value::Int(2), Value::from("a2")])
        .unwrap();
    tx.insert(&b, &vec![Value::Int(2), Value::from("b2")])
        .unwrap();
    tx.abort().unwrap();
    assert_eq!(a.count().unwrap(), 1);
    assert_eq!(b.count().unwrap(), 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn wal_threshold_triggers_auto_checkpoint() {
    let dir = scratch("autockpt");
    let opts = DbOptions {
        checkpoint_wal_bytes: 4096, // tiny, to force checkpoints
        ..DbOptions::default()
    };
    let db = Database::open_with(&dir, opts).unwrap();
    let t = db.create_table("t", two_col()).unwrap();
    for i in 0..200i64 {
        t.insert(&vec![Value::Int(i), Value::from("x".repeat(50).as_str())])
            .unwrap();
    }
    // The WAL must have been truncated at least once: it cannot hold all
    // 200 inserts' worth of records.
    let wal_len = std::fs::metadata(dir.join("wal.log")).unwrap().len();
    assert!(wal_len < 200 * 60, "wal stayed bounded: {wal_len} bytes");
    // And the data is all there after reopen.
    drop(db);
    let db = Database::open(&dir).unwrap();
    assert_eq!(db.table("t").unwrap().count().unwrap(), 200);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn crash_equivalence_under_random_ops() {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let dir = scratch("equiv");
    let mut model: std::collections::BTreeMap<i64, String> = std::collections::BTreeMap::new();
    {
        let db = Database::open(&dir).unwrap();
        let t = db.create_table("t", two_col()).unwrap();
        db.create_index("t", "by_k", &["k"], true).unwrap();
        let mut rng = SmallRng::seed_from_u64(11);
        let mut rids = std::collections::HashMap::new();
        for step in 0..400 {
            let k = rng.gen_range(0..80i64);
            match rng.gen_range(0..3) {
                0 => {
                    // Insert or replace via delete+insert.
                    if let Some(rid) = rids.remove(&k) {
                        t.delete(rid).unwrap();
                        model.remove(&k);
                    }
                    let v = format!("v{step}");
                    let rid = t
                        .insert(&vec![Value::Int(k), Value::from(v.as_str())])
                        .unwrap();
                    rids.insert(k, rid);
                    model.insert(k, v);
                }
                1 => {
                    if let Some(&rid) = rids.get(&k) {
                        let v = format!("u{step}");
                        t.update(rid, &vec![Value::Int(k), Value::from(v.as_str())])
                            .unwrap();
                        model.insert(k, v);
                    }
                }
                _ => {
                    if let Some(rid) = rids.remove(&k) {
                        t.delete(rid).unwrap();
                        model.remove(&k);
                    }
                }
            }
        }
        // Crash (no checkpoint).
    }
    let db = Database::open(&dir).unwrap();
    let t = db.table("t").unwrap();
    let mut got: std::collections::BTreeMap<i64, String> = t
        .scan()
        .unwrap()
        .into_iter()
        .map(|(_, row)| {
            (
                row[0].as_int().unwrap(),
                row[1].as_text().unwrap().to_string(),
            )
        })
        .collect();
    assert_eq!(
        got, model,
        "post-crash state equals pre-crash committed state"
    );
    // The rebuilt unique index agrees with the heap.
    for (k, v) in model.iter().take(20) {
        let rids = t.index_lookup("by_k", &[Value::Int(*k)]).unwrap();
        assert_eq!(rids.len(), 1);
        assert_eq!(t.get(rids[0]).unwrap()[1].as_text().unwrap(), v);
    }
    got.clear();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupt_catalog_is_reported_not_panicked() {
    let dir = scratch("badcat");
    {
        let db = Database::open(&dir).unwrap();
        db.create_table("t", two_col()).unwrap();
        db.checkpoint().unwrap();
    }
    std::fs::write(dir.join("catalog.nmk"), "table garbage here\n").unwrap();
    match Database::open(&dir) {
        Err(StoreError::Corrupt(msg)) => assert!(msg.contains("catalog")),
        Err(other) => panic!("expected Corrupt error, got {other}"),
        Ok(_) => panic!("expected Corrupt error, got a database"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn nonsynced_commits_may_lose_but_never_corrupt() {
    let dir = scratch("nosync");
    {
        let opts = DbOptions {
            sync_commits: false,
            ..DbOptions::default()
        };
        let db = Database::open_with(&dir, opts).unwrap();
        let t = db.create_table("t", two_col()).unwrap();
        for i in 0..50i64 {
            t.insert(&vec![Value::Int(i), Value::from("x")]).unwrap();
        }
        // Crash without sync: rows may or may not survive (the OS may have
        // flushed), but the database must open cleanly either way.
    }
    let db = Database::open(&dir).unwrap();
    let t = db.table("t").unwrap();
    let n = t.count().unwrap();
    assert!(n <= 50);
    // Still writable.
    t.insert(&vec![Value::Int(999), Value::from("post")])
        .unwrap();
    assert_eq!(t.count().unwrap(), n + 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checkpoint_then_crash_loses_nothing_and_replays_nothing() {
    let dir = scratch("ckptcrash");
    {
        let db = Database::open(&dir).unwrap();
        let t = db.create_table("t", two_col()).unwrap();
        for i in 0..30i64 {
            t.insert(&vec![Value::Int(i), Value::from("pre")]).unwrap();
        }
        db.checkpoint().unwrap();
        for i in 30..40i64 {
            t.insert(&vec![Value::Int(i), Value::from("post")]).unwrap();
        }
        // Crash: 0..30 checkpointed, 30..40 only in the WAL.
    }
    let db = Database::open(&dir).unwrap();
    assert_eq!(db.table("t").unwrap().count().unwrap(), 40);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn second_begin_would_deadlock_so_txns_are_exclusive() {
    // Single-writer: a second begin() blocks until the first finishes —
    // verified by running them from two threads.
    let dir = scratch("excl");
    let db = Database::open(&dir).unwrap();
    let t = db.create_table("t", two_col()).unwrap();
    let db2 = db.clone();
    let t2 = t.clone();
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(2));
    let b2 = std::sync::Arc::clone(&barrier);
    let handle = std::thread::spawn(move || {
        b2.wait();
        // This blocks until the main thread's txn commits.
        let mut tx = db2.begin();
        tx.insert(&t2, &vec![Value::Int(2), Value::from("second")])
            .unwrap();
        tx.commit().unwrap();
    });
    let mut tx = db.begin();
    tx.insert(&t, &vec![Value::Int(1), Value::from("first")])
        .unwrap();
    barrier.wait();
    std::thread::sleep(std::time::Duration::from_millis(50));
    tx.commit().unwrap();
    handle.join().unwrap();
    assert_eq!(t.count().unwrap(), 2);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn index_prefix_and_range_scans() {
    let dir = scratch("idxscan");
    let db = Database::open(&dir).unwrap();
    let t = db
        .create_table(
            "t",
            Schema::new(&[("cat", ColumnType::Text), ("n", ColumnType::Int)]),
        )
        .unwrap();
    db.create_index("t", "by_cat_n", &["cat", "n"], false)
        .unwrap();
    for cat in ["alpha", "beta"] {
        for n in 0..10i64 {
            t.insert(&vec![Value::from(cat), Value::Int(n)]).unwrap();
        }
    }
    // Prefix over the leading column.
    let hits = t.index_prefix("by_cat_n", &[Value::from("alpha")]).unwrap();
    assert_eq!(hits.len(), 10);
    for rid in &hits {
        assert_eq!(t.get(*rid).unwrap()[0], Value::from("alpha"));
    }
    // Range over the composite: alpha rows with 3 <= n <= 6.
    let hits = t
        .index_range(
            "by_cat_n",
            &[Value::from("alpha"), Value::Int(3)],
            &[Value::from("alpha"), Value::Int(6)],
        )
        .unwrap();
    let ns: Vec<i64> = hits
        .iter()
        .map(|rid| t.get(*rid).unwrap()[1].as_int().unwrap())
        .collect();
    assert_eq!(
        ns,
        vec![3, 4, 5, 6],
        "range scan is ordered and inclusive of the hi prefix"
    );
    // Empty prefix matches everything.
    assert_eq!(t.index_prefix("by_cat_n", &[]).unwrap().len(), 20);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Crash mid-group-commit: the WAL tail past the last physical fsync is
/// what a crash can lose. Truncating the log to its last-synced length
/// simulates exactly that; everything synced must replay, and losing the
/// deferred window must drop whole transactions, never partial ones.
#[test]
fn group_commit_crash_loses_at_most_the_open_window() {
    let dir = scratch("groupcrash");
    let synced_len;
    {
        let opts = DbOptions {
            sync_commits: true,
            group_commit_window: std::time::Duration::from_secs(3600),
            ..DbOptions::default()
        };
        let db = Database::open_with(&dir, opts).unwrap();
        let t = db.create_table("t", two_col()).unwrap();
        // Batch A: 10 commits inside the window, then an explicit sync —
        // one fsync covers all ten.
        for i in 0..10i64 {
            t.insert(&vec![Value::Int(i), Value::from("synced")])
                .unwrap();
        }
        db.sync_wal().unwrap();
        let stats = db.wal_stats();
        assert_eq!(stats.commits, 10);
        assert!(
            stats.syncs <= 2,
            "10 commits shared at most 2 fsyncs, got {}",
            stats.syncs
        );
        assert!(stats.fsyncs_saved() >= 8);
        synced_len = std::fs::metadata(dir.join("wal.log")).unwrap().len();
        // Batch B: 5 more commits, deferred by the 1h window.
        for i in 10..15i64 {
            t.insert(&vec![Value::Int(i), Value::from("deferred")])
                .unwrap();
        }
        // Crash: no Drop (which would sync), no checkpoint.
        std::mem::forget(db);
        std::mem::forget(t);
    }
    // The unsynced tail never reached disk.
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(dir.join("wal.log"))
        .unwrap();
    f.set_len(synced_len).unwrap();
    drop(f);
    {
        let db = Database::open(&dir).unwrap();
        let t = db.table("t").unwrap();
        let rows = t.scan().unwrap();
        assert_eq!(rows.len(), 10, "every synced commit survives");
        for (_, row) in &rows {
            assert_eq!(row[1], Value::from("synced"));
        }
    }
    // Replay is idempotent: a second reopen sees the identical state.
    {
        let db = Database::open(&dir).unwrap();
        assert_eq!(db.table("t").unwrap().count().unwrap(), 10);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A torn frame inside the deferred window: transactions wholly before the
/// tear survive, the torn one disappears atomically.
#[test]
fn group_commit_torn_tail_drops_whole_transactions() {
    let dir = scratch("grouptorn");
    {
        let opts = DbOptions {
            sync_commits: true,
            group_commit_window: std::time::Duration::from_secs(3600),
            ..DbOptions::default()
        };
        let db = Database::open_with(&dir, opts).unwrap();
        let t = db.create_table("t", two_col()).unwrap();
        for i in 0..8i64 {
            t.insert(&vec![Value::Int(i), Value::from("w")]).unwrap();
        }
        std::mem::forget(db);
        std::mem::forget(t);
    }
    // Chop the log mid-frame (not at a record boundary) to fake a torn
    // write of the deferred tail.
    let len = std::fs::metadata(dir.join("wal.log")).unwrap().len();
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(dir.join("wal.log"))
        .unwrap();
    f.set_len(len - 7).unwrap();
    drop(f);
    let db = Database::open(&dir).unwrap();
    let rows = db.table("t").unwrap().scan().unwrap();
    // The last commit straddles the tear; everything else is intact.
    assert_eq!(rows.len(), 7, "torn commit vanished atomically");
    for (i, (_, row)) in rows.iter().enumerate() {
        assert_eq!(row[0], Value::Int(i as i64));
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Clean shutdown inside the window loses nothing: Drop flushes the WAL.
#[test]
fn group_commit_clean_shutdown_is_durable() {
    let dir = scratch("groupclean");
    {
        let opts = DbOptions {
            sync_commits: true,
            group_commit_window: std::time::Duration::from_secs(3600),
            ..DbOptions::default()
        };
        let db = Database::open_with(&dir, opts).unwrap();
        let t = db.create_table("t", two_col()).unwrap();
        for i in 0..12i64 {
            t.insert(&vec![Value::Int(i), Value::from("v")]).unwrap();
        }
        // Drop without checkpoint: the deferred commits must still be
        // fsynced on the way out.
    }
    let db = Database::open(&dir).unwrap();
    assert_eq!(db.table("t").unwrap().count().unwrap(), 12);
    std::fs::remove_dir_all(&dir).unwrap();
}
