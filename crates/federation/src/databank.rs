//! Databanks and the thin router.
//!
//! "This is done through a simple declarative process where an
//! administrator creates a 'Databank' for an application. The databank
//! specifies what sources are to be queried when a user fires a query to
//! that application" (§2.1.5). The router is the entirety of the
//! middleware — "middleware requirements are reduced to needing just a thin
//! router capability across the various information sources" — it holds no
//! schemas and no mappings, only the source lists.

use crate::adapter::{Capabilities, SourceAdapter, SourceError};
use crate::matcher::{match_document, score_hits};
use netmark::{merge_scored, scatter, SourceMetrics, SourceStats};
use netmark_xdb::{Hit, RankMode, ResultSet, XdbQuery};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Ceiling on the [`default_max_fanout`] heuristic. Federation latency is
/// dominated by source round-trips, not local CPU, so past this point more
/// threads only add contention on the merge.
pub const DEFAULT_MAX_FANOUT: usize = 8;

/// Default cap on concurrent source queries per federated query:
/// `min(available_parallelism, `[`DEFAULT_MAX_FANOUT`]`)`, so a 4-core box
/// does not spawn 8 fan-out threads per query. [`Router::set_max_fanout`]
/// overrides.
pub fn default_max_fanout() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(DEFAULT_MAX_FANOUT)
        .min(DEFAULT_MAX_FANOUT)
}

/// A declared databank: an application's source list. This — a name and a
/// list of source names — is the *complete* integration specification; its
/// size is what the Fig 1 experiment measures on the NETMARK side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Databank {
    /// Application name.
    pub name: String,
    /// Sources queried when a query names this databank.
    pub sources: Vec<String>,
}

impl Databank {
    /// The declarative spec text (one line per field — the artifact whose
    /// line count is the NETMARK integration cost).
    pub fn spec(&self) -> String {
        let mut s = format!("databank {}\n", self.name);
        for src in &self.sources {
            s.push_str("  source ");
            s.push_str(src);
            s.push('\n');
        }
        s
    }

    /// Parses a spec produced by [`Databank::spec`].
    pub fn parse(text: &str) -> Option<Databank> {
        let mut name = None;
        let mut sources = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if let Some(n) = line.strip_prefix("databank ") {
                name = Some(n.trim().to_string());
            } else if let Some(s) = line.strip_prefix("source ") {
                sources.push(s.trim().to_string());
            }
        }
        Some(Databank {
            name: name?,
            sources,
        })
    }

    /// Number of spec lines — the integration-cost unit for Fig 1.
    pub fn spec_lines(&self) -> usize {
        1 + self.sources.len()
    }
}

/// Router errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouterError {
    /// Databank name not declared.
    NoSuchDatabank(String),
    /// Source name not registered.
    NoSuchSource(String),
    /// Name collision on registration.
    Duplicate(String),
    /// A configuration value outside its valid range (e.g. a fan-out cap
    /// of zero, which would make every federated query hang).
    InvalidConfig(String),
}

impl fmt::Display for RouterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouterError::NoSuchDatabank(n) => write!(f, "no databank '{n}'"),
            RouterError::NoSuchSource(n) => write!(f, "no source '{n}'"),
            RouterError::Duplicate(n) => write!(f, "'{n}' already registered"),
            RouterError::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
        }
    }
}

impl std::error::Error for RouterError {}

/// What happened at one source during a federated query.
#[derive(Debug, Clone)]
pub struct SourceOutcome {
    /// Source name.
    pub source: String,
    /// The (possibly weakened) query actually pushed to the source.
    pub pushed: XdbQuery,
    /// Whether the router had to augment (re-evaluate the residual).
    pub augmented: bool,
    /// Hits contributed after augmentation.
    pub hits: usize,
    /// Documents fetched back for augmentation.
    pub documents_fetched: usize,
    /// Wall time this source took (including augmentation fetches, or the
    /// time spent discovering a failure).
    pub latency: Duration,
    /// The query was answered from the breaker, not the wire.
    pub short_circuited: bool,
    /// Error, if the source failed (the query continues without it).
    pub error: Option<String>,
}

/// A federated answer: merged results + per-source diagnostics.
#[derive(Debug, Clone)]
pub struct FederatedResult {
    /// Merged hits, tagged with their source.
    pub results: ResultSet,
    /// Per-source report, in databank order.
    pub outcomes: Vec<SourceOutcome>,
}

impl FederatedResult {
    /// True if at least one source failed.
    pub fn degraded(&self) -> bool {
        self.outcomes.iter().any(|o| o.error.is_some())
    }
}

/// The thin router: source registry + databank registry. No schemas, no
/// mappings, no view definitions — *that is the point*.
pub struct Router {
    adapters: BTreeMap<String, Arc<dyn SourceAdapter>>,
    databanks: BTreeMap<String, Databank>,
    metrics: BTreeMap<String, Arc<SourceMetrics>>,
    max_fanout: usize,
}

impl Default for Router {
    fn default() -> Self {
        Router {
            adapters: BTreeMap::new(),
            databanks: BTreeMap::new(),
            metrics: BTreeMap::new(),
            max_fanout: default_max_fanout(),
        }
    }
}

impl Router {
    /// Empty router.
    pub fn new() -> Router {
        Router::default()
    }

    /// Caps concurrent source queries per federated query. A databank can
    /// name hundreds of sources; without a cap each query would spawn one
    /// thread per source. Zero is rejected (it used to clamp to 1
    /// silently, masking configuration mistakes).
    pub fn set_max_fanout(&mut self, n: usize) -> Result<(), RouterError> {
        if n == 0 {
            return Err(RouterError::InvalidConfig(
                "max_fanout must be at least 1".to_string(),
            ));
        }
        self.max_fanout = n;
        Ok(())
    }

    /// The current fan-out cap.
    pub fn max_fanout(&self) -> usize {
        self.max_fanout
    }

    /// Registers a source adapter.
    pub fn register_source(&mut self, adapter: Arc<dyn SourceAdapter>) -> Result<(), RouterError> {
        let name = adapter.name().to_string();
        if self.adapters.contains_key(&name) {
            return Err(RouterError::Duplicate(name));
        }
        self.metrics
            .insert(name.clone(), Arc::new(SourceMetrics::default()));
        self.adapters.insert(name, adapter);
        Ok(())
    }

    /// Per-source health counters: latency, failures, breaker activity.
    pub fn source_stats(&self) -> BTreeMap<String, SourceStats> {
        self.metrics
            .iter()
            .map(|(name, m)| {
                let mut s = m.snapshot();
                // Breaker opens are owned by the adapter's state machine
                // (only it knows when the threshold tripped); splice the
                // live counter into the router's view.
                if let Some(a) = self.adapters.get(name) {
                    s.breaker_opens = a.breaker_opens();
                }
                (name.clone(), s)
            })
            .collect()
    }

    /// Declares a databank over registered sources.
    pub fn define_databank(&mut self, name: &str, sources: &[&str]) -> Result<(), RouterError> {
        if self.databanks.contains_key(name) {
            return Err(RouterError::Duplicate(name.to_string()));
        }
        for s in sources {
            if !self.adapters.contains_key(*s) {
                return Err(RouterError::NoSuchSource(s.to_string()));
            }
        }
        self.databanks.insert(
            name.to_string(),
            Databank {
                name: name.to_string(),
                sources: sources.iter().map(|s| s.to_string()).collect(),
            },
        );
        Ok(())
    }

    /// Declared databank by name.
    pub fn databank(&self, name: &str) -> Option<&Databank> {
        self.databanks.get(name)
    }

    /// Total spec lines across all databanks (NETMARK's Fig 1 cost).
    pub fn total_spec_lines(&self) -> usize {
        self.databanks.values().map(Databank::spec_lines).sum()
    }

    /// Weakens `q` to what `caps` supports; returns `(pushed, residual)`.
    /// `residual = true` means the router must augment locally.
    fn decompose(q: &XdbQuery, caps: Capabilities) -> (XdbQuery, bool) {
        let mut pushed = q.clone();
        let mut residual = false;
        if q.context.is_some() && !caps.context_search {
            pushed.context = None;
            residual = true;
        }
        if q.content.is_some() && !caps.content_search {
            pushed.content = None;
            residual = true;
        }
        if !caps.structured_results && (q.context.is_some() || q.content.is_some()) {
            // Unsectioned answers always need local sectioning.
            residual = true;
        }
        let mut rank_stripped = false;
        if q.ranked() && !caps.ranked {
            // The source predates ranking (wire v1, or a content-only
            // server): push the same match set unranked and score the
            // answers here. This is not a residual — the *match set* is
            // fully evaluated at the source — but the limit still cannot
            // be pushed: an unranked source returns its first `limit`
            // hits, which need not be its best-scoring ones.
            pushed.rank = RankMode::None;
            rank_stripped = true;
        }
        // Limit pushdown: when the source evaluates the whole query (no
        // local post-processing) the global `limit=` is also a valid
        // per-source upper bound — no merged answer can use more than
        // `limit` hits from one source — so pushing it cuts wire traffic
        // from remote peers. Never push it when we post-process: the
        // residual filter may discard pushed hits, and truncating early
        // would lose answers. Global truncation still happens once, in
        // [`Router::query`].
        if residual || rank_stripped {
            pushed.limit = None;
        }
        // Score-floor pushdown (negotiated behind the `min-score`
        // capability bit): only a source that ranks natively and knows the
        // key gets it — an older peer's parser would reject the unknown
        // query key outright, and a residual-weakened or rank-stripped
        // query scores on a different axis than the floor describes. When
        // it cannot travel, the floor is applied router-side after
        // [`score_hits`] instead.
        if pushed.min_score.is_some() && !(caps.min_score && !rank_stripped && !residual) {
            pushed.min_score = None;
        }
        pushed.xslt = None; // composition happens at the client, once
        pushed.databank = None;
        (pushed, residual)
    }

    /// Queries one source, augmenting as needed.
    fn query_source(&self, adapter: &dyn SourceAdapter, q: &XdbQuery) -> (SourceOutcome, Vec<Hit>) {
        let start = Instant::now();
        let (mut outcome, hits) = self.query_source_inner(adapter, q);
        outcome.latency = start.elapsed();
        if let Some(m) = self.metrics.get(&outcome.source) {
            if outcome.short_circuited {
                m.record_short_circuit();
            }
            m.record_query(hits.len() as u64, outcome.latency, outcome.error.is_some());
        }
        (outcome, hits)
    }

    fn query_source_inner(
        &self,
        adapter: &dyn SourceAdapter,
        q: &XdbQuery,
    ) -> (SourceOutcome, Vec<Hit>) {
        let caps = adapter.capabilities();
        let (pushed, residual) = Router::decompose(q, caps);
        let mut outcome = SourceOutcome {
            source: adapter.name().to_string(),
            pushed: pushed.clone(),
            augmented: residual,
            hits: 0,
            documents_fetched: 0,
            latency: Duration::ZERO,
            short_circuited: false,
            error: None,
        };
        let initial = match adapter.search(&pushed) {
            Ok(rs) => rs,
            Err(e) => {
                outcome.short_circuited = matches!(e, SourceError::CircuitOpen(_));
                outcome.error = Some(e.to_string());
                return (outcome, Vec::new());
            }
        };
        let mut hits: Vec<Hit> = if residual {
            // Fetch each candidate document once; re-evaluate the full
            // query over it locally.
            let mut doc_names: Vec<&str> = Vec::new();
            for h in &initial.hits {
                if !doc_names.contains(&h.doc.as_str()) {
                    doc_names.push(&h.doc);
                }
            }
            let mut out = Vec::new();
            for name in doc_names {
                match adapter.fetch_document(name) {
                    Ok(doc) => {
                        outcome.documents_fetched += 1;
                        for mut hit in match_document(&doc, q) {
                            hit.source = adapter.name().to_string();
                            out.push(hit);
                        }
                    }
                    Err(e) => {
                        // Keep going; record the first fetch failure.
                        if outcome.error.is_none() {
                            outcome.error = Some(format!("fetch {name}: {e}"));
                        }
                    }
                }
            }
            out
        } else {
            initial
                .hits
                .into_iter()
                .map(|mut h| {
                    h.source = adapter.name().to_string();
                    h
                })
                .collect()
        };
        if q.ranked() {
            // Augmentation for the ranking fragment: hits from sources
            // that could not score (rank stripped, or residual-matched
            // locally) get a router-side relevance score so the merge
            // compares every hit on the same axis.
            score_hits(&mut hits, q);
            if let Some(floor) = q.min_score {
                if pushed.min_score.is_none() {
                    // The source never saw the floor; enforce it here with
                    // the same strict cut a capable peer applies.
                    hits.retain(|h| h.score.map(|s| s > floor).unwrap_or(false));
                }
            }
        }
        outcome.hits = hits.len();
        outcome.pushed = pushed;
        (outcome, hits)
    }

    /// Runs `q` against every source of `databank`, in parallel, merging
    /// the answers "on the fly". Failed sources degrade the answer rather
    /// than failing it.
    pub fn query(&self, databank: &str, q: &XdbQuery) -> Result<FederatedResult, RouterError> {
        let bank = self
            .databanks
            .get(databank)
            .ok_or_else(|| RouterError::NoSuchDatabank(databank.to_string()))?;
        let adapters: Vec<Arc<dyn SourceAdapter>> = bank
            .sources
            .iter()
            .map(|s| {
                self.adapters
                    .get(s)
                    .cloned()
                    .ok_or_else(|| RouterError::NoSuchSource(s.clone()))
            })
            .collect::<Result<_, _>>()?;
        // Fan out in parallel ("We can access multiple distributed
        // information sources simultaneously") through the shared bounded
        // scatter executor — the same code path the shard-per-core store
        // uses for local shards, here with a remote-adapter transport.
        let per_source: Vec<(SourceOutcome, Vec<Hit>)> =
            scatter(&adapters, self.max_fanout, |_, a| {
                self.query_source(a.as_ref(), q)
            });
        // Merge; apply the limit once, globally. Unranked queries merge in
        // databank order (the exact pre-v2 behaviour, byte for byte);
        // ranked queries merge by score through the same policy the
        // shard-per-core store uses, tie-breaking on databank order.
        let mut results = ResultSet::new();
        let mut outcomes = Vec::with_capacity(per_source.len());
        if q.ranked() {
            let mut keyed: Vec<(u64, Hit)> = Vec::new();
            for (ordinal, (o, hits)) in per_source.into_iter().enumerate() {
                keyed.extend(hits.into_iter().map(|h| (ordinal as u64, h)));
                outcomes.push(o);
            }
            merge_scored(&mut keyed);
            results.hits = keyed.into_iter().map(|(_, h)| h).collect();
            results.ranked = true;
        } else {
            for (o, mut hits) in per_source {
                results.hits.append(&mut hits);
                outcomes.push(o);
            }
        }
        results.candidates = results.hits.len();
        if let Some(limit) = q.limit {
            if results.hits.len() > limit {
                results.hits.truncate(limit);
                results.truncated = true;
            }
        }
        Ok(FederatedResult { results, outcomes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapter::{ContentOnlySource, FlakySource, NetmarkSource};
    use netmark::NetMark;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    fn temp_nm(tag: &str) -> (Arc<NetMark>, PathBuf) {
        let dir = std::env::temp_dir().join(format!("netmark-fed-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        (Arc::new(NetMark::open(&dir).unwrap()), dir)
    }

    fn build_router(tag: &str) -> (Router, Vec<PathBuf>) {
        let (nm1, d1) = temp_nm(&format!("{tag}-a"));
        nm1.insert_file(
            "plan-a.wdoc",
            "<<Heading1>> Budget\n<<Normal>> two million dollars\n<<Heading1>> Risks\n<<Normal>> engine schedule slip\n",
        )
        .unwrap();
        let (nm2, d2) = temp_nm(&format!("{tag}-b"));
        nm2.insert_file("plan-b.txt", "# Budget\none million dollars\n")
            .unwrap();
        let llis = ContentOnlySource::new(
            "llis",
            vec![(
                "ll-1.txt".to_string(),
                "# Title\nEngine anomaly\n# Lesson\nInspect the harness\n".to_string(),
            )],
        );
        let mut router = Router::new();
        router
            .register_source(Arc::new(NetmarkSource::new("ames", nm1)))
            .unwrap();
        router
            .register_source(Arc::new(NetmarkSource::new("jsc", nm2)))
            .unwrap();
        router.register_source(Arc::new(llis)).unwrap();
        router
            .define_databank("apps", &["ames", "jsc", "llis"])
            .unwrap();
        (router, vec![d1, d2])
    }

    fn cleanup(dirs: Vec<PathBuf>) {
        for d in dirs {
            let _ = std::fs::remove_dir_all(&d);
        }
    }

    #[test]
    fn fans_out_to_all_sources() {
        let (router, dirs) = build_router("fan");
        let fr = router.query("apps", &XdbQuery::context("Budget")).unwrap();
        assert_eq!(fr.results.len(), 2, "both NETMARK peers answer");
        let sources: Vec<&str> = fr.results.hits.iter().map(|h| h.source.as_str()).collect();
        assert!(sources.contains(&"ames"));
        assert!(sources.contains(&"jsc"));
        assert!(!fr.degraded());
        assert_eq!(fr.outcomes.len(), 3);
        cleanup(dirs);
    }

    #[test]
    fn paper_llis_augmentation() {
        let (router, dirs) = build_router("aug");
        // Context=Title & Content=Engine: llis can only evaluate the
        // content part; the router augments the Title extraction.
        let fr = router
            .query("apps", &XdbQuery::context_content("Title", "Engine"))
            .unwrap();
        let llis_hits: Vec<_> = fr
            .results
            .hits
            .iter()
            .filter(|h| h.source == "llis")
            .collect();
        assert_eq!(llis_hits.len(), 1);
        assert_eq!(llis_hits[0].context, "Title");
        assert!(llis_hits[0].content_text().contains("Engine anomaly"));
        let o = fr.outcomes.iter().find(|o| o.source == "llis").unwrap();
        assert!(o.augmented);
        assert!(o.pushed.context.is_none(), "context was not pushed down");
        assert_eq!(o.pushed.content.as_deref(), Some("Engine"));
        assert_eq!(o.documents_fetched, 1);
        // The full NETMARK peers got the whole query pushed.
        let o = fr.outcomes.iter().find(|o| o.source == "ames").unwrap();
        assert!(!o.augmented);
        assert!(o.pushed.context.is_some());
        cleanup(dirs);
    }

    #[test]
    fn mixed_capability_ranked_merge_agrees_on_top_k() {
        // Deployment A: a ranked NETMARK peer + the unranked Lessons
        // Learned server. Deployment B: the same corpora as two full
        // NETMARK peers. Scores come from different scorers (peer BM25,
        // router TF augmentation, peer-local BM25 over different corpus
        // statistics), so the cross-deployment guarantee is *set* equality
        // of the top-k, not byte equality.
        let heavy = "# Report\nengine engine engine engine engine engine\n";
        let filler = "# Report\nfiller text only\n";
        let llis_docs = vec![
            ("ll-1.txt".to_string(), "# Title\nengine note\n".to_string()),
            ("ll-2.txt".to_string(), "# Title\nengine memo\n".to_string()),
        ];

        let (nm1, d1) = temp_nm("mix-a");
        nm1.insert_file("heavy1.txt", heavy).unwrap();
        nm1.insert_file("heavy2.txt", heavy).unwrap();
        for i in 0..6 {
            nm1.insert_file(&format!("filler{i}.txt"), filler).unwrap();
        }

        let mut mixed = Router::new();
        mixed
            .register_source(Arc::new(NetmarkSource::new("ames", Arc::clone(&nm1))))
            .unwrap();
        mixed
            .register_source(Arc::new(ContentOnlySource::new("llis", llis_docs.clone())))
            .unwrap();
        mixed.define_databank("apps", &["ames", "llis"]).unwrap();

        let (nm2, d2) = temp_nm("mix-b");
        for (n, text) in &llis_docs {
            nm2.insert_file(n, text).unwrap();
        }
        let mut full = Router::new();
        full.register_source(Arc::new(NetmarkSource::new("ames", Arc::clone(&nm1))))
            .unwrap();
        full.register_source(Arc::new(NetmarkSource::new("llis", nm2)))
            .unwrap();
        full.define_databank("apps", &["ames", "llis"]).unwrap();

        let q = XdbQuery::content("engine")
            .with_rank(RankMode::Bm25)
            .with_limit(2);
        let a = mixed.query("apps", &q).unwrap();
        let b = full.query("apps", &q).unwrap();
        assert!(a.results.ranked && b.results.ranked);
        assert!(
            a.results.hits.iter().all(|h| h.score.is_some()),
            "every merged hit is scored, augmented sources included"
        );
        let top = |fr: &FederatedResult| -> std::collections::BTreeSet<String> {
            fr.results.hits.iter().map(|h| h.doc.clone()).collect()
        };
        let expected: std::collections::BTreeSet<String> = ["heavy1.txt", "heavy2.txt"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(top(&a), expected, "high-tf docs win the merged top-k");
        assert_eq!(
            top(&a),
            top(&b),
            "mixed-capability and all-full deployments agree on the top-k set"
        );

        // The unranked source had rank= (and therefore the limit) stripped
        // at pushdown; the ranked peer evaluated both natively.
        let llis_o = a.outcomes.iter().find(|o| o.source == "llis").unwrap();
        assert_eq!(llis_o.pushed.rank, RankMode::None);
        assert!(llis_o.pushed.limit.is_none());
        let ames_o = a.outcomes.iter().find(|o| o.source == "ames").unwrap();
        assert_eq!(ames_o.pushed.rank, RankMode::Bm25);
        assert_eq!(ames_o.pushed.limit, Some(2));

        cleanup(vec![d1, d2]);
    }

    #[test]
    fn min_score_pushes_to_capable_peers_and_filters_the_rest() {
        let (router, dirs) = build_router("floor");
        let base = XdbQuery::content("Engine").with_rank(RankMode::Bm25);
        // A floor of 0.0 keeps everything scoring positive — both the
        // NETMARK hit and the router-scored llis hit survive.
        let fr = router
            .query("apps", &base.clone().with_min_score(0.0))
            .unwrap();
        let sources: Vec<&str> = fr.results.hits.iter().map(|h| h.source.as_str()).collect();
        assert!(sources.contains(&"ames"));
        assert!(sources.contains(&"llis"));
        let ames = fr.outcomes.iter().find(|o| o.source == "ames").unwrap();
        assert_eq!(
            ames.pushed.min_score,
            Some(0.0),
            "negotiated peer evaluates the floor natively"
        );
        let llis = fr.outcomes.iter().find(|o| o.source == "llis").unwrap();
        assert!(
            llis.pushed.min_score.is_none(),
            "the floor key never reaches a peer that has not negotiated it"
        );
        // An unreachable floor filters every source's hits — the ranked
        // peer at the source, llis at the router after scoring.
        let fr = router
            .query("apps", &base.clone().with_min_score(1e9))
            .unwrap();
        assert!(fr.results.hits.is_empty());
        assert!(!fr.degraded());
        cleanup(dirs);
    }

    #[test]
    fn unranked_federated_answers_keep_v1_bytes_and_order() {
        // rank=none through the router is the exact pre-ranking pathway:
        // databank-order merge, no scores, wire-v1 rendering.
        let (router, dirs) = build_router("v1bytes");
        let fr = router.query("apps", &XdbQuery::context("Budget")).unwrap();
        assert!(!fr.results.ranked);
        assert!(fr.results.hits.iter().all(|h| h.score.is_none()));
        let xml = fr.results.to_xml();
        assert!(xml.contains("version=\"1\""), "{xml}");
        assert!(!xml.contains("score"), "{xml}");
        assert!(!xml.contains("ranked"), "{xml}");
        cleanup(dirs);
    }

    #[test]
    fn failed_source_degrades_gracefully() {
        let (nm1, d1) = temp_nm("deg-a");
        nm1.insert_file("p.txt", "# Budget\nmoney\n").unwrap();
        let (nm2, d2) = temp_nm("deg-b");
        nm2.insert_file("q.txt", "# Budget\nmore money\n").unwrap();
        let mut router = Router::new();
        router
            .register_source(Arc::new(NetmarkSource::new("up", nm1)))
            .unwrap();
        router
            .register_source(Arc::new(FlakySource::down(NetmarkSource::new("down", nm2))))
            .unwrap();
        router.define_databank("apps", &["up", "down"]).unwrap();
        let fr = router.query("apps", &XdbQuery::context("Budget")).unwrap();
        assert_eq!(fr.results.len(), 1, "the live source still answers");
        assert!(fr.degraded());
        let o = fr.outcomes.iter().find(|o| o.source == "down").unwrap();
        assert!(o.error.is_some());
        cleanup(vec![d1, d2]);
    }

    #[test]
    fn limit_applies_globally() {
        let (router, dirs) = build_router("limit");
        let fr = router
            .query("apps", &XdbQuery::context("Budget").with_limit(1))
            .unwrap();
        assert_eq!(fr.results.len(), 1);
        assert!(fr.results.truncated);
        cleanup(dirs);
    }

    #[test]
    fn limit_pushed_only_when_fully_pushable() {
        let (router, dirs) = build_router("push");
        let fr = router
            .query("apps", &XdbQuery::context("Budget").with_limit(1))
            .unwrap();
        let ames = fr.outcomes.iter().find(|o| o.source == "ames").unwrap();
        assert_eq!(
            ames.pushed.limit,
            Some(1),
            "full-capability source gets the limit as a per-source bound"
        );
        let llis = fr.outcomes.iter().find(|o| o.source == "llis").unwrap();
        assert!(
            llis.pushed.limit.is_none(),
            "augmented source must not truncate before the residual filter"
        );
        cleanup(dirs);
    }

    #[test]
    fn source_stats_track_latency_and_failures() {
        let (nm1, d1) = temp_nm("stats-a");
        nm1.insert_file("p.txt", "# Budget\nmoney\n").unwrap();
        let (nm2, d2) = temp_nm("stats-b");
        let mut router = Router::new();
        router
            .register_source(Arc::new(NetmarkSource::new("up", nm1)))
            .unwrap();
        router
            .register_source(Arc::new(FlakySource::down(NetmarkSource::new("down", nm2))))
            .unwrap();
        router.define_databank("apps", &["up", "down"]).unwrap();
        for _ in 0..3 {
            router.query("apps", &XdbQuery::context("Budget")).unwrap();
        }
        let stats = router.source_stats();
        let up = &stats["up"];
        assert_eq!(up.queries, 3);
        assert_eq!(up.failures, 0);
        assert_eq!(up.hits, 3);
        assert!(up.total_latency > Duration::ZERO);
        assert!(up.max_latency <= up.total_latency);
        let down = &stats["down"];
        assert_eq!(down.queries, 3);
        assert_eq!(down.failures, 3);
        assert_eq!(down.failure_rate(), 1.0);
        cleanup(vec![d1, d2]);
    }

    #[test]
    fn outcome_reports_latency() {
        let (router, dirs) = build_router("lat");
        let fr = router.query("apps", &XdbQuery::context("Budget")).unwrap();
        for o in &fr.outcomes {
            assert!(o.latency > Duration::ZERO, "{} latency missing", o.source);
            assert!(!o.short_circuited);
        }
        cleanup(dirs);
    }

    #[test]
    fn registry_errors() {
        let (mut router, dirs) = build_router("err");
        assert!(matches!(
            router.query("nope", &XdbQuery::context("x")),
            Err(RouterError::NoSuchDatabank(_))
        ));
        assert!(matches!(
            router.define_databank("x", &["ghost"]),
            Err(RouterError::NoSuchSource(_))
        ));
        assert!(matches!(
            router.define_databank("apps", &["ames"]),
            Err(RouterError::Duplicate(_))
        ));
        cleanup(dirs);
    }

    /// Adapter that records fan-out concurrency: which threads queried it
    /// and the peak number of in-flight `search` calls across all probes.
    struct ProbeSource {
        name: String,
        threads: Arc<Mutex<std::collections::HashSet<std::thread::ThreadId>>>,
        live: Arc<AtomicUsize>,
        peak: Arc<AtomicUsize>,
    }

    impl SourceAdapter for ProbeSource {
        fn name(&self) -> &str {
            &self.name
        }

        fn capabilities(&self) -> Capabilities {
            Capabilities::FULL
        }

        fn search(&self, _q: &XdbQuery) -> Result<ResultSet, SourceError> {
            let cur = self.live.fetch_add(1, Ordering::SeqCst) + 1;
            self.peak.fetch_max(cur, Ordering::SeqCst);
            self.threads
                .lock()
                .unwrap()
                .insert(std::thread::current().id());
            // Hold the slot long enough that an unbounded fan-out would be
            // observed as > max_fanout concurrent searches.
            std::thread::sleep(Duration::from_millis(3));
            self.live.fetch_sub(1, Ordering::SeqCst);
            let mut rs = ResultSet::new();
            rs.hits.push(Hit {
                source: String::new(),
                doc: format!("{}.txt", self.name),
                context: "Budget".to_string(),
                content: netmark::Node::text(&self.name),
                context_node: 0,
                score: None,
            });
            Ok(rs)
        }

        fn fetch_document(&self, name: &str) -> Result<netmark::Document, SourceError> {
            Err(SourceError::Unsupported(name.to_string()))
        }
    }

    #[test]
    fn many_source_fanout_is_bounded_and_ordered() {
        const SOURCES: usize = 64;
        const FANOUT: usize = 4;
        let threads = Arc::new(Mutex::new(std::collections::HashSet::new()));
        let live = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let mut router = Router::new();
        router.set_max_fanout(FANOUT).unwrap();
        assert_eq!(router.max_fanout(), FANOUT);
        let names: Vec<String> = (0..SOURCES).map(|i| format!("src{i:03}")).collect();
        for name in &names {
            router
                .register_source(Arc::new(ProbeSource {
                    name: name.clone(),
                    threads: Arc::clone(&threads),
                    live: Arc::clone(&live),
                    peak: Arc::clone(&peak),
                }))
                .unwrap();
        }
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        router.define_databank("wide", &refs).unwrap();
        let fr = router.query("wide", &XdbQuery::context("Budget")).unwrap();
        // Every source answered, and the merged order is databank order.
        assert_eq!(fr.results.len(), SOURCES);
        assert_eq!(fr.outcomes.len(), SOURCES);
        let order: Vec<&str> = fr.outcomes.iter().map(|o| o.source.as_str()).collect();
        assert_eq!(order, refs, "outcomes preserve databank order");
        let hit_order: Vec<String> = fr.results.hits.iter().map(|h| h.source.clone()).collect();
        assert_eq!(hit_order, names, "hits merge in databank order");
        // The pool is bounded: never more than FANOUT threads in flight.
        assert!(
            threads.lock().unwrap().len() <= FANOUT,
            "{} distinct threads for fanout {FANOUT}",
            threads.lock().unwrap().len()
        );
        assert!(
            peak.load(Ordering::SeqCst) <= FANOUT,
            "peak concurrency {} exceeds fanout cap {FANOUT}",
            peak.load(Ordering::SeqCst)
        );
        // Source health was recorded for every source despite the pooling.
        let stats = router.source_stats();
        assert_eq!(stats.len(), SOURCES);
        assert!(stats.values().all(|s| s.queries == 1 && s.hits == 1));
    }

    #[test]
    fn fanout_defaults_to_cores_capped_at_eight() {
        let router = Router::new();
        let expected = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(DEFAULT_MAX_FANOUT)
            .min(DEFAULT_MAX_FANOUT);
        assert_eq!(router.max_fanout(), expected);
        assert!(router.max_fanout() >= 1);
        assert!(router.max_fanout() <= DEFAULT_MAX_FANOUT);
    }

    #[test]
    fn zero_fanout_is_rejected_not_clamped() {
        let mut router = Router::new();
        let before = router.max_fanout();
        assert!(matches!(
            router.set_max_fanout(0),
            Err(RouterError::InvalidConfig(_))
        ));
        assert_eq!(router.max_fanout(), before, "failed set left cap intact");
        router.set_max_fanout(3).unwrap();
        assert_eq!(router.max_fanout(), 3);
    }

    #[test]
    fn databank_spec_round_trip() {
        let bank = Databank {
            name: "anomaly".into(),
            sources: vec!["ames".into(), "llis".into()],
        };
        let spec = bank.spec();
        assert_eq!(bank.spec_lines(), 3);
        assert_eq!(Databank::parse(&spec), Some(bank));
        assert!(Databank::parse("no header").is_none());
    }

    #[test]
    fn total_spec_lines_counts_all_banks() {
        let (mut router, dirs) = build_router("lines");
        router.define_databank("more", &["ames"]).unwrap();
        // apps: 1 + 3 sources; more: 1 + 1 source.
        assert_eq!(router.total_spec_lines(), 6);
        cleanup(dirs);
    }
}
