//! In-memory query evaluation over document trees — the router's
//! augmentation engine.
//!
//! When a source can only evaluate part of a query (the paper's Lessons
//! Learned example supports content search only), the router pushes the
//! supported fragment, pulls the candidate documents back, and finishes the
//! job here: "NETMARK then extracts the 'Title' sections from only those
//! documents that contain the word 'Engine' … from amongst the initial
//! results returned by the original server" (§2.1.5).

use netmark_model::{Document, Node, NodeType};
use netmark_textindex::query_terms;
use netmark_xdb::{Hit, MatchMode, XdbQuery};

/// One section of a document: context label + content nodes.
#[derive(Debug, Clone)]
pub struct Section {
    /// Heading text.
    pub label: String,
    /// The section's content wrapped in a `<Content>` element.
    pub content: Node,
}

/// Extracts sections (context + following-sibling content) from a document
/// tree, recursively, in document order.
pub fn sections(doc: &Document) -> Vec<Section> {
    let mut out = Vec::new();
    collect(&doc.root, &mut out);
    out
}

fn collect(node: &Node, out: &mut Vec<Section>) {
    let mut i = 0usize;
    while i < node.children.len() {
        let child = &node.children[i];
        if child.ntype == NodeType::Context {
            let label = child.text_content();
            let mut content_parts: Vec<Node> = Vec::new();
            let mut j = i + 1;
            while j < node.children.len() && node.children[j].ntype != NodeType::Context {
                content_parts.push(node.children[j].clone());
                j += 1;
            }
            let content = if content_parts.len() == 1 && content_parts[0].name == "Content" {
                content_parts.into_iter().next().expect("len checked")
            } else {
                let mut c = Node::element("Content");
                c.children = content_parts;
                c
            };
            // Outer section first (its heading precedes any nested one),
            // then recurse into the span for nested contexts.
            out.push(Section { label, content });
            for k in i + 1..j {
                collect(&node.children[k], out);
            }
            i = j;
        } else {
            collect(child, out);
            i += 1;
        }
    }
}

fn label_matches(label: &str, wanted: &str) -> bool {
    let l = label.to_lowercase();
    let w = wanted.to_lowercase();
    l == w || l.contains(&w)
}

fn content_matches(text: &str, terms: &str, mode: MatchMode) -> bool {
    match mode {
        MatchMode::Keywords => {
            let hay = query_terms(text);
            query_terms(terms).iter().all(|t| hay.contains(t))
        }
        MatchMode::Phrase => {
            let hay = query_terms(text).join(" ");
            let needle = query_terms(terms).join(" ");
            !needle.is_empty() && hay.contains(&needle)
        }
    }
}

/// Evaluates `q` against one document, returning the matching sections as
/// hits (source left empty; the router fills it).
pub fn match_document(doc: &Document, q: &XdbQuery) -> Vec<Hit> {
    if let Some(wanted_doc) = &q.doc {
        if &doc.name != wanted_doc {
            return Vec::new();
        }
    }
    sections(doc)
        .into_iter()
        .filter(|s| {
            let ctx_ok = match &q.context {
                Some(label) => label_matches(&s.label, label),
                None => true,
            };
            if !ctx_ok {
                return false;
            }
            match &q.content {
                Some(terms) => {
                    // Content may match in the heading or the body.
                    let text = format!("{} {}", s.label, s.content.text_content());
                    content_matches(&text, terms, q.match_mode)
                }
                None => true,
            }
        })
        .map(|s| Hit {
            source: String::new(),
            doc: doc.name.clone(),
            context: s.label,
            content: s.content,
            context_node: 0,
            score: None,
        })
        .collect()
}

/// Router-side relevance scoring for hits from sources that cannot score
/// themselves (wire-v1 peers, content-only servers, residual-matched
/// sections). Hits that already carry a score — a ranked source's own BM25
/// answer — are left untouched; the rest get the term frequency of the
/// query's content terms over heading + body. TF has no corpus statistics
/// to draw on (the router holds none — *that is the point*), but it is
/// monotone in relevance on the same axis BM25 orders by, which is what
/// the score-aware merge needs from an augmented source.
pub fn score_hits(hits: &mut [Hit], q: &XdbQuery) {
    let terms: Vec<String> = q.content.as_deref().map(query_terms).unwrap_or_default();
    for h in hits.iter_mut().filter(|h| h.score.is_none()) {
        let text = format!("{} {}", h.context, h.content.text_content());
        let hay = query_terms(&text);
        let tf: usize = terms
            .iter()
            .map(|t| hay.iter().filter(|w| *w == t).count())
            .sum();
        h.score = Some(tf as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmark_docformats::upmark;

    fn doc() -> Document {
        upmark(
            "ll-0424.html",
            "<html><body><h1>Title</h1><p>Engine anomaly</p><h1>Summary</h1><p>The controller faulted during ascent.</p></body></html>",
        )
    }

    #[test]
    fn sections_in_document_order() {
        let s = sections(&doc());
        let labels: Vec<&str> = s.iter().map(|x| x.label.as_str()).collect();
        assert_eq!(labels, vec!["Title", "Summary"]);
        assert!(s[1].content.text_content().contains("controller"));
    }

    #[test]
    fn paper_llis_example() {
        // Context=Title & Content=Engine.
        let q = XdbQuery::context_content("Title", "Engine");
        let hits = match_document(&doc(), &q);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].context, "Title");
        assert!(hits[0].content_text().contains("Engine anomaly"));
        // Content=Engine in the wrong section does not leak.
        let q = XdbQuery::context_content("Summary", "Engine");
        assert!(match_document(&doc(), &q).is_empty());
    }

    #[test]
    fn content_only_and_context_only() {
        let hits = match_document(&doc(), &XdbQuery::content("faulted ascent"));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].context, "Summary");
        let hits = match_document(&doc(), &XdbQuery::context("title"));
        assert_eq!(hits.len(), 1, "labels match case-insensitively");
    }

    #[test]
    fn phrase_vs_keywords() {
        let d = doc();
        let q = XdbQuery::content("ascent during").with_phrase_match();
        assert!(match_document(&d, &q).is_empty(), "wrong order");
        let q = XdbQuery::content("ascent during");
        assert_eq!(match_document(&d, &q).len(), 1, "keywords ignore order");
    }

    #[test]
    fn doc_filter() {
        let mut q = XdbQuery::context("Title");
        q.doc = Some("other.html".into());
        assert!(match_document(&doc(), &q).is_empty());
    }

    #[test]
    fn score_hits_fills_only_missing_scores() {
        let d = upmark("e.txt", "# Alpha\nengine engine fuel\n# Beta\nengine\n");
        let q = XdbQuery::content("engine").with_rank(netmark_xdb::RankMode::Bm25);
        let mut hits = match_document(&d, &q);
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|h| h.score.is_none()));
        hits[1].score = Some(9.5); // pretend a ranked source scored this one
        score_hits(&mut hits, &q);
        assert_eq!(hits[0].score, Some(2.0), "TF over heading + body");
        assert_eq!(hits[1].score, Some(9.5), "source-scored hits untouched");
    }

    #[test]
    fn nested_sections_extracted() {
        let d = upmark(
            "n.xml",
            "<doc><Context>Outer</Context><Content><p>o</p></Content><section><Context>Inner</Context><Content><p>i</p></Content></section></doc>",
        );
        let labels: Vec<String> = sections(&d).into_iter().map(|s| s.label).collect();
        assert!(labels.contains(&"Outer".to_string()));
        assert!(labels.contains(&"Inner".to_string()));
    }
}
