//! Source adapters: what the thin router talks to.
//!
//! "A source that is queried need not necessarily have XML or even
//! Context+Content searching capabilities. However NETMARK 'augments' the
//! query capability in that it uses whatever query and search capabilities
//! are available at the source and then does further processing required."
//! (§2.1.5). Each adapter advertises [`Capabilities`]; the router pushes
//! down what the source can do and augments the rest.

use netmark::NetMark;
use netmark_model::Document;
use netmark_xdb::{Hit, ResultSet, XdbQuery};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

// Capabilities are part of the XDB wire surface (servers advertise them at
// `GET /xdb/capabilities`), so the type lives in the protocol crate.
pub use netmark_xdb::Capabilities;

/// Source-side failures the router must survive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceError {
    /// Network-ish failure: down, timed out.
    Unavailable(String),
    /// The source's circuit breaker is open: the query was not attempted.
    CircuitOpen(String),
    /// The pushed query exceeds the source's capabilities (router bug).
    Unsupported(String),
    /// The source's own backend errored.
    Backend(String),
}

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceError::Unavailable(m) => write!(f, "source unavailable: {m}"),
            SourceError::CircuitOpen(m) => write!(f, "circuit open: {m}"),
            SourceError::Unsupported(m) => write!(f, "query unsupported by source: {m}"),
            SourceError::Backend(m) => write!(f, "source backend error: {m}"),
        }
    }
}

impl std::error::Error for SourceError {}

/// A queryable information source.
pub trait SourceAdapter: Send + Sync {
    /// Source name (unique within a router).
    fn name(&self) -> &str;

    /// Declared capabilities.
    fn capabilities(&self) -> Capabilities;

    /// Evaluates the (router-weakened) query.
    fn search(&self, q: &XdbQuery) -> Result<ResultSet, SourceError>;

    /// Fetches one full document for router-side augmentation.
    fn fetch_document(&self, name: &str) -> Result<Document, SourceError>;

    /// Cumulative circuit-breaker opens, for breaker-guarded sources
    /// (remote adapters). In-process sources have no breaker: `0`.
    fn breaker_opens(&self) -> u64 {
        0
    }
}

/// A full NETMARK instance as a source (Fig 8's peers).
pub struct NetmarkSource {
    name: String,
    nm: Arc<NetMark>,
}

impl NetmarkSource {
    /// Wraps an engine under a source name.
    pub fn new(name: &str, nm: Arc<NetMark>) -> NetmarkSource {
        NetmarkSource {
            name: name.to_string(),
            nm,
        }
    }
}

impl SourceAdapter for NetmarkSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities::FULL
    }

    fn search(&self, q: &XdbQuery) -> Result<ResultSet, SourceError> {
        self.nm
            .query(q)
            .map_err(|e| SourceError::Backend(e.to_string()))
    }

    fn fetch_document(&self, name: &str) -> Result<Document, SourceError> {
        let info = self
            .nm
            .document_by_name(name)
            .map_err(|e| SourceError::Backend(e.to_string()))?
            .ok_or_else(|| SourceError::Backend(format!("no document {name}")))?;
        self.nm
            .reconstruct_document(info.doc_id)
            .map_err(|e| SourceError::Backend(e.to_string()))
    }
}

/// A content-search-only web server over raw documents — the paper's NASA
/// Lessons Learned Information Server. It "allows only 'Content search'
/// kinds of queries" and returns whole documents, unsectioned.
pub struct ContentOnlySource {
    name: String,
    /// `(file name, raw text)` corpus.
    docs: Vec<(String, String)>,
}

impl ContentOnlySource {
    /// Builds the source over a raw corpus.
    pub fn new(name: &str, docs: Vec<(String, String)>) -> ContentOnlySource {
        ContentOnlySource {
            name: name.to_string(),
            docs,
        }
    }
}

impl SourceAdapter for ContentOnlySource {
    fn name(&self) -> &str {
        &self.name
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities::CONTENT_ONLY
    }

    fn search(&self, q: &XdbQuery) -> Result<ResultSet, SourceError> {
        if q.context.is_some() {
            return Err(SourceError::Unsupported(
                "this server only supports Content search".into(),
            ));
        }
        let terms: Vec<String> = q
            .content
            .as_deref()
            .map(netmark_textindex::query_terms)
            .unwrap_or_default();
        let mut rs = ResultSet::new();
        for (name, text) in &self.docs {
            let hay = netmark_textindex::query_terms(text);
            let matches = terms.iter().all(|t| hay.contains(t));
            if matches {
                // Whole-document, unsectioned hit.
                rs.hits.push(Hit {
                    source: self.name.clone(),
                    doc: name.clone(),
                    context: String::new(),
                    content: netmark_model::Node::element("Content")
                        .with_text(&text.chars().take(200).collect::<String>()),
                    context_node: 0,
                    score: None,
                });
            }
        }
        rs.candidates = rs.hits.len();
        if let Some(limit) = q.limit {
            if rs.hits.len() > limit {
                rs.hits.truncate(limit);
                rs.truncated = true;
            }
        }
        Ok(rs)
    }

    fn fetch_document(&self, name: &str) -> Result<Document, SourceError> {
        let (n, text) = self
            .docs
            .iter()
            .find(|(n, _)| n == name)
            .ok_or_else(|| SourceError::Backend(format!("no document {name}")))?;
        // The router upmarks the raw document itself — the source has no
        // structure to offer.
        Ok(netmark_docformats::upmark(n, text))
    }
}

/// Failure-injection wrapper: fails outright or every N-th call.
pub struct FlakySource<S: SourceAdapter> {
    inner: S,
    /// 0 = always fail; n>0 = fail every n-th search.
    fail_every: u64,
    calls: AtomicU64,
}

impl<S: SourceAdapter> FlakySource<S> {
    /// Always-failing wrapper (a downed source).
    pub fn down(inner: S) -> FlakySource<S> {
        FlakySource {
            inner,
            fail_every: 0,
            calls: AtomicU64::new(0),
        }
    }

    /// Fails every `n`-th search (n ≥ 1).
    pub fn every(inner: S, n: u64) -> FlakySource<S> {
        FlakySource {
            inner,
            fail_every: n.max(1),
            calls: AtomicU64::new(0),
        }
    }
}

impl<S: SourceAdapter> SourceAdapter for FlakySource<S> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn capabilities(&self) -> Capabilities {
        self.inner.capabilities()
    }

    fn search(&self, q: &XdbQuery) -> Result<ResultSet, SourceError> {
        let call = self.calls.fetch_add(1, Ordering::Relaxed) + 1;
        if self.fail_every == 0 || call.is_multiple_of(self.fail_every) {
            return Err(SourceError::Unavailable("injected failure".into()));
        }
        self.inner.search(q)
    }

    fn fetch_document(&self, name: &str) -> Result<Document, SourceError> {
        self.inner.fetch_document(name)
    }

    fn breaker_opens(&self) -> u64 {
        self.inner.breaker_opens()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn llis() -> ContentOnlySource {
        ContentOnlySource::new(
            "llis",
            vec![
                (
                    "ll-1.txt".to_string(),
                    "# Title\nEngine anomaly\n# Lesson\nInspect the harness".to_string(),
                ),
                (
                    "ll-2.txt".to_string(),
                    "# Title\nParachute issue\n# Lesson\nRepack often".to_string(),
                ),
            ],
        )
    }

    #[test]
    fn content_only_search() {
        let s = llis();
        let rs = s.search(&XdbQuery::content("engine")).unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.hits[0].doc, "ll-1.txt");
        assert!(s.search(&XdbQuery::context("Title")).is_err());
    }

    #[test]
    fn fetch_upmarks() {
        let s = llis();
        let d = s.fetch_document("ll-1.txt").unwrap();
        let labels: Vec<String> = d
            .context_content_pairs()
            .into_iter()
            .map(|(l, _)| l)
            .collect();
        assert_eq!(labels, vec!["Title", "Lesson"]);
        assert!(s.fetch_document("missing").is_err());
    }

    #[test]
    fn flaky_injection() {
        let down = FlakySource::down(llis());
        assert!(down.search(&XdbQuery::content("engine")).is_err());
        let every2 = FlakySource::every(llis(), 2);
        assert!(every2.search(&XdbQuery::content("engine")).is_ok());
        assert!(every2.search(&XdbQuery::content("engine")).is_err());
        assert!(every2.search(&XdbQuery::content("engine")).is_ok());
    }
}
