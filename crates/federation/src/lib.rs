//! `netmark-federation`: databanks and the thin router (paper §2.1.5,
//! Fig 8).
//!
//! Integration in NETMARK is *declared, not programmed*: an administrator
//! lists the sources of an application in a [`Databank`]; queries fan out
//! to all of them simultaneously; sources that only support a fragment of
//! the query language get the supported fragment pushed down and the rest
//! **augmented** by the router (fetch candidate documents, re-evaluate the
//! full query locally via [`matcher`]). The router holds no schemas and no
//! mappings — "middleware requirements are reduced to needing just a thin
//! router capability across the various information sources".
//!
//! Failure injection ([`adapter::FlakySource`]) lets tests and benches
//! exercise graceful degradation: a downed source is reported in the
//! [`SourceOutcome`], never fails the query.
//!
//! Sources need not be in-process: a [`RemoteSource`] speaks XDB-over-HTTP
//! to a live server through a pooled keep-alive [`client::HttpClient`]
//! (timeouts, retry with backoff + jitter), negotiates [`Capabilities`] at
//! registration, and guards the wire with a per-source circuit breaker —
//! the comms/robustness layer of the Fig-8 deployment.

#![warn(missing_docs)]

pub mod adapter;
pub mod client;
pub mod databank;
pub mod matcher;
pub mod remote;
pub mod serve;

pub use adapter::{
    Capabilities, ContentOnlySource, FlakySource, NetmarkSource, SourceAdapter, SourceError,
};
pub use client::{ClientConfig, HttpClient, HttpResponse};
pub use databank::{
    Databank, FederatedResult, Router, RouterError, SourceOutcome, DEFAULT_MAX_FANOUT,
};
pub use matcher::{match_document, score_hits, sections, Section};
pub use remote::{BreakerConfig, BreakerState, RemoteConfig, RemoteSource};
pub use serve::{handle_federated, serve_router, serve_router_with, FederatedServerHandle};
// Front-end tuning/observability, re-exported for deployments of
// `serve_router_with` (same types the WebDAV server uses).
pub use netmark_netserve::{FrontendConfig, FrontendStats, FrontendStatsSnapshot};
