//! Remote XDB sources: the federated path over real sockets.
//!
//! A [`RemoteSource`] speaks XDB-over-HTTP to a live NETMARK (or another
//! federated router): capabilities are **negotiated** at registration via
//! `GET /xdb/capabilities` instead of assumed, queries travel as XDB URLs
//! (`GET /xdb?...`), and answers come back as the versioned `<results>`
//! wire format that [`netmark_xdb::ResultSet`] round-trips.
//!
//! Robustness is layered: the [`crate::client::HttpClient`] underneath
//! absorbs transient faults (timeouts, retry with backoff), while a
//! per-source **circuit breaker** here absorbs sustained ones — after
//! `failure_threshold` consecutive failures the breaker opens and queries
//! short-circuit (fail in microseconds instead of burning a timeout per
//! query); after `cooldown` a single half-open probe is let through, and
//! its outcome closes or re-opens the circuit. Breaker activity is
//! surfaced through `SourceOutcome` errors and the router's per-source
//! metrics.

use crate::adapter::{Capabilities, SourceAdapter, SourceError};
use crate::client::{ClientConfig, HttpClient};
use netmark_model::Document;
use netmark_sgml::{parse_xml, NodeTypeConfig};
use netmark_xdb::{url_encode, ResultSet, XdbQuery};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Circuit-breaker tuning.
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Consecutive failures that open the circuit.
    pub failure_threshold: u32,
    /// How long the circuit stays open before a half-open probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_secs(5),
        }
    }
}

/// Observable breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: queries flow.
    Closed,
    /// Tripped: queries short-circuit without touching the network.
    Open,
    /// Cooldown elapsed: one probe is in flight to decide.
    HalfOpen,
}

#[derive(Debug)]
struct BreakerInner {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Instant,
}

/// The breaker state machine. Closed → (threshold failures) → Open →
/// (cooldown) → HalfOpen → Closed on probe success, Open on probe failure.
#[derive(Debug)]
struct Breaker {
    cfg: BreakerConfig,
    inner: Mutex<BreakerInner>,
    opens: std::sync::atomic::AtomicU64,
}

impl Breaker {
    fn new(cfg: BreakerConfig) -> Breaker {
        Breaker {
            cfg,
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at: Instant::now(),
            }),
            opens: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Whether a query may proceed. Transitions Open → HalfOpen when the
    /// cooldown has elapsed (admitting exactly one probe).
    fn admit(&self) -> bool {
        let mut inner = self.inner.lock().expect("breaker poisoned");
        match inner.state {
            BreakerState::Closed => true,
            BreakerState::HalfOpen => false, // a probe is already deciding
            BreakerState::Open => {
                if inner.opened_at.elapsed() >= self.cfg.cooldown {
                    inner.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records a query outcome; returns `true` when this failure opened
    /// the circuit (for metrics).
    fn record(&self, success: bool) -> bool {
        let mut inner = self.inner.lock().expect("breaker poisoned");
        if success {
            inner.state = BreakerState::Closed;
            inner.consecutive_failures = 0;
            return false;
        }
        inner.consecutive_failures += 1;
        let should_open = inner.state == BreakerState::HalfOpen
            || (inner.state == BreakerState::Closed
                && inner.consecutive_failures >= self.cfg.failure_threshold);
        if should_open {
            inner.state = BreakerState::Open;
            inner.opened_at = Instant::now();
            self.opens
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            return true;
        }
        false
    }

    fn state(&self) -> BreakerState {
        self.inner.lock().expect("breaker poisoned").state
    }
}

/// Everything tunable about one remote source.
#[derive(Debug, Clone, Default)]
pub struct RemoteConfig {
    /// Transport tuning (timeouts, retries, pooling).
    pub client: ClientConfig,
    /// Circuit-breaker tuning.
    pub breaker: BreakerConfig,
}

/// A remote XDB source reached over HTTP.
pub struct RemoteSource {
    name: String,
    client: HttpClient,
    caps: Capabilities,
    breaker: Breaker,
}

impl RemoteSource {
    /// Connects to `addr` (`host:port`) and negotiates capabilities via
    /// `GET /xdb/capabilities`. Fails when the server is unreachable or
    /// does not advertise capabilities. A server speaking a *newer* wire
    /// version is fine: versions are additive, so negotiation keeps the
    /// capability bits both sides understand and ignores the rest — a
    /// peer is never refused over the version number alone.
    pub fn connect(name: &str, addr: &str, cfg: RemoteConfig) -> Result<RemoteSource, SourceError> {
        let client = HttpClient::new(addr, cfg.client)
            .map_err(|e| SourceError::Unavailable(e.to_string()))?;
        let resp = client
            .get("/xdb/capabilities")
            .map_err(|e| SourceError::Unavailable(format!("capability probe: {e}")))?;
        if resp.status != 200 {
            return Err(SourceError::Unsupported(format!(
                "capability probe answered {} — not an XDB server?",
                resp.status
            )));
        }
        let node = parse_xml(&resp.body_text(), &NodeTypeConfig::empty())
            .map_err(|e| SourceError::Unsupported(format!("bad capabilities document: {e}")))?;
        let (caps, _version) = Capabilities::from_node(&node).ok_or_else(|| {
            SourceError::Unsupported("response is not a capabilities advertisement".into())
        })?;
        Ok(RemoteSource {
            name: name.to_string(),
            client,
            caps,
            breaker: Breaker::new(cfg.breaker),
        })
    }

    /// The negotiated capabilities (what `GET /xdb/capabilities` said).
    pub fn negotiated(&self) -> Capabilities {
        self.caps
    }

    /// Current breaker state.
    pub fn breaker_state(&self) -> BreakerState {
        self.breaker.state()
    }

    /// Fresh TCP connections the transport has opened (keep-alive reuse
    /// diagnostics).
    pub fn connects(&self) -> u64 {
        self.client.connects()
    }

    /// One guarded remote exchange: breaker admission, the call itself,
    /// outcome recording.
    fn guarded<T>(
        &self,
        call: impl FnOnce(&HttpClient) -> Result<T, SourceError>,
    ) -> Result<T, SourceError> {
        if !self.breaker.admit() {
            return Err(SourceError::CircuitOpen(format!(
                "{} failed repeatedly; cooling down",
                self.name
            )));
        }
        let result = call(&self.client);
        let opened = self.breaker.record(result.is_ok());
        match result {
            Ok(v) => Ok(v),
            Err(e) if opened => Err(SourceError::Unavailable(format!(
                "{e} (circuit opened after repeated failures)"
            ))),
            Err(e) => Err(e),
        }
    }
}

impl SourceAdapter for RemoteSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn capabilities(&self) -> Capabilities {
        self.caps
    }

    fn breaker_opens(&self) -> u64 {
        self.breaker
            .opens
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    fn search(&self, q: &XdbQuery) -> Result<ResultSet, SourceError> {
        let path = format!("/xdb?{}", q.to_query_string());
        let name = self.name.clone();
        self.guarded(move |client| {
            let resp = client
                .get(&path)
                .map_err(|e| SourceError::Unavailable(e.to_string()))?;
            if resp.status != 200 {
                return Err(SourceError::Backend(format!(
                    "remote answered {}: {}",
                    resp.status,
                    resp.body_text()
                )));
            }
            let node = parse_xml(&resp.body_text(), &NodeTypeConfig::empty())
                .map_err(|e| SourceError::Backend(format!("unparseable results: {e}")))?;
            if node.name != "results" {
                return Err(SourceError::Backend(format!(
                    "expected <results>, got <{}>",
                    node.name
                )));
            }
            // No version gate: `<results>` attributes are additive across
            // wire versions, so a newer server's answer parses with the
            // fields this build knows and the rest ignored.
            Ok(ResultSet::from_node(&node, &name))
        })
    }

    fn fetch_document(&self, name: &str) -> Result<Document, SourceError> {
        let path = format!("/docs/{}", url_encode(name));
        let doc_name = name.to_string();
        self.guarded(move |client| {
            let resp = client
                .get(&path)
                .map_err(|e| SourceError::Unavailable(e.to_string()))?;
            if resp.status != 200 {
                return Err(SourceError::Backend(format!(
                    "fetch {doc_name} answered {}",
                    resp.status
                )));
            }
            let root = parse_xml(&resp.body_text(), &NodeTypeConfig::xml_default())
                .map_err(|e| SourceError::Backend(format!("unparseable document: {e}")))?;
            Ok(Document::new(&doc_name, "xml", root))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmark::NetMark;
    use std::sync::Arc;

    fn tight() -> RemoteConfig {
        RemoteConfig {
            client: ClientConfig {
                connect_timeout: Duration::from_millis(300),
                read_timeout: Duration::from_millis(300),
                retries: 0,
                backoff_base: Duration::from_millis(1),
                ..ClientConfig::default()
            },
            breaker: BreakerConfig {
                failure_threshold: 2,
                cooldown: Duration::from_millis(100),
            },
        }
    }

    #[test]
    fn negotiates_and_queries_live_server() {
        let dir = std::env::temp_dir().join(format!("netmark-remote-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let nm = Arc::new(NetMark::open(&dir).unwrap());
        nm.insert_file("plan.txt", "# Budget\nremote money\n")
            .unwrap();
        let server = netmark_webdav::serve(nm.clone(), "127.0.0.1:0").unwrap();

        let src =
            RemoteSource::connect("peer", &server.addr().to_string(), RemoteConfig::default())
                .unwrap();
        assert_eq!(src.negotiated(), Capabilities::FULL);
        assert_eq!(src.breaker_state(), BreakerState::Closed);

        let rs = src.search(&XdbQuery::context("Budget")).unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.hits[0].doc, "plan.txt");
        assert_eq!(rs.hits[0].source, "peer");
        assert!(rs.hits[0].content_text().contains("remote money"));

        let doc = src.fetch_document("plan.txt").unwrap();
        assert!(doc
            .context_content_pairs()
            .iter()
            .any(|(l, _)| l == "Budget"));

        // Capability negotiation + 1 pooled connection for everything.
        assert_eq!(src.connects(), 1, "keep-alive reused one socket");

        server.stop();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// One-connection HTTP server answering each request with the next
    /// canned XML body (keep-alive, Content-Length framed).
    fn canned_server(responses: Vec<String>) -> std::net::SocketAddr {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            if let Ok((mut conn, _)) = listener.accept() {
                use std::io::{Read, Write};
                let mut buf = [0u8; 4096];
                for body in responses {
                    let mut req: Vec<u8> = Vec::new();
                    loop {
                        match conn.read(&mut buf) {
                            Ok(0) | Err(_) => return,
                            Ok(n) => {
                                req.extend_from_slice(&buf[..n]);
                                if req.windows(4).any(|w| w == b"\r\n\r\n") {
                                    break;
                                }
                            }
                        }
                    }
                    let resp = format!(
                        "HTTP/1.1 200 OK\r\nContent-Type: text/xml\r\nContent-Length: {}\r\n\r\n{}",
                        body.len(),
                        body
                    );
                    if conn.write_all(resp.as_bytes()).is_err() {
                        return;
                    }
                }
            }
        });
        addr
    }

    #[test]
    fn tolerates_newer_wire_versions_and_unknown_capability_bits() {
        // A peer from the future: wire version 7, capability bits this
        // build has never heard of, extra attributes on <results> and
        // <hit>. Negotiation keeps the known intersection and the answer
        // parses with unknown fields ignored — never a refusal.
        let caps = r#"<capabilities version="7" context-search="true" content-search="true" structured-results="true" ranked="true" min-score="true" hologram-search="true" quantum-join="false"/>"#;
        let results = r#"<results count="1" version="7" candidates="3" ranked="true" holo-merged="true"><hit doc="p.txt" score="1.500000" holo-rank="9"><Context>Budget</Context><Content>future money</Content></hit></results>"#;
        let addr = canned_server(vec![caps.to_string(), results.to_string()]);
        let src = RemoteSource::connect("future", &addr.to_string(), tight()).unwrap();
        assert_eq!(
            src.negotiated(),
            Capabilities::FULL,
            "unknown bits are masked off, known ones survive"
        );
        let rs = src
            .search(&XdbQuery::content("money").with_rank(netmark_xdb::RankMode::Bm25))
            .unwrap();
        assert_eq!(rs.len(), 1);
        assert!(rs.ranked);
        assert_eq!(rs.hits[0].doc, "p.txt");
        assert_eq!(rs.hits[0].score, Some(1.5));
        assert_eq!(rs.hits[0].source, "future");
        assert!(rs.hits[0].content_text().contains("future money"));
    }

    #[test]
    fn connect_refuses_non_xdb_server() {
        // A listener that answers 404 to everything.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            if let Ok((mut conn, _)) = listener.accept() {
                use std::io::Write;
                let _ = conn.write_all(
                    b"HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
                );
            }
        });
        match RemoteSource::connect("x", &addr.to_string(), tight()) {
            Err(SourceError::Unsupported(_)) => {}
            Err(other) => panic!("expected Unsupported, got {other}"),
            Ok(_) => panic!("expected Unsupported, got Ok"),
        }
    }

    #[test]
    fn breaker_opens_and_recovers() {
        let dir = std::env::temp_dir().join(format!("netmark-breaker-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let nm = Arc::new(NetMark::open(&dir).unwrap());
        nm.insert_file("p.txt", "# Budget\nmoney\n").unwrap();
        let server = netmark_webdav::serve(nm.clone(), "127.0.0.1:0").unwrap();
        let addr = server.addr();

        let src = RemoteSource::connect("peer", &addr.to_string(), tight()).unwrap();
        assert!(src.search(&XdbQuery::context("Budget")).is_ok());

        // Kill the server: consecutive failures trip the breaker.
        server.stop();
        let q = XdbQuery::context("Budget");
        assert!(matches!(
            src.search(&q),
            Err(SourceError::Unavailable(_) | SourceError::Backend(_))
        ));
        assert!(src.search(&q).is_err()); // second failure → opens
        assert_eq!(src.breaker_state(), BreakerState::Open);
        // Open circuit short-circuits without the connect timeout.
        let start = Instant::now();
        assert!(matches!(src.search(&q), Err(SourceError::CircuitOpen(_))));
        assert!(start.elapsed() < Duration::from_millis(100));

        // Revive the server on the same port; after the cooldown the
        // half-open probe closes the circuit again.
        std::thread::sleep(Duration::from_millis(150));
        let revived = netmark_webdav::serve(nm.clone(), &addr.to_string());
        // The OS may refuse to rebind the port quickly; when it does, the
        // open/half-open transitions above are still fully exercised.
        if let Ok(server2) = revived {
            let deadline = Instant::now() + Duration::from_secs(5);
            loop {
                std::thread::sleep(Duration::from_millis(120));
                if src.search(&q).is_ok() {
                    break;
                }
                assert!(Instant::now() < deadline, "breaker never recovered");
            }
            assert_eq!(src.breaker_state(), BreakerState::Closed);
            server2.stop();
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn breaker_state_machine_unit() {
        let b = Breaker::new(BreakerConfig {
            failure_threshold: 2,
            cooldown: Duration::from_millis(40),
        });
        assert!(b.admit());
        assert!(!b.record(false));
        assert!(b.admit());
        assert!(b.record(false), "threshold reached → opened");
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.admit(), "open rejects immediately");
        std::thread::sleep(Duration::from_millis(50));
        assert!(b.admit(), "cooldown elapsed → half-open probe admitted");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.admit(), "only one probe at a time");
        assert!(b.record(false), "probe failed → re-opened");
        assert_eq!(b.state(), BreakerState::Open);
        std::thread::sleep(Duration::from_millis(50));
        assert!(b.admit());
        assert!(!b.record(true));
        assert_eq!(b.state(), BreakerState::Closed);
    }
}
