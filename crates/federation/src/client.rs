//! A small HTTP/1.1 client for XDB-over-HTTP federation.
//!
//! The federated path crosses real sockets, so the router needs a client
//! that absorbs the failure modes remote sources actually exhibit: slow
//! answers (connect/read timeouts), transient faults (retry with
//! exponential backoff + jitter — GETs only, which is all the federation
//! protocol uses), and per-query connection cost (a per-source keep-alive
//! pool reuses sockets across queries instead of paying a TCP handshake
//! per request).
//!
//! std TCP only, in keeping with the "lean" thesis — no async runtime, no
//! HTTP framework.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Maximum accepted response body (64 MiB), mirroring the server's cap.
const MAX_BODY: usize = 64 << 20;

/// Ceiling on how long a server-sent `Retry-After` can make us wait per
/// attempt — a confused or hostile server must not park a router thread
/// for minutes.
const MAX_RETRY_AFTER: Duration = Duration::from_secs(10);

/// Tuning knobs for one remote connection.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// Socket read timeout (covers slow/hung responses).
    pub read_timeout: Duration,
    /// Extra attempts after the first failure (idempotent GETs only).
    pub retries: u32,
    /// First backoff delay; doubles per retry.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Reuse connections across requests (`false` sends
    /// `Connection: close` on every request — the pre-keep-alive
    /// behaviour, kept for benchmarking the difference).
    pub keep_alive: bool,
    /// Idle sockets kept per remote.
    pub max_idle: usize,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            connect_timeout: Duration::from_secs(1),
            read_timeout: Duration::from_secs(5),
            retries: 2,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            keep_alive: true,
            max_idle: 4,
        }
    }
}

/// A parsed HTTP response.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Headers, keys lowercased.
    pub headers: BTreeMap<String, String>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// Body as UTF-8 (lossy).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A client pinned to one remote address, with a keep-alive pool.
pub struct HttpClient {
    addr: SocketAddr,
    cfg: ClientConfig,
    pool: Mutex<Vec<TcpStream>>,
    /// Fresh TCP connections opened (pool misses); observability for the
    /// keep-alive benchmark.
    connects: AtomicU64,
    /// `429` answers whose `Retry-After` we honored before retrying —
    /// visibility into how often a remote's admission control pushes
    /// back.
    throttles: AtomicU64,
    /// xorshift state for retry jitter (no external RNG dependency).
    jitter: AtomicU64,
}

impl HttpClient {
    /// Builds a client for `addr` (`host:port`).
    pub fn new(addr: &str, cfg: ClientConfig) -> std::io::Result<HttpClient> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::other(format!("unresolvable address '{addr}'")))?;
        Ok(HttpClient {
            addr,
            cfg,
            pool: Mutex::new(Vec::new()),
            connects: AtomicU64::new(0),
            throttles: AtomicU64::new(0),
            jitter: AtomicU64::new(addr.port() as u64 | 0x9E37_79B9_7F4A_7C15),
        })
    }

    /// The resolved remote address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Fresh TCP connections opened so far (a reuse-efficiency signal:
    /// requests minus connects were served off pooled sockets).
    pub fn connects(&self) -> u64 {
        self.connects.load(Ordering::Relaxed)
    }

    /// `429` responses whose `Retry-After` this client waited out before
    /// retrying.
    pub fn throttles(&self) -> u64 {
        self.throttles.load(Ordering::Relaxed)
    }

    /// Issues `GET <path_and_query>` with retry: transport failures are
    /// retried with exponential backoff + jitter, because a GET in the
    /// federation protocol is always idempotent. A decoded HTTP response
    /// is returned without retrying — except `429 Too Many Requests`,
    /// where the server is explicitly asking us to come back later: its
    /// `Retry-After` is honored (capped at [`MAX_RETRY_AFTER`]) and the
    /// request retried; retries exhausted, the `429` itself is returned
    /// so callers see the shed rather than a synthetic transport error.
    pub fn get(&self, path_and_query: &str) -> std::io::Result<HttpResponse> {
        let mut delay = self.cfg.backoff_base;
        let mut last_err = None;
        let mut last_shed = None;
        for attempt in 0..=self.cfg.retries {
            // A pooled socket may have been closed by the server since the
            // last request; one silent same-attempt refresh on a fresh
            // connection distinguishes "stale pool entry" from "remote
            // actually failing".
            let result = match self.checkout() {
                Some(conn) => self
                    .attempt(conn, path_and_query)
                    .or_else(|_| self.connect().and_then(|c| self.attempt(c, path_and_query))),
                None => self.connect().and_then(|c| self.attempt(c, path_and_query)),
            };
            match result {
                Ok(resp) if resp.status == 429 => {
                    if attempt >= self.cfg.retries {
                        return Ok(resp); // out of retries: surface the shed
                    }
                    self.throttles.fetch_add(1, Ordering::Relaxed);
                    let wait = resp
                        .headers
                        .get("retry-after")
                        .and_then(|v| v.trim().parse::<u64>().ok())
                        .map(Duration::from_secs)
                        .unwrap_or(delay)
                        .min(MAX_RETRY_AFTER);
                    last_shed = Some(resp);
                    // Jitter on top of the server's ask, so a fleet shed
                    // in the same instant does not return in the same
                    // instant.
                    std::thread::sleep(wait + self.jittered(self.cfg.backoff_base));
                    continue;
                }
                Ok(resp) => return Ok(resp),
                Err(e) => last_err = Some(e),
            }
            if attempt < self.cfg.retries {
                std::thread::sleep(self.jittered(delay));
                delay = (delay * 2).min(self.cfg.backoff_cap);
            }
        }
        if let Some(resp) = last_shed {
            return Ok(resp);
        }
        Err(last_err.unwrap_or_else(|| std::io::Error::other("no attempt made")))
    }

    /// Full backoff ± up to 50% jitter, so a fleet of routers retrying a
    /// recovering source does not stampede it in lockstep.
    fn jittered(&self, d: Duration) -> Duration {
        let mut x = self.jitter.load(Ordering::Relaxed);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.jitter.store(x, Ordering::Relaxed);
        let nanos = d.as_nanos() as u64;
        let spread = nanos / 2;
        if spread == 0 {
            return d;
        }
        Duration::from_nanos(nanos - spread / 2 + x % spread)
    }

    fn checkout(&self) -> Option<TcpStream> {
        if !self.cfg.keep_alive {
            return None;
        }
        self.pool.lock().expect("pool poisoned").pop()
    }

    fn checkin(&self, conn: TcpStream) {
        if !self.cfg.keep_alive {
            return;
        }
        let mut pool = self.pool.lock().expect("pool poisoned");
        if pool.len() < self.cfg.max_idle {
            pool.push(conn);
        }
    }

    fn connect(&self) -> std::io::Result<TcpStream> {
        let conn = TcpStream::connect_timeout(&self.addr, self.cfg.connect_timeout)?;
        self.connects.fetch_add(1, Ordering::Relaxed);
        conn.set_nodelay(true)?;
        Ok(conn)
    }

    /// One request/response exchange on one connection.
    fn attempt(&self, mut conn: TcpStream, path_and_query: &str) -> std::io::Result<HttpResponse> {
        conn.set_read_timeout(Some(self.cfg.read_timeout))?;
        let connection = if self.cfg.keep_alive {
            "keep-alive"
        } else {
            "close"
        };
        conn.write_all(
            format!(
                "GET {path_and_query} HTTP/1.1\r\nHost: {}\r\nConnection: {connection}\r\n\r\n",
                self.addr
            )
            .as_bytes(),
        )?;
        conn.flush()?;
        let mut reader = BufReader::new(conn.try_clone()?);
        let (resp, server_keeps) = read_response(&mut reader)?;
        if self.cfg.keep_alive && server_keeps {
            self.checkin(conn);
        }
        Ok(resp)
    }
}

/// Parses one response off the stream; the bool says whether the server
/// will keep the connection open (safe to pool).
fn read_response<R: BufRead>(reader: &mut R) -> std::io::Result<(HttpResponse, bool)> {
    let mut status_line = String::new();
    if reader.read_line(&mut status_line)? == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "connection closed before status line",
        ));
    }
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad status line '{}'", status_line.trim()),
            )
        })?;
    let mut headers = BTreeMap::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed inside headers",
            ));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((k, v)) = line.split_once(':') {
            headers.insert(k.trim().to_ascii_lowercase(), v.trim().to_string());
        }
    }
    let keep = headers
        .get("connection")
        .map(|v| !v.eq_ignore_ascii_case("close"))
        .unwrap_or(true);
    let body = match headers.get("content-length") {
        Some(v) => {
            let len: usize = v.parse().map_err(|_| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("bad content-length '{v}'"),
                )
            })?;
            if len > MAX_BODY {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("response body of {len} bytes exceeds client limit"),
                ));
            }
            let mut body = vec![0u8; len];
            reader.read_exact(&mut body)?;
            body
        }
        None => {
            // No length: read to close (server cannot be pooled).
            let mut body = Vec::new();
            reader.take(MAX_BODY as u64).read_to_end(&mut body)?;
            return Ok((
                HttpResponse {
                    status,
                    headers,
                    body,
                },
                false,
            ));
        }
    };
    Ok((
        HttpResponse {
            status,
            headers,
            body,
        },
        keep,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// A tiny always-200 server; answers `count` requests per connection.
    fn echo_server(per_conn: usize) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let join = std::thread::spawn(move || {
            for conn in listener.incoming() {
                let Ok(conn) = conn else { break };
                std::thread::spawn(move || {
                    let mut reader = BufReader::new(conn.try_clone().unwrap());
                    for _ in 0..per_conn {
                        let mut line = String::new();
                        if reader.read_line(&mut line).unwrap_or(0) == 0 {
                            return;
                        }
                        let path = line.split_whitespace().nth(1).unwrap_or("?").to_string();
                        loop {
                            let mut h = String::new();
                            if reader.read_line(&mut h).unwrap_or(0) == 0 {
                                return;
                            }
                            if h == "\r\n" || h == "\n" {
                                break;
                            }
                        }
                        let body = format!("echo {path}");
                        let mut w = reader.get_ref().try_clone().unwrap();
                        let _ = w.write_all(
                            format!(
                                "HTTP/1.1 200 OK\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n{}",
                                body.len(),
                                body
                            )
                            .as_bytes(),
                        );
                    }
                });
            }
        });
        (addr, join)
    }

    #[test]
    fn get_and_keep_alive_reuse() {
        let (addr, _join) = echo_server(100);
        let client = HttpClient::new(&addr.to_string(), ClientConfig::default()).unwrap();
        for i in 0..5 {
            let resp = client.get(&format!("/r{i}")).unwrap();
            assert_eq!(resp.status, 200);
            assert_eq!(resp.body_text(), format!("echo /r{i}"));
        }
        assert_eq!(
            client.connects(),
            1,
            "five requests over one pooled connection"
        );
    }

    #[test]
    fn connection_close_disables_reuse() {
        let (addr, _join) = echo_server(100);
        let cfg = ClientConfig {
            keep_alive: false,
            ..ClientConfig::default()
        };
        let client = HttpClient::new(&addr.to_string(), cfg).unwrap();
        for _ in 0..3 {
            assert_eq!(client.get("/x").unwrap().status, 200);
        }
        assert_eq!(client.connects(), 3, "one fresh connection per request");
    }

    #[test]
    fn stale_pooled_connection_is_refreshed() {
        // Server answers exactly one request per connection, then closes
        // without saying `Connection: close` — the pooled socket goes
        // stale and the next get() must transparently reconnect.
        let (addr, _join) = echo_server(1);
        let client = HttpClient::new(&addr.to_string(), ClientConfig::default()).unwrap();
        assert_eq!(client.get("/a").unwrap().status, 200);
        assert_eq!(client.get("/b").unwrap().status, 200);
        assert_eq!(client.connects(), 2);
    }

    #[test]
    fn refused_connection_errors_after_retries() {
        // Bind then drop: nothing listens on the port.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let cfg = ClientConfig {
            retries: 1,
            backoff_base: Duration::from_millis(1),
            connect_timeout: Duration::from_millis(200),
            ..ClientConfig::default()
        };
        let client = HttpClient::new(&addr.to_string(), cfg).unwrap();
        assert!(client.get("/x").is_err());
    }

    #[test]
    fn read_timeout_fires_on_hung_server() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // Accept and never answer.
        let _hold = std::thread::spawn(move || {
            let conns: Vec<_> = listener.incoming().take(2).collect();
            std::thread::sleep(Duration::from_secs(5));
            drop(conns);
        });
        let cfg = ClientConfig {
            read_timeout: Duration::from_millis(100),
            retries: 1,
            backoff_base: Duration::from_millis(1),
            ..ClientConfig::default()
        };
        let client = HttpClient::new(&addr.to_string(), cfg).unwrap();
        let start = std::time::Instant::now();
        assert!(client.get("/x").is_err());
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "timed out promptly, not hung"
        );
    }

    #[test]
    fn jitter_stays_in_band() {
        let client = HttpClient::new("127.0.0.1:1", ClientConfig::default()).unwrap();
        let base = Duration::from_millis(100);
        for _ in 0..100 {
            let j = client.jittered(base);
            assert!(j >= Duration::from_millis(75) && j < Duration::from_millis(150));
        }
    }
}
