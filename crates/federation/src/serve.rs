//! HTTP serving for databanks — the deployed shape of Fig 8.
//!
//! Applications reach the thin router the same way they reach a single
//! NETMARK: an XDB URL. A query naming `databank=` fans out through the
//! [`Router`]; queries without one fall through to the local engine (when
//! there is one). The router adds *no* other middleware surface — no
//! schema endpoints, no mapping admin — because there are no schemas and
//! no mappings.

use crate::databank::Router;
use netmark::XdbBackend;
use netmark_model::Node;
use netmark_netserve::{Frontend, FrontendConfig, FrontendHandle, FrontendStats};
use netmark_webdav::{
    handle as local_handle, respond_query, server_stats_node, FrontendStatsSnapshot, HttpService,
    Request, Response, StatsStamp,
};
use netmark_xdb::{Capabilities, XdbQuery};
use std::net::TcpListener;
use std::sync::Arc;

/// A running federated server; dropping the handle stops it.
pub struct FederatedServerHandle {
    frontend: FrontendHandle,
}

impl FederatedServerHandle {
    /// Bound address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.frontend.addr()
    }

    /// Point-in-time front-end counters (also served as `<server/>`
    /// under `GET /xdb/stats`).
    pub fn server_stats(&self) -> FrontendStatsSnapshot {
        self.frontend.stats().snapshot()
    }

    /// Stops the front end — accept loop, workers, poller, and every
    /// live connection — and joins its threads.
    pub fn stop(self) {
        self.frontend.stop();
    }
}

/// Dispatches one request against the router (+ optional local engine).
pub fn handle_federated(
    router: &Router,
    local: Option<&dyn XdbBackend>,
    req: &Request,
) -> Response {
    // A federated endpoint is a full XDB peer to its own clients: whatever
    // a source cannot evaluate, the router augments. Routers therefore
    // federate transitively — a RemoteSource can point at another router.
    if req.method == "GET" && req.path == "/xdb/capabilities" {
        return Response::new(200).with_xml(&Capabilities::FULL.to_xml());
    }
    if req.method == "GET" && req.path == "/xdb/stats" {
        return Response::new(200).with_xml(&stats_node(router, local).to_xml());
    }
    if req.method == "GET" && req.path == "/xdb" {
        // Parse once; both the federated and local arms get the same
        // parsed query (the local arm used to re-parse inside the WebDAV
        // handler, a second code path that could — and did — drift).
        let qs = req.query.as_deref().unwrap_or("");
        return match XdbQuery::from_url(qs) {
            Ok(q) => match &q.databank {
                Some(bank) => match router.query(bank, &q) {
                    Ok(fr) => {
                        let mut resp = Response::new(200).with_xml(&fr.results.to_xml());
                        if fr.degraded() {
                            resp = resp.with_header("X-Netmark-Degraded", "true");
                        }
                        resp
                    }
                    Err(e) => Response::new(404).with_text(&e.to_string()),
                },
                None => match local {
                    Some(nm) => respond_query(nm, &q),
                    None => Response::new(404).with_text("no databank named and no local store"),
                },
            },
            Err(e) => Response::new(400).with_text(&format!("bad xdb query: {e}")),
        };
    }
    match local {
        Some(nm) => local_handle(nm, req),
        None => Response::new(404).with_text("no databank named and no local store"),
    }
}

/// The `<stats>` document served at `GET /xdb/stats`: per-source router
/// health plus the local engine's read-path counters (when there is one).
fn stats_node(router: &Router, local: Option<&dyn XdbBackend>) -> Node {
    let mut sources = Node::element("sources");
    for (name, s) in router.source_stats() {
        sources = sources.with_child(
            Node::element("source")
                .with_attr("name", &name)
                .with_attr("queries", &s.queries.to_string())
                .with_attr("failures", &s.failures.to_string())
                .with_attr("hits", &s.hits.to_string())
                .with_attr("mean-latency-us", &s.mean_latency().as_micros().to_string())
                .with_attr("max-latency-us", &s.max_latency.as_micros().to_string())
                .with_attr("breaker-opens", &s.breaker_opens.to_string())
                .with_attr("short-circuits", &s.short_circuits.to_string()),
        );
    }
    let mut stats = Node::element("stats").with_child(sources);
    if let Some(nm) = local {
        for child in nm.stats_children() {
            stats = stats.with_child(child);
        }
    }
    stats
}

/// Starts the federated server on `bind` with the default
/// [`FrontendConfig`].
pub fn serve_router(
    router: Arc<Router>,
    local: Option<Arc<dyn XdbBackend>>,
    bind: &str,
) -> std::io::Result<FederatedServerHandle> {
    serve_router_with(router, local, bind, FrontendConfig::default())
}

/// [`serve_router`] with explicit front-end tuning (worker count, queue
/// depth, admission caps, idle/read budgets — see [`FrontendConfig`]).
/// The same bounded front end as the NETMARK server: one timeout
/// discipline for both endpoints, instead of the federated server's old
/// raw `TcpStream` handlers that never set a read timeout.
pub fn serve_router_with(
    router: Arc<Router>,
    local: Option<Arc<dyn XdbBackend>>,
    bind: &str,
    cfg: FrontendConfig,
) -> std::io::Result<FederatedServerHandle> {
    let listener = TcpListener::bind(bind)?;
    let stats = FrontendStats::shared();
    let stats_for_handler = Arc::clone(&stats);
    let stamp = StatsStamp::new();
    let service = HttpService::new(move |req: &Request| {
        if req.method == "GET" && req.path == "/xdb/stats" {
            let node = stamp.stamp(
                stats_node(&router, local.as_deref())
                    .with_child(server_stats_node(&stats_for_handler.snapshot())),
            );
            return Response::new(200).with_xml(&node.to_xml());
        }
        handle_federated(&router, local.as_deref(), req)
    });
    let frontend = Frontend::start(listener, service, cfg, stats)?;
    Ok(FederatedServerHandle { frontend })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapter::{ContentOnlySource, NetmarkSource};
    use netmark::NetMark;
    use std::io::{Read, Write};
    use std::net::TcpStream;

    fn request(addr: std::net::SocketAddr, raw: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(raw.as_bytes()).unwrap();
        // Half-close so the keep-alive server sees EOF and closes its side.
        s.shutdown(std::net::Shutdown::Write).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn federated_url_query_over_http() {
        let base = std::env::temp_dir().join(format!("netmark-fsrv-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let nm = Arc::new(NetMark::open(&base.join("local")).unwrap());
        nm.insert_file("local.txt", "# Budget\nlocal money\n")
            .unwrap();
        let llis = ContentOnlySource::new(
            "llis",
            vec![(
                "remote.txt".to_string(),
                "# Budget\nremote money\n".to_string(),
            )],
        );
        let mut router = Router::new();
        router
            .register_source(Arc::new(NetmarkSource::new("local", Arc::clone(&nm))))
            .unwrap();
        router.register_source(Arc::new(llis)).unwrap();
        router.define_databank("apps", &["local", "llis"]).unwrap();

        let h = serve_router(Arc::new(router), Some(nm.clone() as _), "127.0.0.1:0").unwrap();

        // Federated query: both sources answer.
        let resp = request(
            h.addr(),
            "GET /xdb?databank=apps&Context=Budget HTTP/1.1\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        assert!(resp.contains("local money"));
        assert!(resp.contains("remote money"));
        assert!(resp.contains("source=\"llis\""));

        // No databank: served by the local engine only.
        let resp = request(h.addr(), "GET /xdb?Context=Budget HTTP/1.1\r\n\r\n");
        assert!(resp.contains("local money"));
        assert!(!resp.contains("remote money"));

        // Unknown databank → 404.
        let resp = request(
            h.addr(),
            "GET /xdb?databank=ghost&Context=Budget HTTP/1.1\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 404"), "{resp}");

        // The router advertises full capabilities (it augments weakness).
        let resp = request(h.addr(), "GET /xdb/capabilities HTTP/1.1\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        assert!(resp.contains("context-search=\"true\""), "{resp}");

        // Stats: per-source router health + the local engine's read path.
        let resp = request(h.addr(), "GET /xdb/stats HTTP/1.1\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        assert!(resp.contains("name=\"llis\""), "{resp}");
        assert!(resp.contains("name=\"local\""), "{resp}");
        assert!(resp.contains("<query"), "{resp}");
        assert!(resp.contains("uptime="), "{resp}");
        assert!(resp.contains("stats-generation=\"1\""), "{resp}");

        // Malformed queries get a typed 400 from the shared parser.
        let resp = request(h.addr(), "GET /xdb?databank=apps&limit=x HTTP/1.1\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
        assert!(resp.contains("limit"), "{resp}");

        h.stop();
        std::fs::remove_dir_all(&base).unwrap();
    }
}
