//! XSLT-lite: template-driven result composition.
//!
//! The paper composes query results into new documents by shipping an XSLT
//! stylesheet name in the query URL and running Xalan over the result set
//! (Figs 6–7). This engine implements the subset those compositions need:
//!
//! - `xsl:stylesheet` / `xsl:transform` with `xsl:template match=...`
//! - `xsl:apply-templates [select] [with xsl:sort]`
//! - `xsl:for-each select [with xsl:sort]`
//! - `xsl:value-of select`
//! - `xsl:copy-of select` (deep copy of selected nodes)
//! - `xsl:if test` (existence or `path='value'` equality)
//! - `xsl:choose` / `xsl:when` / `xsl:otherwise`
//! - `xsl:text`
//! - literal result elements with `{path}` attribute value templates
//!
//! Template matching supports `/` (root), element names, `*`, and
//! name-with-predicate patterns, with the usual specificity order
//! (predicate > name > `*` > built-in).

use crate::xpath::{eval, parse_path, select, Path, XPathError};
use netmark_model::{Node, NodeType};
use netmark_sgml::{parse_xml, NodeTypeConfig};
use std::fmt;

/// Errors from stylesheet parsing or application.
#[derive(Debug)]
pub enum XsltError {
    /// The stylesheet XML itself failed to parse.
    BadStylesheet(String),
    /// A select/match/test expression failed to parse.
    BadExpr(XPathError),
}

impl fmt::Display for XsltError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XsltError::BadStylesheet(m) => write!(f, "bad stylesheet: {m}"),
            XsltError::BadExpr(e) => write!(f, "bad expression: {e}"),
        }
    }
}

impl std::error::Error for XsltError {}

impl From<XPathError> for XsltError {
    fn from(e: XPathError) -> Self {
        XsltError::BadExpr(e)
    }
}

/// A `match` pattern.
#[derive(Debug, Clone, PartialEq)]
enum Pattern {
    Root,
    Any,
    Name(String),
    /// `name[pred...]` — reuses the path parser on the single step.
    NameWithPreds(Path),
    Text,
}

impl Pattern {
    fn parse(src: &str) -> Result<Pattern, XsltError> {
        let s = src.trim();
        Ok(match s {
            "/" => Pattern::Root,
            "*" => Pattern::Any,
            "text()" => Pattern::Text,
            _ if s.contains('[') => Pattern::NameWithPreds(parse_path(s)?),
            _ => Pattern::Name(s.to_string()),
        })
    }

    fn specificity(&self) -> u32 {
        match self {
            Pattern::NameWithPreds(_) => 3,
            Pattern::Name(_) | Pattern::Root | Pattern::Text => 2,
            Pattern::Any => 1,
        }
    }

    fn matches(&self, node: &Node, is_root: bool) -> bool {
        match self {
            Pattern::Root => is_root,
            Pattern::Any => node.ntype != NodeType::Text,
            Pattern::Text => node.ntype == NodeType::Text,
            Pattern::Name(n) => node.ntype != NodeType::Text && node.name == *n,
            Pattern::NameWithPreds(path) => {
                // Evaluate the single-step pattern against a shim parent.
                if node.ntype == NodeType::Text {
                    return false;
                }
                let shim = Node {
                    ntype: NodeType::Element,
                    name: "#shim".to_string(),
                    text: String::new(),
                    attrs: vec![],
                    children: vec![node.clone()],
                };
                eval(path, &shim).exists()
            }
        }
    }
}

#[derive(Debug, Clone)]
struct Template {
    pattern: Pattern,
    body: Vec<Node>,
}

/// A compiled stylesheet.
#[derive(Debug, Clone)]
pub struct Stylesheet {
    templates: Vec<Template>,
}

const XSL_NS: &str = "xsl:";

fn is_xsl(node: &Node, local: &str) -> bool {
    node.name
        .strip_prefix(XSL_NS)
        .map(|l| l == local)
        .unwrap_or(false)
}

impl Stylesheet {
    /// Compiles a stylesheet from its XML source.
    pub fn parse(source: &str) -> Result<Stylesheet, XsltError> {
        let cfg = NodeTypeConfig::empty();
        let root = parse_xml(source, &cfg).map_err(|e| XsltError::BadStylesheet(e.message))?;
        if !is_xsl(&root, "stylesheet") && !is_xsl(&root, "transform") {
            return Err(XsltError::BadStylesheet(format!(
                "root element is <{}>, expected <xsl:stylesheet>",
                root.name
            )));
        }
        let mut templates = Vec::new();
        for child in &root.children {
            if is_xsl(child, "template") {
                let m = child
                    .attr("match")
                    .ok_or_else(|| XsltError::BadStylesheet("xsl:template without match".into()))?;
                templates.push(Template {
                    pattern: Pattern::parse(m)?,
                    body: child.children.clone(),
                });
            }
        }
        if templates.is_empty() {
            return Err(XsltError::BadStylesheet("no templates".into()));
        }
        Ok(Stylesheet { templates })
    }

    /// Applies the stylesheet to `input`, producing the result tree. The
    /// result is wrapped in a single root: if the transform emits exactly
    /// one element, that element; otherwise a synthesized `result` element.
    pub fn apply(&self, input: &Node) -> Result<Node, XsltError> {
        let out = self.apply_node(input, input, true)?;
        let mut elements: Vec<Node> = out;
        if elements.len() == 1 && elements[0].ntype != NodeType::Text {
            Ok(elements.remove(0))
        } else {
            let mut root = Node::simulation("result");
            root.children = elements;
            Ok(root)
        }
    }

    fn best_template(&self, node: &Node, is_root: bool) -> Option<&Template> {
        self.templates
            .iter()
            .filter(|t| t.pattern.matches(node, is_root))
            .max_by_key(|t| t.pattern.specificity())
    }

    fn apply_node(&self, node: &Node, root: &Node, is_root: bool) -> Result<Vec<Node>, XsltError> {
        match self.best_template(node, is_root) {
            Some(t) => {
                let body = t.body.clone();
                self.instantiate(&body, node, root)
            }
            None => {
                // Built-in rules: text copies; elements recurse.
                if node.ntype == NodeType::Text {
                    Ok(vec![node.clone()])
                } else {
                    let mut out = Vec::new();
                    for c in &node.children {
                        out.extend(self.apply_node(c, root, false)?);
                    }
                    Ok(out)
                }
            }
        }
    }

    fn instantiate(
        &self,
        body: &[Node],
        context: &Node,
        root: &Node,
    ) -> Result<Vec<Node>, XsltError> {
        let mut out = Vec::new();
        for item in body {
            out.extend(self.instantiate_one(item, context, root)?);
        }
        Ok(out)
    }

    fn sorted_selection<'a>(
        &self,
        instr: &Node,
        selected: Vec<&'a Node>,
    ) -> Result<Vec<&'a Node>, XsltError> {
        let Some(sort) = instr.children.iter().find(|c| is_xsl(c, "sort")) else {
            return Ok(selected);
        };
        let key_path = match sort.attr("select") {
            Some(s) => Some(parse_path(s)?),
            None => None,
        };
        let descending = sort.attr("order") == Some("descending");
        let numeric = sort.attr("data-type") == Some("number");
        let mut keyed: Vec<(String, &Node)> = selected
            .into_iter()
            .map(|n| {
                let key = match &key_path {
                    Some(p) => eval(p, n).first_string(),
                    None => n.text_content(),
                };
                (key, n)
            })
            .collect();
        if numeric {
            keyed.sort_by(|a, b| {
                let fa: f64 = a.0.trim().parse().unwrap_or(f64::NAN);
                let fb: f64 = b.0.trim().parse().unwrap_or(f64::NAN);
                fa.partial_cmp(&fb).unwrap_or(std::cmp::Ordering::Equal)
            });
        } else {
            keyed.sort_by(|a, b| a.0.cmp(&b.0));
        }
        if descending {
            keyed.reverse();
        }
        Ok(keyed.into_iter().map(|(_, n)| n).collect())
    }

    fn instantiate_one(
        &self,
        item: &Node,
        context: &Node,
        root: &Node,
    ) -> Result<Vec<Node>, XsltError> {
        if item.ntype == NodeType::Text {
            let t = item.text.trim();
            if t.is_empty() {
                return Ok(vec![]);
            }
            return Ok(vec![Node::text(t)]);
        }
        if is_xsl(item, "text") {
            // Verbatim text, whitespace preserved.
            return Ok(vec![Node::text(&item.text_content())]);
        }
        if is_xsl(item, "value-of") {
            let sel = item
                .attr("select")
                .ok_or_else(|| XsltError::BadStylesheet("value-of without select".into()))?;
            let v = select(sel, context)?;
            let s = v.first_string();
            return Ok(if s.is_empty() {
                vec![]
            } else {
                vec![Node::text(&s)]
            });
        }
        if is_xsl(item, "copy-of") {
            let sel = item
                .attr("select")
                .ok_or_else(|| XsltError::BadStylesheet("copy-of without select".into()))?;
            return Ok(select(sel, context)?
                .into_nodes()
                .into_iter()
                .cloned()
                .collect());
        }
        if is_xsl(item, "apply-templates") {
            let selected: Vec<&Node> = match item.attr("select") {
                Some(sel) => select(sel, context)?.into_nodes(),
                None => context.children.iter().collect(),
            };
            let selected = self.sorted_selection(item, selected)?;
            let mut out = Vec::new();
            for n in selected {
                out.extend(self.apply_node(n, root, false)?);
            }
            return Ok(out);
        }
        if is_xsl(item, "for-each") {
            let sel = item
                .attr("select")
                .ok_or_else(|| XsltError::BadStylesheet("for-each without select".into()))?;
            let selected = self.sorted_selection(item, select(sel, context)?.into_nodes())?;
            let body: Vec<Node> = item
                .children
                .iter()
                .filter(|c| !is_xsl(c, "sort"))
                .cloned()
                .collect();
            let mut out = Vec::new();
            for n in selected {
                out.extend(self.instantiate(&body, n, root)?);
            }
            return Ok(out);
        }
        if is_xsl(item, "choose") {
            for arm in &item.children {
                if is_xsl(arm, "when") {
                    let test = arm
                        .attr("test")
                        .ok_or_else(|| XsltError::BadStylesheet("xsl:when without test".into()))?;
                    if eval_test(test, context)? {
                        return self.instantiate(&arm.children, context, root);
                    }
                } else if is_xsl(arm, "otherwise") {
                    return self.instantiate(&arm.children, context, root);
                }
            }
            return Ok(vec![]);
        }
        if is_xsl(item, "if") {
            let test = item
                .attr("test")
                .ok_or_else(|| XsltError::BadStylesheet("if without test".into()))?;
            if eval_test(test, context)? {
                return self.instantiate(&item.children, context, root);
            }
            return Ok(vec![]);
        }
        if item.name.starts_with(XSL_NS) {
            return Err(XsltError::BadStylesheet(format!(
                "unsupported instruction <{}>",
                item.name
            )));
        }
        // Literal result element with attribute value templates.
        let mut el = Node {
            ntype: item.ntype,
            name: item.name.clone(),
            text: String::new(),
            attrs: Vec::with_capacity(item.attrs.len()),
            children: Vec::new(),
        };
        for (k, v) in &item.attrs {
            el.attrs.push((k.clone(), expand_avt(v, context)?));
        }
        el.children = self.instantiate(&item.children, context, root)?;
        Ok(vec![el])
    }
}

/// Evaluates an `xsl:if` test: `path` (existence) or `path='value'`.
fn eval_test(test: &str, context: &Node) -> Result<bool, XsltError> {
    let t = test.trim();
    if let Some((lhs, rhs)) = t.split_once('=') {
        let rhs = rhs.trim();
        if let Some(v) = rhs
            .strip_prefix('\'')
            .and_then(|r| r.strip_suffix('\''))
            .or_else(|| rhs.strip_prefix('"').and_then(|r| r.strip_suffix('"')))
        {
            let val = select(lhs.trim(), context)?;
            return Ok(val.first_string() == v);
        }
    }
    Ok(select(t, context)?.exists())
}

/// Expands `{path}` segments in an attribute value template.
fn expand_avt(value: &str, context: &Node) -> Result<String, XsltError> {
    if !value.contains('{') {
        return Ok(value.to_string());
    }
    let mut out = String::with_capacity(value.len());
    let mut rest = value;
    while let Some(open) = rest.find('{') {
        out.push_str(&rest[..open]);
        let after = &rest[open + 1..];
        let Some(close) = after.find('}') else {
            out.push('{');
            rest = after;
            continue;
        };
        let expr = &after[..close];
        out.push_str(&select(expr, context)?.first_string());
        rest = &after[close + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmark_sgml::parse_xml;

    fn input() -> Node {
        let cfg = NodeTypeConfig::xml_default();
        parse_xml(
            r#"<results>
                 <hit doc="b.doc"><Context>Budget</Context><Content>two dollars</Content></hit>
                 <hit doc="a.doc"><Context>Budget</Context><Content>one dollar</Content></hit>
               </results>"#,
            &cfg,
        )
        .unwrap()
    }

    #[test]
    fn value_of_and_literal_elements() {
        let ss = Stylesheet::parse(
            r#"<xsl:stylesheet>
                 <xsl:template match="/">
                   <report><xsl:value-of select="//Content"/></report>
                 </xsl:template>
               </xsl:stylesheet>"#,
        )
        .unwrap();
        let out = ss.apply(&input()).unwrap();
        assert_eq!(out.name, "report");
        assert_eq!(out.text_content(), "two dollars");
    }

    #[test]
    fn for_each_builds_sections() {
        let ss = Stylesheet::parse(
            r#"<xsl:stylesheet>
                 <xsl:template match="/">
                   <composed>
                     <xsl:for-each select="hit">
                       <section from="{@doc}"><xsl:value-of select="Content"/></section>
                     </xsl:for-each>
                   </composed>
                 </xsl:template>
               </xsl:stylesheet>"#,
        )
        .unwrap();
        let out = ss.apply(&input()).unwrap();
        let sections = out.find_all("section");
        assert_eq!(sections.len(), 2);
        assert_eq!(sections[0].attr("from"), Some("b.doc"));
        assert_eq!(sections[1].text_content(), "one dollar");
    }

    #[test]
    fn sort_ascending_by_attr() {
        let ss = Stylesheet::parse(
            r#"<xsl:stylesheet>
                 <xsl:template match="/">
                   <composed>
                     <xsl:for-each select="hit">
                       <xsl:sort select="@doc"/>
                       <d><xsl:value-of select="@doc"/></d>
                     </xsl:for-each>
                   </composed>
                 </xsl:template>
               </xsl:stylesheet>"#,
        )
        .unwrap();
        let out = ss.apply(&input()).unwrap();
        let docs: Vec<String> = out.find_all("d").iter().map(|d| d.text_content()).collect();
        assert_eq!(docs, vec!["a.doc", "b.doc"]);
    }

    #[test]
    fn numeric_descending_sort() {
        let cfg = NodeTypeConfig::empty();
        let inp = parse_xml("<r><v n='2'/><v n='10'/><v n='1'/></r>", &cfg).unwrap();
        let ss = Stylesheet::parse(
            r#"<xsl:stylesheet>
                 <xsl:template match="/">
                   <o><xsl:for-each select="v">
                     <xsl:sort select="@n" data-type="number" order="descending"/>
                     <k><xsl:value-of select="@n"/></k>
                   </xsl:for-each></o>
                 </xsl:template>
               </xsl:stylesheet>"#,
        )
        .unwrap();
        let out = ss.apply(&inp).unwrap();
        let ks: Vec<String> = out.find_all("k").iter().map(|k| k.text_content()).collect();
        assert_eq!(ks, vec!["10", "2", "1"]);
    }

    #[test]
    fn apply_templates_with_match_precedence() {
        let ss = Stylesheet::parse(
            r#"<xsl:stylesheet>
                 <xsl:template match="/"><out><xsl:apply-templates/></out></xsl:template>
                 <xsl:template match="hit[@doc='a.doc']"><special/></xsl:template>
                 <xsl:template match="hit"><normal/></xsl:template>
               </xsl:stylesheet>"#,
        )
        .unwrap();
        let out = ss.apply(&input()).unwrap();
        assert_eq!(out.find_all("normal").len(), 1);
        assert_eq!(out.find_all("special").len(), 1);
    }

    #[test]
    fn if_existence_and_equality() {
        let ss = Stylesheet::parse(
            r#"<xsl:stylesheet>
                 <xsl:template match="/">
                   <o>
                     <xsl:if test="hit"><has-hits/></xsl:if>
                     <xsl:if test="missing"><no/></xsl:if>
                     <xsl:if test="hit[1]/@doc='b.doc'"><first-is-b/></xsl:if>
                   </o>
                 </xsl:template>
               </xsl:stylesheet>"#,
        )
        .unwrap();
        let out = ss.apply(&input()).unwrap();
        assert!(out.find("has-hits").is_some());
        assert!(out.find("no").is_none());
        assert!(out.find("first-is-b").is_some());
    }

    #[test]
    fn copy_of_preserves_subtree() {
        let ss = Stylesheet::parse(
            r#"<xsl:stylesheet>
                 <xsl:template match="/"><o><xsl:copy-of select="hit[1]"/></o></xsl:template>
               </xsl:stylesheet>"#,
        )
        .unwrap();
        let out = ss.apply(&input()).unwrap();
        let hit = out.find("hit").unwrap();
        assert_eq!(hit.attr("doc"), Some("b.doc"));
        assert!(hit.find("Content").is_some());
    }

    #[test]
    fn builtin_rules_copy_text() {
        let ss = Stylesheet::parse(
            r#"<xsl:stylesheet>
                 <xsl:template match="Context"/>
               </xsl:stylesheet>"#,
        )
        .unwrap();
        // Context suppressed; everything else falls through to text copy.
        let out = ss.apply(&input()).unwrap();
        let txt = out.text_content();
        assert!(txt.contains("two dollars"));
        assert!(!txt.contains("Budget"));
    }

    #[test]
    fn errors_reported() {
        assert!(Stylesheet::parse("<not-xsl/>").is_err());
        assert!(Stylesheet::parse("<xsl:stylesheet/>").is_err());
        assert!(Stylesheet::parse("<xsl:stylesheet><xsl:template/></xsl:stylesheet>").is_err());
        let ss = Stylesheet::parse(
            r#"<xsl:stylesheet>
                 <xsl:template match="/"><xsl:unknown/></xsl:template>
               </xsl:stylesheet>"#,
        )
        .unwrap();
        assert!(ss.apply(&input()).is_err());
    }

    #[test]
    fn xsl_text_preserves_space() {
        let ss = Stylesheet::parse(
            r#"<xsl:stylesheet>
                 <xsl:template match="/"><o><xsl:text>a b</xsl:text></o></xsl:template>
               </xsl:stylesheet>"#,
        )
        .unwrap();
        let out = ss.apply(&input()).unwrap();
        assert_eq!(out.text_content(), "a b");
    }
}

#[cfg(test)]
mod choose_tests {
    use super::*;
    use netmark_sgml::{parse_xml, NodeTypeConfig};

    #[test]
    fn choose_picks_first_matching_when() {
        let cfg = NodeTypeConfig::empty();
        let inp = parse_xml("<r><v kind='b'/></r>", &cfg).unwrap();
        let ss = Stylesheet::parse(
            r#"<xsl:stylesheet>
                 <xsl:template match="/">
                   <o><xsl:for-each select="v">
                     <xsl:choose>
                       <xsl:when test="@kind='a'"><is-a/></xsl:when>
                       <xsl:when test="@kind='b'"><is-b/></xsl:when>
                       <xsl:otherwise><other/></xsl:otherwise>
                     </xsl:choose>
                   </xsl:for-each></o>
                 </xsl:template>
               </xsl:stylesheet>"#,
        )
        .unwrap();
        let out = ss.apply(&inp).unwrap();
        assert!(out.find("is-b").is_some());
        assert!(out.find("is-a").is_none());
        assert!(out.find("other").is_none());
    }

    #[test]
    fn choose_falls_to_otherwise() {
        let cfg = NodeTypeConfig::empty();
        let inp = parse_xml("<r><v kind='z'/></r>", &cfg).unwrap();
        let ss = Stylesheet::parse(
            r#"<xsl:stylesheet>
                 <xsl:template match="/">
                   <o><xsl:for-each select="v">
                     <xsl:choose>
                       <xsl:when test="@kind='a'"><is-a/></xsl:when>
                       <xsl:otherwise><other/></xsl:otherwise>
                     </xsl:choose>
                   </xsl:for-each></o>
                 </xsl:template>
               </xsl:stylesheet>"#,
        )
        .unwrap();
        let out = ss.apply(&inp).unwrap();
        assert!(out.find("other").is_some());
    }

    #[test]
    fn choose_with_no_match_and_no_otherwise_is_empty() {
        let cfg = NodeTypeConfig::empty();
        let inp = parse_xml("<r><v/></r>", &cfg).unwrap();
        let ss = Stylesheet::parse(
            r#"<xsl:stylesheet>
                 <xsl:template match="/">
                   <o><xsl:choose><xsl:when test="missing"><x/></xsl:when></xsl:choose></o>
                 </xsl:template>
               </xsl:stylesheet>"#,
        )
        .unwrap();
        let out = ss.apply(&inp).unwrap();
        assert!(out.children.is_empty());
    }
}
