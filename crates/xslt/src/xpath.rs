//! XPath-lite: the path language used by stylesheets and result selection.
//!
//! Supported grammar (a pragmatic subset — the paper's result composition
//! uses XSLT only to select sections and wrap them in a new document):
//!
//! ```text
//! path     := '/'? step ('/' step)*  |  '//' step ('/' step)*  |  '.'
//! step     := ('//')? (name | '*' | 'text()' | '@name') pred*
//! pred     := '[' number ']'
//!           | '[' '@'name '=' "'" value "'" ']'
//!           | '[' '@'name ']'
//!           | '[' name '=' "'" value "'" ']'
//!           | '[' name ']'
//! ```
//!
//! `//` makes the following step search all descendants. Absolute paths
//! (`/a`) are evaluated from the context node itself when it matches — the
//! engine always receives the document root as the initial context.

use netmark_model::{Node, NodeType};

/// One predicate within a step.
#[derive(Debug, Clone, PartialEq)]
pub enum Pred {
    /// `[3]` — 1-based position filter.
    Index(usize),
    /// `[@a='v']`.
    AttrEq(String, String),
    /// `[@a]`.
    AttrExists(String),
    /// `[child='v']` — some child element's text equals `v`.
    ChildEq(String, String),
    /// `[child]` — a child element with that name exists.
    ChildExists(String),
}

/// What a step selects.
#[derive(Debug, Clone, PartialEq)]
pub enum Axis {
    /// Child elements with this name.
    Child(String),
    /// Any child element.
    AnyChild,
    /// Text-node children.
    Text,
    /// An attribute of the context node.
    Attr(String),
    /// The context node itself (`.`).
    SelfNode,
}

/// One step: axis + optional descendant flag + predicates.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// Search all descendants instead of children (`//`).
    pub descendant: bool,
    /// Node test.
    pub axis: Axis,
    /// Filters applied in order.
    pub preds: Vec<Pred>,
}

/// A parsed path.
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    /// Steps in order.
    pub steps: Vec<Step>,
    /// Original source text.
    pub source: String,
}

/// Parse failure with a reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XPathError(pub String);

impl std::fmt::Display for XPathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "xpath error: {}", self.0)
    }
}

impl std::error::Error for XPathError {}

fn parse_pred(s: &str) -> Result<Pred, XPathError> {
    let s = s.trim();
    if let Ok(n) = s.parse::<usize>() {
        if n == 0 {
            return Err(XPathError("position predicates are 1-based".into()));
        }
        return Ok(Pred::Index(n));
    }
    let (lhs, rhs) = match s.split_once('=') {
        Some((l, r)) => {
            let r = r.trim();
            let unquoted = r
                .strip_prefix('\'')
                .and_then(|r| r.strip_suffix('\''))
                .or_else(|| r.strip_prefix('"').and_then(|r| r.strip_suffix('"')))
                .ok_or_else(|| XPathError(format!("unquoted comparison value in [{s}]")))?;
            (l.trim(), Some(unquoted.to_string()))
        }
        None => (s, None),
    };
    if let Some(attr) = lhs.strip_prefix('@') {
        Ok(match rhs {
            Some(v) => Pred::AttrEq(attr.to_string(), v),
            None => Pred::AttrExists(attr.to_string()),
        })
    } else {
        Ok(match rhs {
            Some(v) => Pred::ChildEq(lhs.to_string(), v),
            None => Pred::ChildExists(lhs.to_string()),
        })
    }
}

/// Parses a path expression.
pub fn parse_path(src: &str) -> Result<Path, XPathError> {
    let s = src.trim();
    if s.is_empty() {
        return Err(XPathError("empty path".into()));
    }
    if s == "." {
        return Ok(Path {
            steps: vec![Step {
                descendant: false,
                axis: Axis::SelfNode,
                preds: vec![],
            }],
            source: src.to_string(),
        });
    }
    let mut steps = Vec::new();
    let mut rest = s;
    // Leading '/' (absolute) is a no-op for our evaluation model; leading
    // '//' marks the first step descendant.
    let mut next_descendant = false;
    if let Some(r) = rest.strip_prefix("//") {
        next_descendant = true;
        rest = r;
    } else if let Some(r) = rest.strip_prefix('/') {
        rest = r;
    }
    while !rest.is_empty() {
        // Find the end of this step (next '/' not inside brackets).
        let mut depth = 0usize;
        let mut end = rest.len();
        for (i, c) in rest.char_indices() {
            match c {
                '[' => depth += 1,
                ']' => depth = depth.saturating_sub(1),
                '/' if depth == 0 => {
                    end = i;
                    break;
                }
                _ => {}
            }
        }
        let step_src = &rest[..end];
        rest = &rest[end..];
        let descendant = next_descendant;
        next_descendant = false;
        if let Some(r) = rest.strip_prefix("//") {
            next_descendant = true;
            rest = r;
        } else if let Some(r) = rest.strip_prefix('/') {
            rest = r;
        }
        // Split node test from predicates.
        let (test, preds_src) = match step_src.find('[') {
            Some(i) => (&step_src[..i], &step_src[i..]),
            None => (step_src, ""),
        };
        let test = test.trim();
        if test.is_empty() {
            return Err(XPathError(format!("empty step in '{src}'")));
        }
        let axis = if test == "*" {
            Axis::AnyChild
        } else if test == "text()" {
            Axis::Text
        } else if test == "." {
            Axis::SelfNode
        } else if let Some(a) = test.strip_prefix('@') {
            Axis::Attr(a.to_string())
        } else {
            Axis::Child(test.to_string())
        };
        let mut preds = Vec::new();
        let mut p = preds_src;
        while let Some(r) = p.strip_prefix('[') {
            let close = r
                .find(']')
                .ok_or_else(|| XPathError(format!("unclosed predicate in '{src}'")))?;
            preds.push(parse_pred(&r[..close])?);
            p = &r[close + 1..];
        }
        if !p.trim().is_empty() {
            return Err(XPathError(format!("trailing junk after predicates: '{p}'")));
        }
        steps.push(Step {
            descendant,
            axis,
            preds,
        });
    }
    Ok(Path {
        steps,
        source: src.to_string(),
    })
}

/// The result of evaluating a path: nodes, or strings (attributes).
#[derive(Debug, Clone, PartialEq)]
pub enum XPathValue<'a> {
    /// A node set in document order.
    Nodes(Vec<&'a Node>),
    /// String values (attribute steps).
    Strings(Vec<String>),
}

impl<'a> XPathValue<'a> {
    /// String rendering of the *first* item (XSLT `value-of` semantics).
    pub fn first_string(&self) -> String {
        match self {
            XPathValue::Nodes(ns) => ns.first().map(|n| n.text_content()).unwrap_or_default(),
            XPathValue::Strings(ss) => ss.first().cloned().unwrap_or_default(),
        }
    }

    /// True when at least one item was selected.
    pub fn exists(&self) -> bool {
        match self {
            XPathValue::Nodes(ns) => !ns.is_empty(),
            XPathValue::Strings(ss) => !ss.is_empty(),
        }
    }

    /// The node set, or empty for string results.
    pub fn into_nodes(self) -> Vec<&'a Node> {
        match self {
            XPathValue::Nodes(ns) => ns,
            XPathValue::Strings(_) => Vec::new(),
        }
    }
}

fn pred_holds(node: &Node, pred: &Pred, position: usize) -> bool {
    match pred {
        Pred::Index(n) => position == *n,
        Pred::AttrEq(a, v) => node.attr(a) == Some(v.as_str()),
        Pred::AttrExists(a) => node.attr(a).is_some(),
        Pred::ChildEq(name, v) => node
            .children_named(name)
            .iter()
            .any(|c| c.text_content() == *v),
        Pred::ChildExists(name) => !node.children_named(name).is_empty(),
    }
}

fn apply_preds<'a>(mut nodes: Vec<&'a Node>, preds: &[Pred]) -> Vec<&'a Node> {
    for pred in preds {
        nodes = nodes
            .iter()
            .enumerate()
            .filter(|(i, n)| pred_holds(n, pred, i + 1))
            .map(|(_, n)| *n)
            .collect();
    }
    nodes
}

fn children_matching<'a>(node: &'a Node, axis: &Axis) -> Vec<&'a Node> {
    match axis {
        Axis::Child(name) => node
            .children
            .iter()
            .filter(|c| c.ntype != NodeType::Text && c.name == *name)
            .collect(),
        Axis::AnyChild => node
            .children
            .iter()
            .filter(|c| c.ntype != NodeType::Text)
            .collect(),
        Axis::Text => node
            .children
            .iter()
            .filter(|c| c.ntype == NodeType::Text)
            .collect(),
        Axis::SelfNode => vec![node],
        Axis::Attr(_) => Vec::new(),
    }
}

fn descendants_matching<'a>(node: &'a Node, axis: &Axis) -> Vec<&'a Node> {
    // descendant-or-self for element/text tests.
    match axis {
        Axis::Child(name) => node
            .iter()
            .filter(|c| c.ntype != NodeType::Text && c.name == *name)
            .collect(),
        Axis::AnyChild => node.iter().filter(|c| c.ntype != NodeType::Text).collect(),
        Axis::Text => node.iter().filter(|c| c.ntype == NodeType::Text).collect(),
        Axis::SelfNode => vec![node],
        Axis::Attr(_) => Vec::new(),
    }
}

/// Evaluates `path` with `context` as the context node.
pub fn eval<'a>(path: &Path, context: &'a Node) -> XPathValue<'a> {
    let mut current: Vec<&'a Node> = vec![context];
    for (si, step) in path.steps.iter().enumerate() {
        // Attribute steps terminate the path with strings.
        if let Axis::Attr(name) = &step.axis {
            let mut out = Vec::new();
            for n in &current {
                let source: Vec<&Node> = if step.descendant {
                    n.iter().collect()
                } else {
                    vec![*n]
                };
                for m in source {
                    if let Some(v) = m.attr(name) {
                        out.push(v.to_string());
                    }
                }
            }
            if si + 1 != path.steps.len() {
                // '@attr/...' is meaningless; treat as empty.
                return XPathValue::Strings(Vec::new());
            }
            return XPathValue::Strings(out);
        }
        let mut next: Vec<&'a Node> = Vec::new();
        for n in &current {
            let matched = if step.descendant {
                descendants_matching(n, &step.axis)
            } else {
                children_matching(n, &step.axis)
            };
            next.extend(apply_preds(matched, &step.preds));
        }
        // Keep document order, dedup by pointer identity.
        let mut seen: Vec<*const Node> = Vec::new();
        next.retain(|n| {
            let p = *n as *const Node;
            if seen.contains(&p) {
                false
            } else {
                seen.push(p);
                true
            }
        });
        current = next;
        if current.is_empty() {
            break;
        }
    }
    XPathValue::Nodes(current)
}

/// Convenience: parse then evaluate.
pub fn select<'a>(src: &str, context: &'a Node) -> Result<XPathValue<'a>, XPathError> {
    Ok(eval(&parse_path(src)?, context))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Node {
        Node::element("doc")
            .with_child(
                Node::element("section")
                    .with_attr("id", "s1")
                    .with_child(Node::context("title", "Intro"))
                    .with_child(Node::element("p").with_text("first para"))
                    .with_child(Node::element("p").with_text("second para")),
            )
            .with_child(
                Node::element("section")
                    .with_attr("id", "s2")
                    .with_child(Node::context("title", "Budget"))
                    .with_child(Node::element("p").with_text("dollars")),
            )
    }

    #[test]
    fn child_steps() {
        let d = doc();
        let v = select("section/p", &d).unwrap();
        assert_eq!(v.clone().into_nodes().len(), 3);
        assert_eq!(v.first_string(), "first para");
    }

    #[test]
    fn descendant_step() {
        let d = doc();
        let v = select("//p", &d).unwrap();
        assert_eq!(v.into_nodes().len(), 3);
        let v = select("//title", &d).unwrap();
        assert_eq!(v.first_string(), "Intro");
    }

    #[test]
    fn index_predicate() {
        let d = doc();
        assert_eq!(
            select("section[2]/p", &d).unwrap().first_string(),
            "dollars"
        );
        assert_eq!(
            select("section[1]/p[2]", &d).unwrap().first_string(),
            "second para"
        );
        assert!(!select("section[9]", &d).unwrap().exists());
    }

    #[test]
    fn attr_predicates_and_values() {
        let d = doc();
        assert_eq!(
            select("section[@id='s2']/title", &d)
                .unwrap()
                .first_string(),
            "Budget"
        );
        let v = select("section/@id", &d).unwrap();
        assert_eq!(
            v,
            XPathValue::Strings(vec!["s1".to_string(), "s2".to_string()])
        );
        assert!(select("section[@id]", &d).unwrap().exists());
        assert!(!select("section[@missing]", &d).unwrap().exists());
    }

    #[test]
    fn child_eq_predicate() {
        let d = doc();
        let v = select("section[title='Budget']/@id", &d).unwrap();
        assert_eq!(v.first_string(), "s2");
        assert!(select("section[title]", &d).unwrap().exists());
    }

    #[test]
    fn text_and_self() {
        let d = doc();
        let v = select("section/p/text()", &d).unwrap();
        assert_eq!(v.into_nodes().len(), 3);
        let v = select(".", &d).unwrap();
        assert_eq!(v.into_nodes()[0].name, "doc");
    }

    #[test]
    fn wildcard() {
        let d = doc();
        assert_eq!(select("*", &d).unwrap().into_nodes().len(), 2);
        assert_eq!(select("section/*", &d).unwrap().into_nodes().len(), 5);
    }

    #[test]
    fn absolute_prefix_tolerated() {
        let d = doc();
        assert_eq!(select("/section", &d).unwrap().into_nodes().len(), 2);
    }

    #[test]
    fn parse_errors() {
        assert!(parse_path("").is_err());
        assert!(parse_path("a[").is_err());
        assert!(parse_path("a[0]").is_err());
        assert!(parse_path("a[@x=unquoted]").is_err());
    }

    #[test]
    fn double_slash_mid_path() {
        let d = Node::element("r").with_child(
            Node::element("a")
                .with_child(Node::element("b").with_child(Node::element("c").with_text("deep"))),
        );
        assert_eq!(select("a//c", &d).unwrap().first_string(), "deep");
    }
}
