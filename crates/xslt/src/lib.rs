//! `netmark-xslt`: XPath-lite and XSLT-lite result composition.
//!
//! NETMARK formats query results by running an XSLT stylesheet over the
//! result set: "In this URL we may also specify an XSLT stylesheet which
//! specifies how the results are to be formatted and composed into a new
//! document" (paper §2.1.3, Figs 6–7; the paper uses Xalan). This crate is
//! the from-scratch stand-in: a path language ([`xpath`]) and a template
//! engine ([`transform`]) covering the subset result composition needs.

#![warn(missing_docs)]

pub mod transform;
pub mod xpath;

pub use transform::{Stylesheet, XsltError};
pub use xpath::{eval, parse_path, select, Path, XPathError, XPathValue};
