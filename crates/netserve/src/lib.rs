//! `netmark-netserve`: the bounded server front end shared by every HTTP
//! endpoint in the reproduction.
//!
//! The paper's thesis is that middleware should shrink until documents are
//! served "at the speed of the underlying store" (§2.1.5). PRs 4–5 made
//! the read path lock-free end to end; at that point the *accept loop*
//! becomes the tail-latency ceiling: a thread per connection means an
//! unbounded thread count, no admission control, and one slow or silent
//! client pinning a worker forever.
//!
//! This crate replaces thread-per-connection with a fixed shape whose
//! every dimension is bounded (DESIGN.md §13):
//!
//! - a **fixed worker pool** fed by a **bounded ready queue** of
//!   connections known to have bytes waiting;
//! - a **parking lot** for idle keep-alive connections, swept by one
//!   poller thread with non-blocking peeks — thousands of parked sockets
//!   cost zero worker threads (epoll-free per the DESIGN §9 "no async
//!   runtime" decision: bounded threads + socket timeouts);
//! - **admission control** at accept time: a global connection cap, a
//!   per-client in-flight fairness cap, and queue-depth load shedding,
//!   all answered with the service's canned `429 + Retry-After` payload;
//! - **slow-loris defense** as two distinct budgets: idle *between*
//!   requests (parked, reaped after [`FrontendConfig::idle_timeout`]) vs
//!   reading *mid-request* ([`FrontendConfig::read_budget`], enforced by a
//!   deadline-checking reader so trickled bytes cannot extend it);
//! - **RAII accounting**: every accepted connection holds a guard that
//!   releases its registry entry, per-client slot, and gauge on drop — a
//!   panicking handler can no longer leak any of them;
//! - **accept-error backoff**: `accept(2)` failures (EMFILE above all)
//!   sleep [`FrontendConfig::accept_error_backoff`] and are counted,
//!   instead of hot-spinning the accept loop at 100% CPU.
//!
//! The crate is protocol-agnostic: servers implement [`Service`] (one
//! request parsed off a `BufRead`, one response written) and the front end
//! owns every socket lifecycle decision. `netmark-webdav` supplies the
//! HTTP/1.1 binding used by both the NETMARK server and the federation
//! router.

#![warn(missing_docs)]

mod frontend;
mod stats;

pub use frontend::{Acceptor, Frontend, FrontendConfig, FrontendHandle, ServeOutcome, Service};
pub use stats::{FrontendStats, FrontendStatsSnapshot};
