//! Front-end observability: lock-free counters surfaced as `<server/>`
//! under `GET /xdb/stats` (the servers render the node; this crate only
//! counts).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Live counters for one front end. All atomics, relaxed: these are
/// monitoring signals, not synchronization.
#[derive(Debug, Default)]
pub struct FrontendStats {
    /// Connections accepted off the listener (before admission control).
    pub(crate) accepted: AtomicU64,
    /// Requests fully served (response written).
    pub(crate) requests: AtomicU64,
    /// Connections answered `429` because the ready queue was at capacity
    /// or the global connection cap was reached.
    pub(crate) sheds: AtomicU64,
    /// Connections answered `429` because one client address exceeded its
    /// in-flight fairness cap.
    pub(crate) client_rejects: AtomicU64,
    /// Keep-alive connections reaped after sitting idle between requests
    /// past the idle timeout.
    pub(crate) idle_reaped: AtomicU64,
    /// Connections killed mid-request by the read budget (slow-loris).
    pub(crate) read_timeouts: AtomicU64,
    /// Responses whose write failed or timed out (dead or slow-reading
    /// peer).
    pub(crate) write_errors: AtomicU64,
    /// Requests whose total service time overran the soft per-request
    /// deadline (served anyway; this is the observability half of the
    /// deadline story — reads are bounded hard, handlers are measured).
    pub(crate) deadline_overruns: AtomicU64,
    /// `accept(2)` failures (fd exhaustion above all); each one also
    /// sleeps the accept-error backoff instead of hot-spinning.
    pub(crate) accept_errors: AtomicU64,
    /// Handler panics caught by a worker (the connection is dropped, its
    /// accounting released by RAII, and the worker keeps serving).
    pub(crate) panics: AtomicU64,
    /// Gauge: connections currently alive (admitted, not yet closed).
    pub(crate) active: AtomicU64,
    /// Gauge: connections waiting in the bounded ready queue.
    pub(crate) queued: AtomicU64,
    /// Gauge: idle keep-alive connections in the parking lot.
    pub(crate) parked: AtomicU64,
}

macro_rules! bump {
    ($($name:ident),+) => {
        $(pub(crate) fn $name(&self) { self.$name.fetch_add(1, Ordering::Relaxed); })+
    };
}

impl FrontendStats {
    /// A fresh shared handle, for threading one stats block through both
    /// the front end and the request handler that renders it.
    pub fn shared() -> Arc<FrontendStats> {
        Arc::new(FrontendStats::default())
    }

    bump!(
        accepted,
        requests,
        sheds,
        client_rejects,
        idle_reaped,
        read_timeouts,
        write_errors,
        deadline_overruns,
        accept_errors,
        panics
    );

    pub(crate) fn gauge_add(gauge: &AtomicU64, delta: i64) {
        if delta >= 0 {
            gauge.fetch_add(delta as u64, Ordering::Relaxed);
        } else {
            gauge.fetch_sub((-delta) as u64, Ordering::Relaxed);
        }
    }

    pub(crate) fn set_parked(&self, n: u64) {
        self.parked.store(n, Ordering::Relaxed);
    }

    /// Point-in-time copy of every counter.
    pub fn snapshot(&self) -> FrontendStatsSnapshot {
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        FrontendStatsSnapshot {
            accepted: g(&self.accepted),
            requests: g(&self.requests),
            sheds: g(&self.sheds),
            client_rejects: g(&self.client_rejects),
            idle_reaped: g(&self.idle_reaped),
            read_timeouts: g(&self.read_timeouts),
            write_errors: g(&self.write_errors),
            deadline_overruns: g(&self.deadline_overruns),
            accept_errors: g(&self.accept_errors),
            panics: g(&self.panics),
            active: g(&self.active),
            queued: g(&self.queued),
            parked: g(&self.parked),
        }
    }
}

/// Plain-data snapshot of [`FrontendStats`] (what servers render into the
/// `<server/>` stats element).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrontendStatsSnapshot {
    /// Connections accepted off the listener.
    pub accepted: u64,
    /// Requests fully served.
    pub requests: u64,
    /// Connections shed with `429` (queue deep or global cap).
    pub sheds: u64,
    /// Connections rejected with `429` by the per-client fairness cap.
    pub client_rejects: u64,
    /// Idle keep-alive connections reaped.
    pub idle_reaped: u64,
    /// Connections killed by the mid-request read budget.
    pub read_timeouts: u64,
    /// Response writes that failed or timed out.
    pub write_errors: u64,
    /// Requests overrunning the soft per-request deadline.
    pub deadline_overruns: u64,
    /// `accept(2)` failures (each backed off, not spun on).
    pub accept_errors: u64,
    /// Handler panics absorbed by workers.
    pub panics: u64,
    /// Gauge: live connections.
    pub active: u64,
    /// Gauge: connections in the ready queue.
    pub queued: u64,
    /// Gauge: idle connections parked.
    pub parked: u64,
}
